"""Setuptools shim.

The primary build configuration lives in ``pyproject.toml``; this file exists
so the package can also be installed in environments whose setuptools/pip
combination cannot build PEP-660 editable wheels offline
(``python setup.py develop`` or ``pip install -e . --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
