"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resnet101" in out and "selsync" in out

    def test_run_requires_known_algorithm(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--algorithm", "gossip"])

    def test_run_requires_known_workload(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--workload", "bert"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommand:
    def test_run_selsync_prints_table(self, capsys):
        code = main([
            "run", "--workload", "resnet101", "--algorithm", "selsync",
            "--workers", "2", "--iterations", "8", "--delta", "0.3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LSSR" in out and "simulated time" in out

    def test_run_bsp(self, capsys):
        code = main([
            "run", "--workload", "resnet101", "--algorithm", "bsp",
            "--workers", "2", "--iterations", "6",
        ])
        assert code == 0
        assert "bsp" in capsys.readouterr().out

    @pytest.mark.pool
    def test_run_with_pool_workers(self, capsys):
        # ResNet has no batched executor, so the pool children run the
        # per-worker fallback — the models-too-heavy-to-batch scenario.
        code = main([
            "run", "--workload", "resnet101", "--algorithm", "bsp",
            "--workers", "2", "--iterations", "4", "--pool-workers", "2",
        ])
        assert code == 0
        assert "bsp" in capsys.readouterr().out

    def test_pool_start_method_choices_enforced(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--pool-start-method", "threads"])

    def test_compare_outputs_table1_columns(self, capsys):
        code = main([
            "compare", "--workload", "resnet101", "--workers", "2",
            "--iterations", "8", "--delta", "0.3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Outperform BSP?" in out
        assert "Overall speedup" in out
