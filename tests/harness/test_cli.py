"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resnet101" in out and "selsync" in out

    def test_run_requires_known_algorithm(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--algorithm", "gossip"])

    def test_run_requires_known_workload(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--workload", "bert"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommand:
    def test_run_selsync_prints_table(self, capsys):
        code = main([
            "run", "--workload", "resnet101", "--algorithm", "selsync",
            "--workers", "2", "--iterations", "8", "--delta", "0.3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LSSR" in out and "simulated time" in out

    def test_run_bsp(self, capsys):
        code = main([
            "run", "--workload", "resnet101", "--algorithm", "bsp",
            "--workers", "2", "--iterations", "6",
        ])
        assert code == 0
        assert "bsp" in capsys.readouterr().out

    @pytest.mark.pool
    def test_run_with_pool_workers(self, capsys):
        # ResNet has no batched executor, so the pool children run the
        # per-worker fallback — the models-too-heavy-to-batch scenario.
        code = main([
            "run", "--workload", "resnet101", "--algorithm", "bsp",
            "--workers", "2", "--iterations", "4", "--pool-workers", "2",
        ])
        assert code == 0
        assert "bsp" in capsys.readouterr().out

    def test_pool_start_method_choices_enforced(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--pool-start-method", "threads"])

    def test_compare_outputs_table1_columns(self, capsys):
        code = main([
            "compare", "--workload", "resnet101", "--workers", "2",
            "--iterations", "8", "--delta", "0.3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Outperform BSP?" in out
        assert "Overall speedup" in out


class TestScenarioCommand:
    def test_listing_names_and_kinds(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "fig6-delta-sweep" in out
        assert "throughput" in out

    def test_listing_filtered_by_tag(self, capsys):
        assert main(["scenario", "--tag", "paper-scale"]) == 0
        out = capsys.readouterr().out
        assert "deep-mlp-delta-n256" in out
        assert "fig1a-throughput" not in out

    def test_run_scenario_with_overrides_and_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "report.json"
        code = main([
            "scenario", "fig6-delta-sweep", "--iterations", "4",
            "--workers", "2", "--json", str(path),
        ])
        assert code == 0
        assert "lssr" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["name"] == "fig6-delta-sweep"
        assert payload["meta"]["iterations"] == 4

    def test_run_verified_scenario_prints_parity(self, capsys):
        code = main([
            "scenario", "deep-mlp-delta-n64", "--iterations", "4",
            "--workers", "4",
        ])
        assert code == 0
        assert "endpoint parity" in capsys.readouterr().out

    def test_unknown_scenario_exits_cleanly(self, capsys):
        assert main(["scenario", "not-a-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_invalid_override_exits_cleanly(self, capsys):
        # Analytic throughput scenarios reject training overrides.
        assert main(["scenario", "fig1a-throughput", "--workers", "8"]) == 2
        assert "analytic" in capsys.readouterr().err


class TestScenarioExitCodes:
    def test_scenario_error_writes_structured_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "error.json"
        assert main(["scenario", "not-a-scenario", "--json", str(path)]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        payload = json.loads(path.read_text())
        assert payload["error"]["code"] == "scenario_error"
        assert payload["error"]["scenario"] == "not-a-scenario"
        assert "unknown scenario" in payload["error"]["message"]

    def test_exit_codes_are_a_stable_contract(self):
        from repro.harness.cli import EXIT_PARITY_FAILURE, EXIT_SCENARIO_ERROR

        assert EXIT_SCENARIO_ERROR == 2
        assert EXIT_PARITY_FAILURE == 3

    def test_parity_failure_exits_nonzero_with_json(self, capsys, tmp_path, monkeypatch):
        import json

        import repro.scenarios.runner as runner_module

        monkeypatch.setattr(runner_module, "_exact_match", lambda *a, **k: False)
        path = tmp_path / "parity.json"
        code = main([
            "scenario", "deep-mlp-delta-n64", "--iterations", "4",
            "--workers", "4", "--json", str(path),
        ])
        assert code == 3
        assert "endpoint parity verification failed" in capsys.readouterr().err
        payload = json.loads(path.read_text())
        assert payload["error"]["code"] == "endpoint_parity_failure"
        assert payload["error"]["failed_anchors"]


class TestServeAndSubmit:
    def test_serve_and_submit_parsers(self):
        from repro.harness.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--db", ":memory:"])
        assert args.port == 0 and args.db == ":memory:"
        args = parser.parse_args(["submit", "scenario", '{"name": "quickstart"}'])
        assert args.action == "scenario" and args.url.startswith("http://")

    def test_submit_round_trip_against_live_service(self, capsys, tmp_path):
        import json

        from repro.service import ExperimentService, QuotaManager

        service = ExperimentService(
            port=0, workers=1, quotas=QuotaManager(max_active_jobs=None, rate=None)
        )
        service.start()
        try:
            out_path = tmp_path / "result.json"
            code = main([
                "submit", "throughput",
                '{"workloads": ["resnet101"], "worker_counts": [1, 2]}',
                "--url", service.url, "--wait", "--json", str(out_path),
            ])
            assert code == 0
            payload = json.loads(out_path.read_text())
            assert payload["job"]["state"] == "DONE"
            assert len(payload["records"]) == 2
        finally:
            service.stop()

    def test_submit_validation_error_exits_2(self, capsys):
        from repro.service import ExperimentService, QuotaManager

        service = ExperimentService(
            port=0, workers=1, quotas=QuotaManager(max_active_jobs=None, rate=None)
        )
        service.start()
        try:
            code = main(["submit", "sweep", '{"bogus": true}', "--url", service.url])
            assert code == 2
            assert "bad_request" in capsys.readouterr().err
        finally:
            service.stop()

    def test_submit_unreachable_service_exits_2(self, capsys):
        code = main([
            "submit", "scenario", '{"name": "quickstart"}',
            "--url", "http://127.0.0.1:9",  # discard port: nothing listens
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err
