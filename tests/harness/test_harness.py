"""Tests for workload presets, the experiment runner, sweeps and reporting."""

import numpy as np
import pytest

from repro.algorithms.base import TrainingResult
from repro.compression import TopKCompressor
from repro.harness.experiment import (
    WORKLOAD_PRESETS,
    build_cluster,
    build_workload,
    make_trainer,
    run_experiment,
)
from repro.harness.reporting import (
    format_series,
    format_table,
    results_to_rows,
    summarize_history,
    table1_headers,
)
from repro.harness.sweep import grid_sweep


class TestPresets:
    def test_all_workload_presets_registered(self):
        # The paper's four workloads plus the deep-MLP large-N sweep analog.
        assert set(WORKLOAD_PRESETS) == {
            "resnet101", "vgg11", "alexnet", "transformer", "deep_mlp",
        }

    def test_deep_mlp_preset_is_classification_mlp(self):
        from repro.nn.models import MLP

        preset = build_workload("deep_mlp")
        assert preset.task == "classification"
        model = preset.model_factory(np.random.default_rng(0))
        assert isinstance(model, MLP)

    def test_build_workload_case_insensitive(self):
        assert build_workload("ResNet101").name == "resnet101"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build_workload("bert")

    def test_alexnet_uses_top5_and_adam(self):
        preset = build_workload("alexnet")
        assert preset.top_k == 5
        from repro.optim.adam import Adam

        model = preset.model_factory(np.random.default_rng(0))
        assert isinstance(preset.optimizer_factory(model), Adam)

    def test_transformer_is_language_modeling(self):
        assert build_workload("transformer").task == "language_modeling"

    def test_lr_schedules_decay_for_resnet(self):
        preset = build_workload("resnet101")
        schedule = preset.lr_schedule_factory(100)
        assert schedule(99) < schedule(0)


class TestBuildCluster:
    def test_cluster_matches_preset(self):
        preset = build_workload("resnet101")
        cluster = build_cluster(preset, num_workers=2, seed=0)
        assert cluster.num_workers == 2
        assert cluster.config.task == "classification"
        assert cluster.workload_spec.name == "resnet101"

    def test_batch_size_override(self):
        preset = build_workload("resnet101")
        cluster = build_cluster(preset, num_workers=2, seed=0, batch_size=8)
        assert cluster.batch_size == 8


class TestMakeTrainer:
    @pytest.mark.parametrize(
        "algorithm,kwargs",
        [
            ("bsp", {}),
            ("selsync", {"delta": 0.3}),
            ("fedavg", {"participation": 0.5, "sync_factor": 0.25}),
            ("ssp", {"staleness": 50}),
            ("local_sgd", {"sync_period": 4}),
            ("compressed_bsp", {"compressor": TopKCompressor(ratio=0.1)}),
        ],
    )
    def test_all_algorithms_constructible(self, algorithm, kwargs):
        preset = build_workload("resnet101")
        cluster = build_cluster(preset, num_workers=2, seed=0, batch_size=8)
        trainer = make_trainer(algorithm, cluster, preset, total_iterations=50, **kwargs)
        assert trainer is not None

    def test_unknown_algorithm(self):
        preset = build_workload("resnet101")
        cluster = build_cluster(preset, num_workers=2, seed=0, batch_size=8)
        with pytest.raises(KeyError):
            make_trainer("gossip", cluster, preset, total_iterations=10)

    def test_compressed_bsp_requires_compressor(self):
        preset = build_workload("resnet101")
        cluster = build_cluster(preset, num_workers=2, seed=0, batch_size=8)
        with pytest.raises(ValueError):
            make_trainer("compressed_bsp", cluster, preset, total_iterations=10)

    def test_selsync_accepts_all_config_fields(self):
        preset = build_workload("resnet101")
        cluster = build_cluster(preset, num_workers=2, seed=0, batch_size=8)
        trainer = make_trainer(
            "selsync", cluster, preset, total_iterations=10,
            delta=0.1, aggregation="grad", statistic="norm", sync_on_first_step=False,
        )
        assert trainer.config.aggregation == "grad"
        assert trainer.config.statistic == "norm"
        assert trainer.config.sync_on_first_step is False


class TestRunExperiment:
    def test_selsync_end_to_end(self):
        out = run_experiment("resnet101", "selsync", num_workers=2, iterations=12,
                             eval_every=6, delta=0.3, seed=0)
        assert out.workload == "resnet101"
        assert out.result.iterations == 12
        assert "δ=0.3" in out.algorithm

    @pytest.mark.pool
    def test_pool_workers_matches_in_process_run(self):
        # run_experiment builds/tears down the pool and the trajectories
        # match the in-process run exactly (same seed, same algorithm).
        single = run_experiment("resnet101", "bsp", num_workers=2, iterations=6,
                                eval_every=6, seed=1)
        pooled = run_experiment("resnet101", "bsp", num_workers=2, iterations=6,
                                eval_every=6, seed=1, pool_workers=2)
        assert pooled.result.final_metric == single.result.final_metric
        assert pooled.result.final_loss == single.result.final_loss

    def test_default_partitioning_flag(self):
        out = run_experiment("resnet101", "bsp", num_workers=2, iterations=6,
                             eval_every=6, use_default_partitioning=True)
        assert out.result.lssr == 0.0

    def test_injection_adjusts_batch_size(self):
        out = run_experiment(
            "resnet101", "selsync", num_workers=4, iterations=6, eval_every=6,
            injection={"alpha": 0.5, "beta": 0.5, "delta": 0.3},
        )
        assert out.result.extras["delta"] == 0.3


class TestSweep:
    def test_grid_covers_cartesian_product(self):
        result = grid_sweep(lambda a, b: a * b, {"a": [1, 2, 3], "b": [10, 20]})
        assert len(result) == 6
        assert sorted(result.outputs()) == [10, 20, 20, 30, 40, 60]

    def test_fixed_arguments_passed(self):
        result = grid_sweep(lambda a, scale: a * scale, {"a": [1, 2]}, fixed={"scale": 5})
        assert result.outputs() == [5, 10]

    def test_best_selection(self):
        result = grid_sweep(lambda a: -(a - 2) ** 2, {"a": [0, 1, 2, 3]})
        assert result.best(key=lambda out: out)["params"]["a"] == 2

    def test_best_minimize_selects_smallest(self):
        result = grid_sweep(lambda a: (a - 2) ** 2, {"a": [0, 1, 2, 3]})
        best = result.best(key=lambda out: out, maximize=False)
        assert best["params"]["a"] == 2
        assert best["output"] == 0

    def test_best_on_empty_result_rejected(self):
        from repro.harness.sweep import SweepResult

        with pytest.raises(ValueError, match="no runs"):
            SweepResult().best(key=lambda out: out)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep(lambda: None, {})

    def test_empty_grid_entry_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            grid_sweep(lambda a: a, {"a": []})

    def test_fixed_grid_collision_rejected(self):
        # Without the up-front check this would surface as a confusing
        # TypeError("multiple values for 'a'") from the swept function.
        with pytest.raises(ValueError, match="both grid and fixed"):
            grid_sweep(lambda a: a, {"a": [1, 2]}, fixed={"a": 3})

    def test_iterator_grid_values_run_fully(self):
        # The emptiness guard must not consume single-pass grid values.
        result = grid_sweep(lambda a: a * 2, {"a": iter([1, 2, 3])})
        assert result.outputs() == [2, 4, 6]


class TestReporting:
    def _result(self, name, metric, sim_time, lssr=0.5, metric_name="accuracy"):
        return TrainingResult(
            algorithm=name, metric_name=metric_name, iterations=100,
            sim_time_seconds=sim_time, final_metric=metric, best_metric=metric,
            final_loss=0.1, lssr=lssr, communication_bytes=0.0,
            history=[],
        )

    def test_format_table_alignment_and_rows(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series({1: 2.0, 4: 8.0}, x_label="workers", y_label="throughput")
        assert "workers" in text and "8" in text

    def test_results_to_rows_table1_shape(self):
        results = {
            "bsp": self._result("bsp", 0.90, 100.0, lssr=0.0),
            "selsync": self._result("SelSync(δ=0.3, param)", 0.92, 40.0, lssr=0.8),
            "ssp": self._result("ssp(s=100)", 0.85, 30.0),
        }
        rows = results_to_rows(results, baseline_key="bsp")
        headers = table1_headers()
        assert all(len(row) == len(headers) for row in rows)
        selsync_row = rows[1]
        assert selsync_row[-1] == "2.50x"           # speedup over BSP
        ssp_row = rows[2]
        assert ssp_row[2] == "-"                     # LSSR undefined for SSP
        assert ssp_row[-1] == "-"                    # no speedup credit: worse than BSP

    def test_results_to_rows_missing_baseline(self):
        with pytest.raises(KeyError):
            results_to_rows({"selsync": self._result("selsync", 0.9, 1.0)})

    def test_summarize_history(self):
        from repro.algorithms.base import EvalPoint

        result = self._result("bsp", 0.9, 10.0)
        result.history = [EvalPoint(step=i, sim_time=i * 1.0, metric=0.1 * i, loss=1.0, epoch=0.1)
                          for i in range(1, 30)]
        text = summarize_history(result, max_points=5)
        assert "history: bsp" in text
        assert len(text.splitlines()) < 15
