"""End-to-end integration tests across the whole stack.

These reproduce, at tiny scale, the qualitative claims the paper's evaluation
rests on: SelSync reaches BSP-level accuracy with far less communication,
SelDP beats DefDP in semi-synchronous training, and data injection rescues
non-IID training.
"""

import numpy as np
import pytest

from tests.conftest import make_small_cluster

from repro.algorithms.bsp import BSPTrainer
from repro.algorithms.fedavg import FedAvgTrainer
from repro.algorithms.localsgd import LocalSGDTrainer
from repro.algorithms.ssp import SSPTrainer
from repro.cluster.cluster import ClusterConfig, SimulatedCluster
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.data.datasets import make_classification_splits
from repro.data.injection import adjusted_batch_size
from repro.data.noniid import LabelSkewPartitioner
from repro.data.partition import DefaultPartitioner, SelSyncPartitioner
from repro.harness.experiment import run_experiment
from repro.nn.models import MLP
from repro.optim.sgd import SGD


ITERATIONS = 90


class TestAccuracyParity:
    def test_selsync_reaches_bsp_level_accuracy_with_less_communication(self):
        """The paper's headline claim at miniature scale."""
        bsp_cluster = make_small_cluster(train_samples=512, seed=21)
        sel_cluster = make_small_cluster(train_samples=512, seed=21)
        bsp = BSPTrainer(bsp_cluster, eval_every=30).run(ITERATIONS)
        sel = SelSyncTrainer(
            sel_cluster, SelSyncConfig(delta=0.08), eval_every=30
        ).run(ITERATIONS)
        assert sel.best_metric >= bsp.best_metric - 0.08
        assert sel.lssr > 0.3
        assert sel.sim_time_seconds < bsp.sim_time_seconds

    def test_all_algorithms_learn_something(self):
        results = {}
        for name, builder in {
            "bsp": lambda c: BSPTrainer(c, eval_every=30),
            "selsync": lambda c: SelSyncTrainer(c, SelSyncConfig(delta=0.1), eval_every=30),
            "fedavg": lambda c: FedAvgTrainer(c, participation=1.0, sync_factor=0.5, eval_every=30),
            "localsgd": lambda c: LocalSGDTrainer(c, sync_period=8, eval_every=30),
            "ssp": lambda c: SSPTrainer(c, staleness=50, eval_every=30),
        }.items():
            cluster = make_small_cluster(train_samples=512, seed=33)
            results[name] = builder(cluster).run(ITERATIONS)
        for name, result in results.items():
            assert result.best_metric > 0.4, f"{name} failed to learn"

    def test_speedup_ordering_bsp_is_slowest(self):
        """Per-iteration simulated cost: BSP > SelSync(high δ); SSP avoids barriers."""
        times = {}
        for name, builder in {
            "bsp": lambda c: BSPTrainer(c, eval_every=100),
            "selsync": lambda c: SelSyncTrainer(c, SelSyncConfig(delta=1e9), eval_every=100),
            "fedavg": lambda c: FedAvgTrainer(
                c, participation=1.0, sync_factor=1.0, eval_every=100
            ),
        }.items():
            cluster = make_small_cluster(seed=5)
            builder(cluster).run(20)
            times[name] = cluster.clock.elapsed
        assert times["bsp"] > times["selsync"]
        assert times["bsp"] > times["fedavg"]


class TestPartitioningClaim:
    def _train_with(self, partitioner, seed=17):
        cluster = make_small_cluster(
            train_samples=512, seed=seed, partitioner=partitioner, num_classes=8
        )
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.5), eval_every=30)
        return trainer.run(ITERATIONS)

    def test_seldp_beats_defdp_under_mostly_local_training(self):
        """§IV-C / Fig. 9: with most steps local, DefDP starves workers of data."""
        seldp = self._train_with(SelSyncPartitioner(seed=17))
        defdp = self._train_with(DefaultPartitioner(seed=17))
        assert seldp.best_metric >= defdp.best_metric - 0.02


class TestNonIIDInjection:
    def _noniid_cluster(self, batch_size, seed=11):
        train, test = make_classification_splits(640, 320, 8, 16, class_sep=4.0,
                                                 noise=0.6, seed=seed)
        partitioner = LabelSkewPartitioner(train.targets, labels_per_worker=1, seed=seed)
        config = ClusterConfig(num_workers=4, batch_size=batch_size, seed=seed)
        return SimulatedCluster(
            model_factory=lambda rng: MLP((16, 24, 8), rng=rng),
            optimizer_factory=lambda m: SGD(m, lr=0.1),
            train_dataset=train,
            test_dataset=test,
            config=config,
            partitioner=partitioner,
        )

    def test_injection_improves_noniid_accuracy(self):
        """Fig. 12: data injection rescues label-skewed training."""
        plain_cluster = self._noniid_cluster(batch_size=16)
        plain = SelSyncTrainer(
            plain_cluster, SelSyncConfig(delta=0.3), eval_every=30
        ).run(ITERATIONS)

        b_prime = adjusted_batch_size(16, 0.75, 0.75, 4)
        injected_cluster = self._noniid_cluster(batch_size=b_prime)
        injected = SelSyncTrainer(
            injected_cluster,
            SelSyncConfig(delta=0.3, injection_alpha=0.75, injection_beta=0.75),
            eval_every=30,
        ).run(ITERATIONS)
        assert injected.best_metric > plain.best_metric

    def test_injection_bytes_are_negligible_vs_model_sync(self):
        cluster = self._noniid_cluster(batch_size=8)
        trainer = SelSyncTrainer(
            cluster, SelSyncConfig(delta=0.0, injection_alpha=0.5, injection_beta=0.5),
            eval_every=100,
        )
        trainer.run(10)
        # §III-E: injection ships a few hundred KB per step, negligible next to
        # the hundreds of MB a model synchronization moves at paper scale.
        injected_bytes_per_step = trainer.injection.total_bytes / 10
        paper_sync_bytes = cluster.workload_spec.model_bytes * cluster.num_workers
        assert injected_bytes_per_step < paper_sync_bytes / 100


class TestHarnessPresets:
    @pytest.mark.parametrize("workload", ["resnet101", "vgg11", "alexnet", "transformer"])
    def test_every_paper_workload_trains_under_selsync(self, workload):
        out = run_experiment(workload, "selsync", num_workers=2, iterations=10,
                             eval_every=5, delta=0.3, seed=0)
        assert out.result.iterations == 10
        assert np.isfinite(out.result.final_metric)

    def test_transformer_perplexity_improves(self):
        short = run_experiment("transformer", "bsp", num_workers=2, iterations=5,
                               eval_every=5, seed=1)
        longer = run_experiment("transformer", "bsp", num_workers=2, iterations=60,
                                eval_every=30, seed=1)
        assert longer.result.best_metric < short.result.best_metric
