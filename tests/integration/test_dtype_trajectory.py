"""float32 compute mode must track the float64 loss trajectory.

The documented acceptance tolerance for the reduced-precision engine mode
(see ARCHITECTURE.md, "Compute dtype layer"): over the reference BSP and
SelSync runs below, every per-step mean training loss in float32 stays
within ``rtol=1e-3`` / ``atol=1e-4`` of the float64 trajectory.  Measured
divergence is ~1e-6 relative over 80 steps, so the gate has two orders of
magnitude of headroom while still catching any accidental fp32 instability
(e.g. an unstable reduction order or a float16 cast sneaking into the hot
path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import MLP

TRAJECTORY_RTOL = 1e-3
TRAJECTORY_ATOL = 1e-4
STEPS = 80


def make_cluster(dtype: str, seed: int = 0):
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.datasets import make_classification_splits
    from repro.data.partition import SelSyncPartitioner
    from repro.optim.sgd import SGD

    train, test = make_classification_splits(
        512, 128, 4, 16, class_sep=2.0, noise=0.8, seed=seed
    )
    config = ClusterConfig(num_workers=4, batch_size=16, seed=seed, dtype=dtype)
    return SimulatedCluster(
        model_factory=lambda rng: MLP((16, 32, 32, 4), rng=rng),
        optimizer_factory=lambda m: SGD(m, lr=0.1, momentum=0.9),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def make_trainer(name: str, cluster):
    if name == "bsp":
        from repro.algorithms.bsp import BSPTrainer

        return BSPTrainer(cluster, eval_every=10_000)
    from repro.core.config import SelSyncConfig
    from repro.core.selsync import SelSyncTrainer

    return SelSyncTrainer(cluster, SelSyncConfig(delta=0.05), eval_every=10_000)


def loss_trajectory(name: str, dtype: str) -> np.ndarray:
    cluster = make_cluster(dtype)
    trainer = make_trainer(name, cluster)
    losses = []
    for _ in range(STEPS):
        metrics = trainer.train_step()
        trainer.global_step += 1
        cluster.global_step = trainer.global_step
        losses.append(metrics["loss"])
    return np.asarray(losses)


@pytest.mark.parametrize("trainer_name", ["bsp", "selsync"])
def test_float32_tracks_float64_losses(trainer_name):
    ref = loss_trajectory(trainer_name, "float64")
    low = loss_trajectory(trainer_name, "float32")
    np.testing.assert_allclose(low, ref, rtol=TRAJECTORY_RTOL, atol=TRAJECTORY_ATOL)


@pytest.mark.parametrize("trainer_name", ["bsp", "selsync"])
def test_float64_mode_unchanged_by_dtype_plumbing(trainer_name):
    """Two float64 runs of the same config are bit-identical (determinism)."""
    a = loss_trajectory(trainer_name, "float64")
    b = loss_trajectory(trainer_name, "float64")
    np.testing.assert_array_equal(a, b)


def test_selsync_sync_decisions_match_across_dtypes():
    """The Δ(gᵢ)-threshold sync/local decisions agree between dtypes."""
    decisions = {}
    for dtype in ("float64", "float32"):
        cluster = make_cluster(dtype)
        trainer = make_trainer("selsync", cluster)
        for _ in range(STEPS):
            trainer.train_step()
            trainer.global_step += 1
            cluster.global_step = trainer.global_step
        decisions[dtype] = trainer.sync_step_indices
    assert decisions["float64"] == decisions["float32"]
