"""Unit tests for the grid-stacked sweep matrix (repro.engine.sweep_exec).

End-to-end parity of stacked sweeps against the sequential runner lives in
``tests/scenarios/test_stacked.py``; this file covers the
:class:`~repro.engine.sweep_exec.StackedSweepMatrix` mechanics in isolation:
storage claiming, executor chunking, the lockstep step coordinator and its
failure modes.
"""

import numpy as np
import pytest

from repro.engine.sweep_exec import StackedSweepMatrix
from repro.nn.models import MLP, TransformerLM

IN_DIM, NUM_CLASSES = 6, 3
BATCH = 4


def make_model(seed: int = 0) -> MLP:
    return MLP((IN_DIM, 8, NUM_CLASSES), rng=np.random.default_rng(seed))


def make_batches(num_workers: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        (
            rng.standard_normal((BATCH, IN_DIM)),
            rng.integers(0, NUM_CLASSES, size=BATCH),
        )
        for _ in range(num_workers)
    ]


def claimed_matrix(
    num_slices: int = 2, num_workers: int = 2, **kwargs
) -> StackedSweepMatrix:
    stacked = StackedSweepMatrix(num_slices, num_workers, **kwargs)
    spec = make_model().flat_spec
    for index in range(num_slices):
        stacked.slice_storage(index, spec)
    return stacked


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_slices=0, num_workers=2),
            dict(num_slices=2, num_workers=0),
            dict(num_slices=2, num_workers=2, max_stacked_rows=0),
        ],
    )
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StackedSweepMatrix(**kwargs)

    def test_row_accounting(self):
        stacked = StackedSweepMatrix(3, 4)
        assert stacked.total_rows == 12
        assert stacked.params is None  # storage waits for the first claim


class TestSliceStorage:
    def test_views_alias_one_stacked_block(self):
        stacked = StackedSweepMatrix(2, 2)
        spec = make_model().flat_spec
        p0, g0 = stacked.slice_storage(0, spec)
        p1, g1 = stacked.slice_storage(1, spec)
        assert stacked.params.shape == (4, spec.total_size)
        for view in (p0, g0, p1, g1):
            assert view.shape == (2, spec.total_size)
            assert view.flags["C_CONTIGUOUS"]
        assert p0.base is stacked.params and p1.base is stacked.params
        p1[0, 0] = 7.5
        assert stacked.params[2, 0] == 7.5  # slice 1 owns rows [2, 4)

    def test_layout_mismatch_rejected(self):
        stacked = StackedSweepMatrix(2, 2)
        stacked.slice_storage(0, make_model().flat_spec)
        other = MLP((IN_DIM, 16, NUM_CLASSES), rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="share one flat layout"):
            stacked.slice_storage(1, other.flat_spec)

    def test_double_claim_rejected(self):
        stacked = StackedSweepMatrix(2, 2)
        spec = make_model().flat_spec
        stacked.slice_storage(0, spec)
        with pytest.raises(ValueError, match="already claimed"):
            stacked.slice_storage(0, spec)

    def test_index_out_of_range(self):
        stacked = StackedSweepMatrix(2, 2)
        with pytest.raises(ValueError, match="out of range"):
            stacked.slice_storage(2, make_model().flat_spec)


class TestBuildExecutors:
    def test_requires_every_slice_claimed(self):
        stacked = StackedSweepMatrix(2, 2)
        stacked.slice_storage(0, make_model().flat_spec)
        with pytest.raises(RuntimeError, match="missing slices: \\[1\\]"):
            stacked.build_executors(make_model())

    def test_unsupported_model_family_rejected(self):
        class SubclassedMLP(MLP):
            pass  # the executor's exact-type build check must refuse this

        stacked = claimed_matrix()
        weird = SubclassedMLP((IN_DIM, 8, NUM_CLASSES), rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="not supported by"):
            stacked.build_executors(weird)

    def test_active_dropout_rejected(self):
        lm = TransformerLM(
            vocab_size=12,
            d_model=8,
            num_heads=2,
            num_layers=1,
            dim_feedforward=16,
            max_len=16,
            dropout=0.5,
            rng=np.random.default_rng(0),
        )
        stacked = StackedSweepMatrix(2, 2)
        for index in range(2):
            stacked.slice_storage(index, lm.flat_spec)
        with pytest.raises(ValueError, match="active\\s+dropout"):
            stacked.build_executors(lm)

    def test_chunking_splits_rows(self):
        stacked = claimed_matrix(num_slices=2, num_workers=2, max_stacked_rows=3)
        stacked.build_executors(make_model())
        # 4 rows with a 3-row cap: one slab of 3, one of 1 — chunk
        # boundaries need not align to slice boundaries.
        assert [(lo, hi) for lo, hi, _ in stacked._executors] == [(0, 3), (3, 4)]


class TestLockstepCoordinator:
    def test_gradients_before_build_rejected(self):
        stacked = claimed_matrix()
        with pytest.raises(RuntimeError, match="build_executors"):
            stacked.gradients_for_slice(0, make_batches(2))

    def test_wrong_batch_count_rejected(self):
        stacked = claimed_matrix()
        stacked.build_executors(make_model())
        with pytest.raises(ValueError, match="expected 2 worker batches"):
            stacked.gradients_for_slice(0, make_batches(3))

    def test_lagging_slice_detected(self):
        stacked = claimed_matrix()
        stacked.build_executors(make_model())
        batches = make_batches(2)
        stacked.gradients_for_slice(0, batches)
        stacked.gradients_for_slice(0, batches)  # slice 0 runs ahead
        with pytest.raises(RuntimeError, match="fell out of lockstep"):
            stacked.gradients_for_slice(1, batches)

    def test_first_caller_computes_later_callers_read(self):
        stacked = claimed_matrix()
        rows = np.random.default_rng(3).standard_normal((2, stacked.params.shape[1]))
        stacked.params[0:2] = rows
        stacked.params[2:4] = rows  # slice 1 starts from identical replicas
        stacked.build_executors(make_model())
        batches = make_batches(2)
        losses0, norms0 = stacked.gradients_for_slice(0, batches)
        grads_after_first = stacked.grads.copy()
        losses1, norms1 = stacked.gradients_for_slice(1, batches)
        # The second call must not recompute: storage is untouched.
        assert np.array_equal(stacked.grads, grads_after_first)
        # Identical replicas seeing the tiled batch block produce bit-equal
        # per-row results across the two slices.
        assert np.array_equal(losses0, losses1)
        assert np.array_equal(norms0, norms1)
        assert np.all(norms0 > 0)

    def test_verify_batches_mismatch_raises(self):
        stacked = claimed_matrix(verify_batches=True)
        stacked.build_executors(make_model())
        stacked.gradients_for_slice(0, make_batches(2, seed=0))
        with pytest.raises(RuntimeError, match="different batches"):
            stacked.gradients_for_slice(1, make_batches(2, seed=9))

    def test_verify_batches_accepts_equal_batches(self):
        stacked = claimed_matrix(verify_batches=True)
        stacked.build_executors(make_model())
        stacked.gradients_for_slice(0, make_batches(2, seed=0))
        stacked.gradients_for_slice(1, make_batches(2, seed=0))


class TestChunkedEquivalence:
    def test_chunked_bit_identical_to_unchunked(self):
        param_block = np.random.default_rng(11).standard_normal(
            (6, make_model().flat_spec.total_size)
        )
        outputs = []
        for max_rows in (None, 4):  # 4 does not divide 6 rows: mixed slabs
            stacked = claimed_matrix(
                num_slices=3, num_workers=2, max_stacked_rows=max_rows
            )
            stacked.params[:] = param_block
            stacked.build_executors(make_model())
            batches = make_batches(2, seed=5)
            losses, norms = stacked.gradients_for_slice(0, batches)
            outputs.append((losses.copy(), norms.copy(), stacked.grads.copy()))
        for a, b in zip(*outputs):
            assert np.array_equal(a, b)
