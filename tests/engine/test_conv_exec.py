"""Batched conv-family execution vs the per-worker fallback loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchedReplicaExecutor, WorkerMatrix
from repro.nn.losses import cross_entropy_with_logits
from repro.nn.models import ConvNet
from repro.utils.rng import spawn_rngs

DTYPES = ["float32", "float64"]
N, B, CLASSES, IMG = 3, 5, 4, 8


def make_matrix(dtype):
    rngs = spawn_rngs(0, N)
    models = [
        ConvNet(in_channels=1, num_classes=CLASSES, image_size=IMG, channels=(3, 5), rng=r)
        for r in rngs
    ]
    models[0].flatten_parameters(dtype=dtype)
    matrix = WorkerMatrix(N, models[0].flat_spec)
    for i, model in enumerate(models):
        matrix.adopt(i, model)
    return matrix, models


def make_batches(seed=1):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal((B, 1, IMG, IMG)), rng.integers(0, CLASSES, size=B))
        for _ in range(N)
    ]


class TestBuild:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_builds_for_convnet(self, dtype):
        matrix, models = make_matrix(dtype)
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        assert exe is not None

    def test_convnet_subclass_falls_back(self):
        class CustomConvNet(ConvNet):
            pass

        model = CustomConvNet(in_channels=1, num_classes=CLASSES, image_size=IMG)
        model.flatten_parameters()
        matrix = WorkerMatrix(1, model.flat_spec)
        matrix.adopt(0, model)
        assert BatchedReplicaExecutor.build(matrix, model) is None


class TestStep:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_per_worker_loop(self, dtype):
        matrix, models = make_matrix(dtype)
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        batches = make_batches()
        losses = exe.step(batches)
        assert losses is not None
        assert losses.shape == (N,)

        tol = dict(rtol=1e-12, atol=1e-12) if dtype == "float64" else dict(rtol=2e-5, atol=2e-6)
        for i, (x, y) in enumerate(batches):
            ref = ConvNet(
                in_channels=1, num_classes=CLASSES, image_size=IMG, channels=(3, 5),
                rng=np.random.default_rng(0),
            )
            ref.flatten_parameters(dtype=dtype)
            ref.load_param_vector(matrix.params[i])
            ref.zero_grad()
            logits = ref.forward(x)
            loss, dlogits = cross_entropy_with_logits(logits, y)
            ref.backward(dlogits)
            assert loss == pytest.approx(float(losses[i]), rel=1e-5)
            np.testing.assert_allclose(ref.grad_vector, matrix.grads[i], **tol)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_gradients_written_in_matrix_dtype(self, dtype):
        matrix, models = make_matrix(dtype)
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        assert exe.step(make_batches()) is not None
        assert matrix.grads.dtype == np.dtype(dtype)
        assert exe.grad_norms().shape == (N,)

    def test_mismatched_batch_shapes_fall_back(self):
        matrix, models = make_matrix("float64")
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        batches = make_batches()
        rng = np.random.default_rng(9)
        batches[1] = (
            rng.standard_normal((B + 1, 1, IMG, IMG)),
            rng.integers(0, CLASSES, size=B + 1),
        )
        assert exe.step(batches) is None

    def test_wrong_rank_input_falls_back(self):
        matrix, models = make_matrix("float64")
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        rng = np.random.default_rng(2)
        flat_batches = [
            (rng.standard_normal((B, IMG * IMG)), rng.integers(0, CLASSES, size=B))
            for _ in range(N)
        ]
        assert exe.step(flat_batches) is None


class TestClusterIntegration:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_conv_cluster_uses_batched_executor(self, dtype):
        from repro.algorithms.bsp import BSPTrainer
        from repro.cluster.cluster import ClusterConfig, SimulatedCluster
        from repro.optim.sgd import SGD

        rng = np.random.default_rng(0)
        images = rng.standard_normal((96, 1, IMG, IMG))
        labels = rng.integers(0, CLASSES, size=96)

        class ImageDataset:
            def __len__(self):
                return len(images)

            def __getitem__(self, idx):
                return images[idx], labels[idx]

        config = ClusterConfig(
            num_workers=2, batch_size=8, seed=0, dtype=dtype, eval_max_batches=1
        )
        cluster = SimulatedCluster(
            model_factory=lambda r: ConvNet(
                in_channels=1, num_classes=CLASSES, image_size=IMG, channels=(2, 3), rng=r
            ),
            optimizer_factory=lambda m: SGD(m, lr=0.05),
            train_dataset=ImageDataset(),
            test_dataset=ImageDataset(),
            config=config,
        )
        assert cluster.replica_exec is not None
        trainer = BSPTrainer(cluster, eval_every=10_000)
        losses = [trainer.train_step()["loss"] for _ in range(3)]
        assert all(np.isfinite(losses))
