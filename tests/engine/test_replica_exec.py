"""Equivalence tests for the fused batched-replica executor and fused SGD."""

import numpy as np
import pytest

from tests.conftest import make_small_cluster

from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer


def _paired_clusters(**kwargs):
    """Two identically seeded clusters: one fused, one forced to the loop path."""
    fused = make_small_cluster(**kwargs)
    loop = make_small_cluster(**kwargs)
    assert fused.replica_exec is not None
    assert fused.fused_update is not None
    loop.replica_exec = None
    loop.fused_update = None
    return fused, loop


class TestBatchedExecutorEquivalence:
    def test_gradients_match_per_worker_loop(self):
        fused, loop = _paired_clusters()
        batches = [w.next_batch() for w in fused.workers]
        loop_batches = [w.next_batch() for w in loop.workers]
        losses_fused = fused.compute_gradients_all(batches)
        losses_loop = loop.compute_gradients_all(loop_batches)
        np.testing.assert_allclose(losses_fused, losses_loop, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(fused.matrix.grads, loop.matrix.grads, atol=1e-12)

    def test_worker_stats_populated(self):
        fused, _ = _paired_clusters()
        batches = [w.next_batch() for w in fused.workers]
        fused.compute_gradients_all(batches)
        for worker in fused.workers:
            assert worker.last_loss is not None and np.isfinite(worker.last_loss)
            manual = float(np.linalg.norm(worker.grad_vector))
            assert worker.last_grad_norm == pytest.approx(manual, rel=1e-12)

    def test_full_training_trajectory_matches(self):
        fused, loop = _paired_clusters(momentum=0.9)
        t_fused = SelSyncTrainer(fused, SelSyncConfig(delta=0.05), eval_every=100)
        t_loop = SelSyncTrainer(loop, SelSyncConfig(delta=0.05), eval_every=100)
        t_fused.run(15)
        t_loop.run(15)
        assert t_fused.sync_steps == t_loop.sync_steps
        np.testing.assert_allclose(fused.matrix.params, loop.matrix.params, atol=1e-10)

    def test_mlp_subclass_is_refused(self):
        from repro.engine import BatchedReplicaExecutor
        from repro.nn.models import MLP

        class ResidualMLP(MLP):
            def forward(self, x):
                return super().forward(x) + 0.0  # overridden forward

        cluster = make_small_cluster()
        model = ResidualMLP((16, 8, 4), rng=np.random.default_rng(0))
        model.flatten_parameters()
        from repro.engine import WorkerMatrix

        matrix = WorkerMatrix(1, model.flat_spec)
        matrix.adopt(0, model)
        assert BatchedReplicaExecutor.build(matrix, model) is None

    def test_optimizer_survives_adoption_after_construction(self):
        from repro.engine import WorkerMatrix
        from repro.nn.models import MLP
        from repro.optim.sgd import SGD

        model = MLP((4, 6, 2), rng=np.random.default_rng(0))
        opt = SGD(model, lr=0.5)  # built BEFORE the matrix adopts the model
        matrix = WorkerMatrix(1, model.flat_spec)
        matrix.adopt(0, model)
        model.grad_vector[:] = 1.0
        before = matrix.params[0].copy()
        opt.step()
        np.testing.assert_allclose(matrix.params[0], before - 0.5)

    def test_fallback_path_works_without_executor(self):
        cluster = make_small_cluster()
        cluster.replica_exec = None
        batches = [w.next_batch() for w in cluster.workers]
        losses = cluster.compute_gradients_all(batches)
        assert len(losses) == cluster.num_workers

    def test_mismatched_batch_shapes_fall_back(self):
        fused, _ = _paired_clusters()
        batches = [w.next_batch() for w in fused.workers]
        short = (batches[0][0][:-1], batches[0][1][:-1])
        assert fused.replica_exec.step([short] + batches[1:]) is None


class TestFusedSGDEquivalence:
    def test_local_updates_match_per_worker_loop(self):
        fused, loop = _paired_clusters(momentum=0.9)
        for cluster in (fused, loop):
            batches = [w.next_batch() for w in cluster.workers]
            cluster.compute_gradients_all(batches)
            cluster.apply_local_updates(lr=0.05)
        np.testing.assert_allclose(fused.matrix.params, loop.matrix.params, atol=1e-12)
        for worker in fused.workers:
            assert worker.steps_taken == 1
            assert worker.optimizer.step_count == 1

    def test_aggregated_gradient_broadcast(self):
        fused, loop = _paired_clusters(momentum=0.9)
        for cluster in (fused, loop):
            batches = [w.next_batch() for w in cluster.workers]
            cluster.compute_gradients_all(batches)
            averaged = cluster.matrix.mean_grads()
            cluster.apply_local_updates(lr=0.1, grads=averaged)
        np.testing.assert_allclose(fused.matrix.params, loop.matrix.params, atol=1e-12)

    def test_velocity_rebinding_keeps_state_exchange(self):
        fused, _ = _paired_clusters(momentum=0.9)
        opt = fused.workers[0].optimizer
        batches = [w.next_batch() for w in fused.workers]
        fused.compute_gradients_all(batches)
        fused.apply_local_updates(lr=0.05)
        state = opt.state_dict()
        # Named velocity views must reflect the fused matrix rows.
        assert any(np.any(v != 0) for v in state["velocity"].values())
        np.testing.assert_array_equal(
            np.concatenate([state["velocity"][k].ravel() for k in state["velocity"]]),
            fused.fused_update.velocity[0],
        )

    def test_diverged_lrs_fall_back(self):
        fused, _ = _paired_clusters(momentum=0.9)
        fused.workers[0].optimizer.set_lr(0.9)
        batches = [w.next_batch() for w in fused.workers]
        fused.compute_gradients_all(batches)
        # Mixed per-worker lrs: the fused step must refuse and the loop run.
        fused.apply_local_updates(lr=None)
        assert all(w.steps_taken == 1 for w in fused.workers)
