"""Shared per-step dropout stream: determinism and batched/fallback parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    BatchedReplicaExecutor,
    SharedDropoutStream,
    WorkerMatrix,
    attach_shared_dropout,
    module_has_active_dropout,
)
from repro.nn.layers import Dropout
from repro.nn.losses import cross_entropy_with_logits
from repro.nn.models import MLP, TransformerLM
from repro.utils.rng import spawn_rngs

N, B, T, V = 3, 4, 8, 20
MODEL_KW = dict(
    vocab_size=V, d_model=16, num_heads=2, num_layers=2, dim_feedforward=24, max_len=64
)


class TestSharedDropoutStream:
    def test_masks_are_deterministic_per_step_and_layer(self):
        a = SharedDropoutStream(seed=5, num_workers=4)
        b = SharedDropoutStream(seed=5, num_workers=4)
        a.set_step(3)
        b.set_step(3)
        np.testing.assert_array_equal(
            a.mask_block(1, (2, 3), 0.4), b.mask_block(1, (2, 3), 0.4)
        )

    def test_masks_differ_across_steps_layers_and_seeds(self):
        stream = SharedDropoutStream(seed=5, num_workers=4)
        stream.set_step(1)
        m_layer0 = stream.mask_block(0, (8, 8), 0.4).copy()
        m_layer1 = stream.mask_block(1, (8, 8), 0.4).copy()
        assert not np.array_equal(m_layer0, m_layer1)
        stream.set_step(2)
        assert not np.array_equal(m_layer0, stream.mask_block(0, (8, 8), 0.4))
        other = SharedDropoutStream(seed=6, num_workers=4)
        other.set_step(1)
        assert not np.array_equal(m_layer0, other.mask_block(0, (8, 8), 0.4))

    def test_blocks_cached_within_step(self):
        stream = SharedDropoutStream(seed=0, num_workers=2)
        stream.set_step(1)
        assert stream.mask_block(0, (4,), 0.5) is stream.mask_block(0, (4,), 0.5)
        assert stream.worker_mask(0, (4,), 0.5, 1) is stream.worker_mask(0, (4,), 0.5, 1)

    def test_worker_mask_equals_block_row(self):
        # Per-row derivation: a per-worker consumer draws exactly the row the
        # batched block stacks — without generating the other rows.
        stream = SharedDropoutStream(seed=3, num_workers=4)
        stream.set_step(2)
        block = stream.mask_block(1, (3, 5), 0.3)
        fresh = SharedDropoutStream(seed=3, num_workers=4)
        fresh.set_step(2)
        for slot in range(4):
            np.testing.assert_array_equal(
                block[slot], fresh.worker_mask(1, (3, 5), 0.3, slot)
            )

    def test_mask_block_row_range_matches_full_block(self):
        stream = SharedDropoutStream(seed=3, num_workers=6)
        stream.set_step(1)
        full = stream.mask_block(0, (2, 2), 0.4)
        part = stream.mask_block(0, (2, 2), 0.4, lo=2, hi=5)
        np.testing.assert_array_equal(full[2:5], part)

    def test_inverted_dropout_scaling(self):
        stream = SharedDropoutStream(seed=0, num_workers=1)
        stream.set_step(1)
        block = stream.mask_block(0, (10_000,), 0.25)
        kept = block[block > 0]
        assert np.allclose(kept, 1.0 / 0.75)
        assert 0.6 < kept.size / block.size < 0.9

    def test_requires_set_step(self):
        stream = SharedDropoutStream(seed=0, num_workers=1)
        with pytest.raises(RuntimeError):
            stream.mask_block(0, (4,), 0.5)

    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ValueError):
            SharedDropoutStream(seed=0, num_workers=0)


class TestAttachSharedDropout:
    def test_attaches_every_dropout_layer_in_order(self):
        model = TransformerLM(dropout=0.2, rng=np.random.default_rng(0), **MODEL_KW)
        stream = SharedDropoutStream(seed=0, num_workers=N)
        count = attach_shared_dropout(model, stream, worker_slot=1)
        assert count == 2 * MODEL_KW["num_layers"]
        layer_ids = [
            sub._stream_layer_id
            for _, sub in model.named_modules()
            if isinstance(sub, Dropout)
        ]
        assert layer_ids == list(range(count))
        assert all(
            sub._shared_stream is stream and sub._stream_slot == 1
            for _, sub in model.named_modules()
            if isinstance(sub, Dropout)
        )

    def test_worker_slot_bounds_checked(self):
        model = TransformerLM(dropout=0.2, rng=np.random.default_rng(0), **MODEL_KW)
        stream = SharedDropoutStream(seed=0, num_workers=2)
        with pytest.raises(ValueError):
            attach_shared_dropout(model, stream, worker_slot=2)

    def test_module_has_active_dropout(self):
        assert module_has_active_dropout(
            TransformerLM(dropout=0.2, rng=np.random.default_rng(0), **MODEL_KW)
        )
        assert not module_has_active_dropout(
            TransformerLM(dropout=0.0, rng=np.random.default_rng(0), **MODEL_KW)
        )
        assert not module_has_active_dropout(MLP((4, 4, 2)))


def make_streamed_matrix(dropout=0.3, seed=0):
    rngs = spawn_rngs(seed, N)
    models = [TransformerLM(dropout=dropout, rng=r, **MODEL_KW) for r in rngs]
    models[0].flatten_parameters()
    matrix = WorkerMatrix(N, models[0].flat_spec)
    stream = SharedDropoutStream(seed=seed, num_workers=N)
    for i, model in enumerate(models):
        matrix.adopt(i, model)
        attach_shared_dropout(model, stream, worker_slot=i)
    return matrix, models, stream


def make_batches(seed=1):
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(0, V, size=(B, T)), rng.integers(0, V, size=(B, T)))
        for _ in range(N)
    ]


class TestBatchedDropoutParity:
    def test_builds_with_shared_stream(self):
        matrix, models, _ = make_streamed_matrix()
        assert BatchedReplicaExecutor.build(matrix, models[0]) is not None

    def test_batched_bit_identical_to_fallback_with_active_dropout(self):
        # The exact-parity contract: the batched executor's (N, ...) mask
        # blocks and the per-worker layers' rows of the same blocks produce
        # identical losses and gradients in float64.
        matrix, models, stream = make_streamed_matrix()
        executor = BatchedReplicaExecutor.build(matrix, models[0])
        batches = make_batches()

        stream.set_step(1)
        losses = executor.step(batches)
        batched_grads = matrix.grads.copy()

        stream.set_step(1)  # same step -> same masks for the fallback pass
        for model, (x, y) in zip(models, batches):
            model.zero_grad()
            logits = model.forward(x)
            loss, dlogits = cross_entropy_with_logits(logits, y)
            model.backward(dlogits)
        np.testing.assert_array_equal(batched_grads, matrix.grads)
        fallback_losses = []
        stream.set_step(1)
        for model, (x, y) in zip(models, batches):
            logits = model.forward(x)
            loss, _ = cross_entropy_with_logits(logits, y)
            fallback_losses.append(loss)
        np.testing.assert_array_equal(losses, np.asarray(fallback_losses))

    def test_group_slice_matches_full_matrix(self):
        # A pool child's executor covers rows [lo, hi) but must apply rows
        # [lo, hi) of the full-cluster mask block, not a fresh block.
        matrix, models, stream = make_streamed_matrix()
        full = BatchedReplicaExecutor.build(matrix, models[0])
        batches = make_batches()
        stream.set_step(2)
        full.step(batches)
        full_grads = matrix.grads.copy()

        matrix.grads.fill(0.0)
        sub = WorkerMatrix(
            2, matrix.spec, params=matrix.params[1:3], grads=matrix.grads[1:3]
        )
        group_exec = BatchedReplicaExecutor.build(sub, models[1], row_offset=1)
        stream.set_step(2)
        group_exec.step(batches[1:3])
        np.testing.assert_array_equal(full_grads[1:3], matrix.grads[1:3])

    def test_eval_mode_ignores_stream(self):
        _, models, stream = make_streamed_matrix()
        model = models[0].eval()
        x = np.arange(B * T).reshape(B, T) % V
        # No set_step: eval-mode dropout never touches the stream.
        logits = model.forward(x)
        assert logits.shape == (B, T, V)
