"""Batched transformer-family execution vs the per-worker fallback loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchedReplicaExecutor, WorkerMatrix
from repro.nn.losses import cross_entropy_with_logits
from repro.nn.models import TransformerLM
from repro.utils.rng import spawn_rngs

DTYPES = ["float32", "float64"]
N, B, T, V = 3, 4, 8, 20
MODEL_KW = dict(
    vocab_size=V, d_model=16, num_heads=2, num_layers=2, dim_feedforward=24, max_len=64
)


def make_model(rng, dropout: float = 0.0):
    return TransformerLM(dropout=dropout, rng=rng, **MODEL_KW)


def make_matrix(dtype, dropout: float = 0.0):
    rngs = spawn_rngs(0, N)
    models = [make_model(r, dropout=dropout) for r in rngs]
    models[0].flatten_parameters(dtype=dtype)
    matrix = WorkerMatrix(N, models[0].flat_spec)
    for i, model in enumerate(models):
        matrix.adopt(i, model)
    return matrix, models


def make_batches(seed=1):
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(0, V, size=(B, T)), rng.integers(0, V, size=(B, T)))
        for _ in range(N)
    ]


class TestBuild:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_builds_for_transformer_lm(self, dtype):
        matrix, models = make_matrix(dtype)
        assert BatchedReplicaExecutor.build(matrix, models[0]) is not None

    def test_subclass_falls_back(self):
        class CustomLM(TransformerLM):
            pass

        model = CustomLM(**MODEL_KW)
        model.flatten_parameters()
        matrix = WorkerMatrix(1, model.flat_spec)
        matrix.adopt(0, model)
        assert BatchedReplicaExecutor.build(matrix, model) is None

    def test_active_dropout_without_shared_stream_falls_back(self):
        # Private per-layer dropout RNG streams cannot be replayed batched;
        # p > 0 only builds once a SharedDropoutStream is attached (see
        # tests/engine/test_dropout_stream.py).
        model = make_model(np.random.default_rng(0), dropout=0.2)
        model.flatten_parameters()
        matrix = WorkerMatrix(1, model.flat_spec)
        matrix.adopt(0, model)
        assert BatchedReplicaExecutor.build(matrix, model) is None


class TestStep:
    def test_bit_identical_to_per_worker_loop_in_float64(self):
        matrix, models = make_matrix("float64")
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        batches = make_batches()
        losses = exe.step(batches)
        assert losses is not None and losses.shape == (N,)
        for i, (x, y) in enumerate(batches):
            ref = make_model(np.random.default_rng(0))
            ref.flatten_parameters()
            ref.load_param_vector(matrix.params[i])
            ref.zero_grad()
            logits = ref.forward(x)
            loss, dlogits = cross_entropy_with_logits(logits, y)
            ref.backward(dlogits)
            # The executor milestone's bar: bit-identical float64 arithmetic
            # (same GEMM shapes, same reduction orders as the fallback).
            assert float(losses[i]) == loss
            np.testing.assert_array_equal(matrix.grads[i], ref.grad_vector)

    def test_matches_per_worker_loop_in_float32(self):
        matrix, models = make_matrix("float32")
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        batches = make_batches()
        losses = exe.step(batches)
        assert losses is not None
        for i, (x, y) in enumerate(batches):
            ref = make_model(np.random.default_rng(0))
            ref.flatten_parameters(dtype="float32")
            ref.load_param_vector(matrix.params[i])
            ref.zero_grad()
            logits = ref.forward(x)
            loss, dlogits = cross_entropy_with_logits(logits, y)
            ref.backward(dlogits)
            assert loss == pytest.approx(float(losses[i]), rel=1e-5)
            np.testing.assert_allclose(
                matrix.grads[i], ref.grad_vector, rtol=2e-4, atol=2e-6
            )

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_gradients_written_in_matrix_dtype(self, dtype):
        matrix, models = make_matrix(dtype)
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        assert exe.step(make_batches()) is not None
        assert matrix.grads.dtype == np.dtype(dtype)
        assert exe.grad_norms().shape == (N,)

    def test_embedding_rows_rezeroed_between_steps(self):
        # The embedding gradient is scatter-added, not matmul-overwritten;
        # a second step must not accumulate on top of the first.
        matrix, models = make_matrix("float64")
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        batches = make_batches()
        exe.step(batches)
        first = matrix.grads.copy()
        exe.step(batches)
        np.testing.assert_array_equal(matrix.grads, first)

    def test_mismatched_batch_shapes_fall_back(self):
        matrix, models = make_matrix("float64")
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        batches = make_batches()
        rng = np.random.default_rng(9)
        batches[1] = (
            rng.integers(0, V, size=(B + 1, T)),
            rng.integers(0, V, size=(B + 1, T)),
        )
        assert exe.step(batches) is None

    def test_float_inputs_fall_back(self):
        matrix, models = make_matrix("float64")
        exe = BatchedReplicaExecutor.build(matrix, models[0])
        rng = np.random.default_rng(2)
        float_batches = [
            (rng.standard_normal((B, T)), rng.integers(0, V, size=(B, T)))
            for _ in range(N)
        ]
        assert exe.step(float_batches) is None


class TestClusterIntegration:
    @staticmethod
    def _make_cluster(dtype):
        from repro.cluster.cluster import ClusterConfig, SimulatedCluster
        from repro.data.datasets import make_sequence_splits
        from repro.data.partition import SelSyncPartitioner
        from repro.optim.sgd import SGD

        train, test = make_sequence_splits(4096, 512, V, bptt=T, seed=0)
        config = ClusterConfig(
            num_workers=2,
            batch_size=4,
            seed=0,
            task="language_modeling",
            workload="transformer",
            dtype=dtype,
            eval_max_batches=1,
        )
        return SimulatedCluster(
            model_factory=lambda r: make_model(r),
            optimizer_factory=lambda m: SGD(m, lr=0.1),
            train_dataset=train,
            test_dataset=test,
            config=config,
            partitioner=SelSyncPartitioner(seed=0),
        )

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_lm_cluster_uses_batched_executor(self, dtype):
        from repro.algorithms.bsp import BSPTrainer

        cluster = self._make_cluster(dtype)
        assert cluster.replica_exec is not None
        trainer = BSPTrainer(cluster, eval_every=10_000)
        losses = [trainer.train_step()["loss"] for _ in range(3)]
        assert all(np.isfinite(losses))

    def test_training_trajectory_matches_fallback_loop(self):
        from repro.algorithms.bsp import BSPTrainer

        fused = self._make_cluster("float64")
        loop = self._make_cluster("float64")
        loop.replica_exec = None
        for cluster in (fused, loop):
            trainer = BSPTrainer(cluster, eval_every=10_000)
            for _ in range(5):
                trainer.train_step()
                trainer.global_step += 1
                cluster.global_step = trainer.global_step
        np.testing.assert_array_equal(fused.matrix.params, loop.matrix.params)

    def test_worker_stats_populated(self):
        cluster = self._make_cluster("float64")
        batches = [w.next_batch() for w in cluster.workers]
        cluster.compute_gradients_all(batches)
        for worker in cluster.workers:
            assert worker.last_loss is not None and np.isfinite(worker.last_loss)
            manual = float(np.linalg.norm(worker.grad_vector))
            assert worker.last_grad_norm == pytest.approx(manual, rel=1e-12)


def test_sequence_longer_than_positional_table_raises():
    # Same explicit error as the per-worker PositionalEncoding.
    short_kw = dict(MODEL_KW, max_len=4)
    rngs = spawn_rngs(0, N)
    models = [TransformerLM(dropout=0.0, rng=r, **short_kw) for r in rngs]
    models[0].flatten_parameters()
    matrix = WorkerMatrix(N, models[0].flat_spec)
    for i, model in enumerate(models):
        matrix.adopt(i, model)
    exe = BatchedReplicaExecutor.build(matrix, models[0])
    with pytest.raises(ValueError, match="exceeds positional table"):
        exe.step(make_batches())
