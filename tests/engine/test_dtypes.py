"""Dtype-parameterized engine: registry, buffers, modules and clusters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import WorkerMatrix
from repro.engine.dtypes import (
    DEFAULT_DTYPE,
    DEFAULT_TRANSPORT_DTYPE,
    SUPPORTED_DTYPES,
    TRANSPORT_DTYPES,
    WIRE_DTYPE_BYTES,
    dtype_name,
    resolve_dtype,
    resolve_transport_dtype,
    transport_dtype_bytes,
    transport_scale,
    wire_dtype_bytes,
)
from repro.engine.flat_buffer import FlatBuffer, ParamSpec
from repro.nn.models import MLP

DTYPES = ["float32", "float64"]


class TestDtypeRegistry:
    def test_default_is_float64(self):
        assert resolve_dtype(None) == np.dtype(np.float64) == DEFAULT_DTYPE

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_resolve_accepts_names_types_and_dtypes(self, dtype):
        expected = np.dtype(dtype)
        assert resolve_dtype(dtype) == expected
        assert resolve_dtype(expected) == expected
        assert resolve_dtype(expected.type) == expected

    @pytest.mark.parametrize("bad", ["float16", "int32", np.int64, "complex128"])
    def test_unsupported_dtypes_raise(self, bad):
        with pytest.raises(TypeError, match="unsupported"):
            resolve_dtype(bad)

    def test_wire_bytes_mapping(self):
        # Transport is float32 regardless of the compute dtype, so both
        # supported dtypes charge the canonical 4 bytes/element.
        for dtype in SUPPORTED_DTYPES:
            assert wire_dtype_bytes(dtype) == WIRE_DTYPE_BYTES == 4

    def test_wire_bytes_matches_legacy_constant(self):
        # The re-export consumed across comm/compression must stay in sync.
        from repro.utils.flatten import WIRE_DTYPE_BYTES as legacy

        assert legacy == WIRE_DTYPE_BYTES

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_dtype_name(self, dtype):
        assert dtype_name(dtype) == dtype


class TestTransportRegistry:
    def test_wire_bytes_mapping_is_exhaustive(self):
        # The transport mapping is the single source for on-wire element
        # widths: half, single and double precision, nothing else.
        expected = {"float16": 2, "float32": 4, "float64": 8}
        assert {d.name for d in TRANSPORT_DTYPES} == set(expected)
        for name, nbytes in expected.items():
            assert transport_dtype_bytes(name) == nbytes
            assert resolve_transport_dtype(name) == np.dtype(name)

    def test_default_transport_is_the_canonical_float32_wire(self):
        assert DEFAULT_TRANSPORT_DTYPE == np.dtype(np.float32)
        assert resolve_transport_dtype(None) == np.dtype(np.float32)
        assert transport_dtype_bytes() == WIRE_DTYPE_BYTES

    def test_transport_scale_relative_to_float32(self):
        assert transport_scale("float16") == 0.5
        assert transport_scale("float32") == 1.0
        assert transport_scale("float64") == 2.0
        assert transport_scale(None) == 1.0

    @pytest.mark.parametrize("bad", ["int8", "int32", np.complex128, "bfloat16"])
    def test_unsupported_transport_dtypes_raise(self, bad):
        with pytest.raises(TypeError):
            resolve_transport_dtype(bad)

    def test_float16_stays_rejected_as_compute_dtype(self):
        # float16 is a transport mode only: engine buffers never hold it.
        with pytest.raises(TypeError, match="unsupported"):
            resolve_dtype("float16")
        assert np.dtype(np.float16) not in SUPPORTED_DTYPES

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_fp16_compressor_prices_the_float16_transport_entry(self, dtype):
        # The compression layer's FP16 wire format and the transport mapping
        # must agree: 2 bytes/element shipped, float32-wire original bytes.
        from repro.compression.quantize import FP16Compressor

        vector = np.linspace(-1.0, 1.0, 33, dtype=dtype)
        payload = FP16Compressor().compress(vector)
        assert payload.compressed_bytes == vector.size * transport_dtype_bytes("float16")
        assert payload.original_bytes == vector.size * wire_dtype_bytes(dtype)
        assert payload.compression_ratio == pytest.approx(2.0)
        restored = FP16Compressor().decompress(payload)
        assert restored.dtype == np.dtype(dtype)
        np.testing.assert_allclose(restored, vector, atol=1e-3)


class TestSpecAndBufferDtype:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_spec_allocates_and_views_in_dtype(self, dtype):
        spec = ParamSpec([("w", (3, 2)), ("b", (2,))], dtype=dtype)
        vec = spec.allocate()
        assert vec.dtype == np.dtype(dtype)
        views = spec.views(vec)
        assert all(v.dtype == np.dtype(dtype) for v in views.values())

    def test_spec_dtype_mismatch_raises(self):
        spec32 = ParamSpec([("w", (4,))], dtype="float32")
        with pytest.raises(TypeError, match="float32"):
            spec32.views(np.zeros(4, dtype=np.float64))

    def test_spec_equality_includes_dtype(self):
        shapes = [("w", (4,))]
        assert ParamSpec(shapes, dtype="float32") != ParamSpec(shapes, dtype="float64")
        assert ParamSpec(shapes, dtype="float64") == ParamSpec(shapes)

    def test_with_dtype_preserves_layout(self):
        spec = ParamSpec([("w", (3, 2)), ("b", (2,))], dtype="float64")
        spec32 = spec.with_dtype("float32")
        assert spec32.dtype == np.dtype(np.float32)
        assert spec32.to_flatten_spec() == spec.to_flatten_spec()
        assert spec.with_dtype("float64") is spec

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_flat_buffer_roundtrip(self, dtype):
        tree = {"w": np.arange(6, dtype=np.float64).reshape(3, 2), "b": np.ones(2)}
        buf = FlatBuffer.from_tree(tree, dtype=dtype)
        assert buf.dtype == np.dtype(dtype)
        assert buf.vector.dtype == np.dtype(dtype)
        rebuilt = buf.as_dict(copy=True)
        for name in tree:
            assert rebuilt[name].dtype == np.dtype(dtype)
            np.testing.assert_allclose(rebuilt[name], tree[name], rtol=1e-6)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_load_vector_casts_cross_dtype(self, dtype):
        spec = ParamSpec([("w", (4,))], dtype=dtype)
        buf = FlatBuffer(spec)
        other = np.arange(4, dtype=np.float32 if dtype == "float64" else np.float64)
        buf.load_vector(other)
        assert buf.vector.dtype == np.dtype(dtype)
        np.testing.assert_allclose(buf.vector, other)


class TestModuleAndMatrixDtype:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_flatten_parameters_casts_views(self, dtype):
        model = MLP((6, 8, 3), rng=np.random.default_rng(0))
        model.flatten_parameters(dtype=dtype)
        assert model.dtype == np.dtype(dtype)
        assert model.param_vector.dtype == np.dtype(dtype)
        assert model.grad_vector.dtype == np.dtype(dtype)
        for param in model.parameters():
            assert param.data.dtype == np.dtype(dtype)
            assert param.grad.dtype == np.dtype(dtype)
            # views must alias the flat storage
            assert param.data.base is not None

    def test_reflatten_with_other_dtype_raises(self):
        model = MLP((4, 3), rng=np.random.default_rng(0))
        model.flatten_parameters(dtype="float32")
        with pytest.raises(TypeError, match="already flattened"):
            model.flatten_parameters(dtype="float64")

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_adoption_inherits_matrix_dtype(self, dtype):
        ref = MLP((6, 8, 3), rng=np.random.default_rng(0))
        ref.flatten_parameters(dtype=dtype)
        matrix = WorkerMatrix(3, ref.flat_spec)
        assert matrix.dtype == np.dtype(dtype)
        assert matrix.params.dtype == np.dtype(dtype)
        assert matrix.grads.dtype == np.dtype(dtype)
        for worker_id in range(3):
            model = MLP((6, 8, 3), rng=np.random.default_rng(worker_id))
            matrix.adopt(worker_id, model)
            assert model.dtype == np.dtype(dtype)
            assert model.param_vector is not None
            # adopted storage aliases the matrix row
            model.param_vector[0] = 7.5
            assert matrix.params[worker_id, 0] == np.dtype(dtype).type(7.5)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_forward_backward_stay_in_dtype(self, dtype):
        model = MLP((6, 8, 3), rng=np.random.default_rng(0))
        model.flatten_parameters(dtype=dtype)
        x = np.random.default_rng(1).standard_normal((5, 6))
        logits = model.forward(x)
        assert logits.dtype == np.dtype(dtype)
        model.backward(np.ones_like(logits))
        assert model.grad_vector.dtype == np.dtype(dtype)


class TestClusterDtypeConsistency:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_every_engine_buffer_shares_the_cluster_dtype(self, dtype):
        from repro.cluster.cluster import ClusterConfig, SimulatedCluster
        from repro.data.datasets import make_classification_splits
        from repro.optim.sgd import SGD

        train, test = make_classification_splits(
            128, 64, 4, 8, class_sep=3.0, noise=0.5, seed=0
        )
        config = ClusterConfig(num_workers=3, batch_size=8, seed=0, dtype=dtype)
        cluster = SimulatedCluster(
            model_factory=lambda rng: MLP((8, 12, 4), rng=rng),
            optimizer_factory=lambda m: SGD(m, lr=0.1, momentum=0.9),
            train_dataset=train,
            test_dataset=test,
            config=config,
        )
        expected = np.dtype(dtype)
        assert cluster.dtype == expected
        assert cluster.matrix.params.dtype == expected
        assert cluster.matrix.grads.dtype == expected
        assert cluster.ps.state_vector.dtype == expected
        assert cluster.fused_update.velocity.dtype == expected
        for worker in cluster.workers:
            assert worker.param_vector.dtype == expected
            assert worker.optimizer._velocity_vector.dtype == expected
        # one step keeps everything in-dtype
        batches = [w.next_batch() for w in cluster.workers]
        cluster.compute_gradients_all(batches)
        cluster.apply_local_updates(lr=0.05)
        assert cluster.matrix.grads.dtype == expected
        assert cluster.average_worker_vector().dtype == expected

    def test_invalid_cluster_dtype_rejected(self):
        from repro.cluster.cluster import ClusterConfig

        with pytest.raises(TypeError, match="unsupported"):
            ClusterConfig(num_workers=2, dtype="float16")
