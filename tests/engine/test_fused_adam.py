"""FusedAdamUpdate: (N, D) moment matrices vs per-worker Adam steps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import FusedAdamUpdate, FusedSGDUpdate, build_fused_update
from repro.nn.models import MLP

DTYPES = ["float32", "float64"]


def make_adam_cluster(dtype="float64", num_workers=4, lr=1e-3, weight_decay=0.0, seed=0):
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.datasets import make_classification_splits
    from repro.data.partition import SelSyncPartitioner
    from repro.optim.adam import Adam

    train, test = make_classification_splits(
        256, 64, 4, 12, class_sep=3.0, noise=0.6, seed=seed
    )
    config = ClusterConfig(num_workers=num_workers, batch_size=8, seed=seed, dtype=dtype)
    return SimulatedCluster(
        model_factory=lambda rng: MLP((12, 16, 4), rng=rng),
        optimizer_factory=lambda m: Adam(m, lr=lr, weight_decay=weight_decay),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


class TestBuild:
    def test_cluster_wires_fused_adam(self):
        cluster = make_adam_cluster()
        assert isinstance(cluster.fused_update, FusedAdamUpdate)

    def test_sgd_cluster_still_gets_fused_sgd(self, small_cluster_factory):
        cluster = small_cluster_factory(momentum=0.9)
        assert isinstance(cluster.fused_update, FusedSGDUpdate)

    def test_non_uniform_hyperparams_fall_back(self):
        cluster = make_adam_cluster()
        cluster.workers[1].optimizer.beta1 = 0.5
        assert FusedAdamUpdate.build(cluster.workers, cluster.matrix) is None
        assert build_fused_update(cluster.workers, cluster.matrix) is None

    def test_moments_rebound_onto_matrix_rows(self):
        cluster = make_adam_cluster()
        fused = cluster.fused_update
        for row, opt in zip(fused.m, [w.optimizer for w in cluster.workers]):
            assert opt._m_vector.base is fused.m or opt._m_vector is row
            # mutating the fused matrix must be visible through the optimizer
            row[0] = 3.25
            assert opt._m_vector[0] == 3.25
            row[0] = 0.0


class TestEquivalence:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_fused_step_matches_per_worker_loop(self, dtype, weight_decay):
        fused_cluster = make_adam_cluster(dtype=dtype, weight_decay=weight_decay)
        loop_cluster = make_adam_cluster(dtype=dtype, weight_decay=weight_decay)
        # Disabling the fused updater forces apply_local_updates through the
        # sequential per-worker optimizer.step() path.
        loop_cluster.fused_update = None

        for _ in range(5):
            batches = [w.next_batch() for w in fused_cluster.workers]
            fused_cluster.compute_gradients_all(batches)
            loop_batches = [w.next_batch() for w in loop_cluster.workers]
            loop_cluster.compute_gradients_all(loop_batches)
            fused_cluster.apply_local_updates(lr=2e-3)
            loop_cluster.apply_local_updates(lr=2e-3)

        # The fused (N, D) arithmetic mirrors Adam._update_flat operation for
        # operation, so the trajectories agree bit for bit.
        np.testing.assert_array_equal(
            fused_cluster.matrix.params, loop_cluster.matrix.params
        )
        for fw, lw in zip(fused_cluster.workers, loop_cluster.workers):
            np.testing.assert_array_equal(
                fw.optimizer._m_vector, lw.optimizer._m_vector
            )
            np.testing.assert_array_equal(
                fw.optimizer._v_vector, lw.optimizer._v_vector
            )
            assert fw.optimizer._t == lw.optimizer._t
            assert fw.steps_taken == lw.steps_taken

    def test_aggregated_gradient_broadcast(self):
        """A flat (D,) gradient applies one identical Adam step everywhere."""
        cluster = make_adam_cluster()
        grads = np.random.default_rng(3).standard_normal(
            cluster.matrix.spec.total_size
        )
        cluster.broadcast_state(cluster.ps.pull_vector())
        assert cluster.fused_update.apply(lr=1e-3, grads=grads)
        # all replicas started identical and saw the same gradient
        assert np.ptp(cluster.matrix.params, axis=0).max() == 0.0

    def test_diverged_timesteps_force_fallback(self):
        cluster = make_adam_cluster()
        batches = [w.next_batch() for w in cluster.workers]
        cluster.compute_gradients_all(batches)
        # SSP-style individual stepping desynchronizes bias correction.
        cluster.workers[0].optimizer.step()
        assert cluster.fused_update.apply(lr=1e-3) is False

    def test_diverged_lrs_force_fallback(self):
        cluster = make_adam_cluster()
        cluster.workers[2].optimizer.set_lr(5e-2)
        assert cluster.fused_update.apply() is False


class TestTraining:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_bsp_with_adam_converges(self, dtype):
        from repro.algorithms.bsp import BSPTrainer

        cluster = make_adam_cluster(dtype=dtype, lr=5e-3)
        trainer = BSPTrainer(cluster, eval_every=10_000)
        first = None
        for _ in range(40):
            metrics = trainer.train_step()
            trainer.global_step += 1
            cluster.global_step = trainer.global_step
            if first is None:
                first = metrics["loss"]
        assert metrics["loss"] < first
