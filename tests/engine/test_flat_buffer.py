"""Tests for the flat-buffer engine: ParamSpec, FlatBuffer, WorkerMatrix."""

import numpy as np
import pytest

from repro.engine import FlatBuffer, ParamSpec, WorkerMatrix
from repro.nn.models import MLP
from repro.nn.module import Module, Parameter
from repro.optim.sgd import SGD


class TestParamSpec:
    def test_layout_offsets_and_total(self):
        spec = ParamSpec([("w", (2, 3)), ("b", (3,)), ("s", ())])
        assert spec.total_size == 6 + 3 + 1
        assert spec.slice_of("w") == slice(0, 6)
        assert spec.slice_of("b") == slice(6, 9)
        assert spec.slice_of("s") == slice(9, 10)
        assert spec.shape_of("s") == ()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            ParamSpec([("w", (2,)), ("w", (3,))])

    def test_flatten_tree_validates(self):
        spec = ParamSpec([("w", (2,)), ("b", (3,))])
        with pytest.raises(KeyError):
            spec.flatten_tree({"w": np.zeros(2)})
        with pytest.raises(ValueError):
            spec.flatten_tree({"w": np.zeros(5), "b": np.zeros(3)})

    def test_unflatten_copy_and_view(self):
        spec = ParamSpec([("w", (2, 2))])
        vec = np.arange(4.0)
        copied = spec.unflatten(vec, copy=True)
        copied["w"][...] = 9.0
        assert vec[0] == 0.0
        views = spec.unflatten(vec, copy=False)
        views["w"][0, 0] = 7.0
        assert vec[0] == 7.0

    def test_to_flatten_spec_matches_utils_format(self):
        from repro.utils.flatten import flatten_arrays

        tree = {"a": np.arange(6.0).reshape(2, 3), "b": np.zeros(2)}
        _, utils_spec = flatten_arrays(tree)
        assert ParamSpec.from_tree(tree).to_flatten_spec() == utils_spec


class TestFlatBufferAliasing:
    def test_view_mutation_hits_vector(self):
        buf = FlatBuffer.from_tree({"w": np.zeros((2, 2)), "b": np.zeros(3)})
        buf["w"][1, 1] = 5.0
        assert buf.vector[3] == 5.0

    def test_vector_mutation_hits_view(self):
        buf = FlatBuffer.from_tree({"w": np.zeros((2, 2)), "b": np.zeros(3)})
        buf.vector[4] = -2.0
        assert buf["b"][0] == -2.0

    def test_scalar_parameter_views(self):
        buf = FlatBuffer.from_tree({"s": np.array(3.0)})
        assert buf["s"].shape == ()
        buf.vector[0] = 1.5
        assert float(buf["s"]) == 1.5

    def test_as_dict_copy_is_isolated(self):
        buf = FlatBuffer.from_tree({"w": np.ones(4)})
        snap = buf.as_dict(copy=True)
        snap["w"][...] = 0.0
        assert np.all(buf.vector == 1.0)

    def test_load_vector_and_rebind(self):
        spec = ParamSpec([("w", (4,))])
        buf = FlatBuffer(spec)
        buf.load_vector(np.arange(4.0))
        storage = np.zeros(4)
        buf.rebind(storage)
        np.testing.assert_array_equal(storage, np.arange(4.0))
        buf["w"][0] = 9.0
        assert storage[0] == 9.0

    def test_empty_tree(self):
        buf = FlatBuffer.from_tree({})
        assert buf.size == 0 and buf.vector.size == 0

    def test_dtype_enforced(self):
        spec = ParamSpec([("w", (2,))])
        with pytest.raises(TypeError):
            FlatBuffer(spec, np.zeros(2, dtype=np.float32))


class _Tiny(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.arange(4.0).reshape(2, 2))
        self.b = Parameter(np.zeros(2))

    def forward(self, x):
        return x @ self.w.data + self.b.data

    def backward(self, g):
        return g


class TestModuleFlattening:
    def test_param_vector_aliases_parameters(self):
        m = _Tiny()
        m.flatten_parameters()
        m.param_vector[0] = 42.0
        assert m.w.data[0, 0] == 42.0
        m.w.data[1, 1] = -1.0
        assert m.param_vector[3] == -1.0

    def test_grad_vector_aliases_gradients(self):
        m = _Tiny()
        m.flatten_parameters()
        m.w.grad += 2.0
        assert np.all(m.grad_vector[:4] == 2.0)
        m.zero_grad()
        assert np.all(m.grad_vector == 0.0)

    def test_flatten_preserves_values(self):
        m = _Tiny()
        before = m.state_dict()
        m.flatten_parameters()
        after = m.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_state_dict_still_returns_copies(self):
        m = _Tiny()
        m.flatten_parameters()
        state = m.state_dict()
        state["w"][...] = 99.0
        assert not np.any(m.w.data == 99.0)

    def test_state_view_is_live(self):
        m = _Tiny()
        view = m.state_view()
        view["w"][0, 0] = 11.0
        assert m.w.data[0, 0] == 11.0


class TestWorkerMatrix:
    def _adopted(self, n=3):
        spec = None
        models = [MLP((4, 6, 2), rng=np.random.default_rng(i)) for i in range(n)]
        models[0].flatten_parameters()
        matrix = WorkerMatrix(n, models[0].flat_spec)
        for i, model in enumerate(models):
            matrix.adopt(i, model)
        return matrix, models

    def test_adoption_aliases_rows(self):
        matrix, models = self._adopted()
        models[1].param_vector[0] = 123.0
        assert matrix.params[1, 0] == 123.0
        matrix.params[2, -1] = -7.0
        assert models[2].param_vector[-1] == -7.0

    def test_adoption_preserves_values(self):
        model = MLP((4, 6, 2), rng=np.random.default_rng(0))
        expected = model.state_dict()
        model.flatten_parameters()
        matrix = WorkerMatrix(1, model.flat_spec)
        matrix.adopt(0, model)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, expected[name])

    def test_optimizer_step_mutates_row(self):
        matrix, models = self._adopted()
        opt = SGD(models[0], lr=0.5)
        before = matrix.params[0].copy()
        models[0].grad_vector[:] = 1.0
        opt.step()
        np.testing.assert_allclose(matrix.params[0], before - 0.5)

    def test_broadcast_row_assignment(self):
        matrix, models = self._adopted()
        vec = np.full(matrix.spec.total_size, 3.25)
        matrix.broadcast(vec)
        for model in models:
            np.testing.assert_array_equal(model.param_vector, vec)

    def test_mean_and_consistency(self):
        matrix, _ = self._adopted()
        manual_mean = matrix.params.mean(axis=0)
        np.testing.assert_allclose(matrix.mean_params(), manual_mean)
        assert matrix.consistency_error() > 0.0
        matrix.broadcast(manual_mean)
        assert matrix.consistency_error() == pytest.approx(0.0, abs=1e-12)
        assert matrix.divergence() == pytest.approx(0.0, abs=1e-12)

    def test_state_dict_per_worker(self):
        matrix, models = self._adopted()
        state = matrix.state_dict(1)
        for name, value in models[1].state_dict().items():
            np.testing.assert_array_equal(state[name], value)

    def test_bad_worker_id(self):
        matrix, _ = self._adopted()
        with pytest.raises(ValueError):
            matrix.param_row(9)
