"""Tests for EWMA smoothing and gradient-variance statistics."""

import numpy as np
import pytest

from repro.stats.ewma import EWMA, ewma_smooth
from repro.stats.variance import (
    RunningVariance,
    gradient_norm,
    gradient_second_moment,
    gradient_variance,
    per_layer_norms,
)


class TestEWMA:
    def test_first_value_passthrough(self):
        ewma = EWMA(alpha=0.2)
        assert ewma.update(5.0) == 5.0

    def test_smoothing_formula(self):
        ewma = EWMA(alpha=0.5)
        ewma.update(0.0)
        assert ewma.update(10.0) == pytest.approx(5.0)
        assert ewma.update(10.0) == pytest.approx(7.5)

    def test_converges_to_constant_input(self):
        ewma = EWMA(alpha=0.3)
        for _ in range(200):
            ewma.update(3.0)
        assert ewma.value == pytest.approx(3.0)

    def test_smoothed_value_within_observed_range(self):
        """EWMA of bounded observations stays within their range."""
        rng = np.random.default_rng(0)
        ewma = EWMA(alpha=0.16, window=25)
        values = rng.uniform(2.0, 4.0, size=100)
        for v in values:
            ewma.update(v)
            assert 2.0 <= ewma.value <= 4.0

    def test_window_tracking(self):
        ewma = EWMA(alpha=0.2, window=5)
        for i in range(3):
            ewma.update(float(i))
        assert not ewma.window_full
        for i in range(5):
            ewma.update(float(i))
        assert ewma.window_full
        assert ewma.count == 5

    def test_window_mean(self):
        ewma = EWMA(alpha=0.5, window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            ewma.update(v)
        assert ewma.window_mean() == pytest.approx(3.0)

    def test_reset(self):
        ewma = EWMA()
        ewma.update(1.0)
        ewma.reset()
        assert not ewma.ready
        with pytest.raises(RuntimeError):
            _ = ewma.value

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            EWMA().update(float("nan"))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)
        with pytest.raises(ValueError):
            EWMA(alpha=1.5)
        with pytest.raises(ValueError):
            EWMA(window=0)

    def test_ewma_smooth_series_length(self):
        out = ewma_smooth([1.0, 2.0, 3.0], alpha=0.5)
        assert len(out) == 3
        assert out[0] == 1.0


class TestRunningVariance:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(500)
        rv = RunningVariance()
        for v in values:
            rv.update(v)
        np.testing.assert_allclose(rv.mean, values.mean(), atol=1e-10)
        np.testing.assert_allclose(rv.variance, values.var(ddof=1), atol=1e-10)

    def test_fewer_than_two_samples(self):
        rv = RunningVariance()
        assert rv.variance == 0.0
        rv.update(3.0)
        assert rv.variance == 0.0
        assert rv.std == 0.0


class TestGradientStatistics:
    def _grads(self):
        return {"a": np.array([1.0, -1.0, 2.0]), "b": np.array([[0.0, 3.0]])}

    def test_gradient_norm(self):
        expected = np.sqrt(1 + 1 + 4 + 0 + 9)
        assert gradient_norm(self._grads()) == pytest.approx(expected)

    def test_second_moment(self):
        expected = (1 + 1 + 4 + 0 + 9) / 5
        assert gradient_second_moment(self._grads()) == pytest.approx(expected)

    def test_variance_matches_numpy(self):
        flat = np.concatenate([g.ravel() for g in self._grads().values()])
        assert gradient_variance(self._grads()) == pytest.approx(flat.var())

    def test_empty_dict(self):
        assert gradient_variance({}) == 0.0
        assert gradient_second_moment({}) == 0.0
        assert gradient_norm({}) == 0.0

    def test_per_layer_norms(self):
        norms = per_layer_norms(self._grads())
        assert set(norms) == {"a", "b"}
        assert norms["b"] == pytest.approx(3.0)
