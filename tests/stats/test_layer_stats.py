"""Batched per-layer statistics from worker-matrix slices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ParamSpec, WorkerMatrix
from repro.stats import (
    layer_sample,
    layer_view,
    matrix_layer_norms,
    mean_layer_norms,
    per_layer_norms,
)
from tests.conftest import make_small_cluster

N = 4
SPEC = [("layer0.weight", (3, 2)), ("layer0.bias", (3,)), ("head.weight", (2, 3))]


def make_matrix(seed=0):
    spec = ParamSpec(SPEC)
    matrix = WorkerMatrix(N, spec)
    rng = np.random.default_rng(seed)
    matrix.grads[:] = rng.standard_normal(matrix.grads.shape)
    matrix.params[:] = rng.standard_normal(matrix.params.shape)
    return matrix


class TestMatrixLayerNorms:
    def test_matches_per_worker_unflatten(self):
        # The batched slice reduction must agree with the per-worker
        # reference path (unflatten each row, reduce tensor by tensor).
        matrix = make_matrix()
        batched = matrix_layer_norms(matrix.grads, matrix.spec)
        for worker_id in range(N):
            named = matrix.spec.unflatten(matrix.grads[worker_id])
            reference = per_layer_norms(named)
            for name in reference:
                assert batched[name][worker_id] == pytest.approx(reference[name])

    def test_returns_one_entry_per_layer_in_spec_order(self):
        matrix = make_matrix()
        norms = matrix_layer_norms(matrix.grads, matrix.spec)
        assert list(norms) == [name for name, _ in SPEC]
        assert all(v.shape == (N,) for v in norms.values())

    def test_mean_layer_norms_averages_workers(self):
        matrix = make_matrix()
        norms = matrix_layer_norms(matrix.grads, matrix.spec)
        means = mean_layer_norms(matrix.grads, matrix.spec)
        for name in means:
            assert means[name] == pytest.approx(float(norms[name].mean()))

    def test_shape_mismatch_rejected(self):
        matrix = make_matrix()
        with pytest.raises(ValueError):
            matrix_layer_norms(matrix.grads[:, :-1], matrix.spec)


class TestLayerViewAndSample:
    def test_layer_view_is_zero_copy(self):
        matrix = make_matrix()
        view = layer_view(matrix.grads, matrix.spec, "layer0.bias")
        assert view.shape == (N, 3)
        assert np.shares_memory(view, matrix.grads)

    def test_layer_sample_pools_all_workers(self):
        matrix = make_matrix()
        sample = layer_sample(matrix.grads, matrix.spec, "layer0.weight")
        assert sample.shape == (N * 6,)
        np.testing.assert_array_equal(
            sample, layer_view(matrix.grads, matrix.spec, "layer0.weight").ravel()
        )

    def test_layer_sample_subsamples_deterministically(self):
        matrix = make_matrix()
        a = layer_sample(matrix.grads, matrix.spec, "layer0.weight", max_samples=5,
                         rng=np.random.default_rng(1))
        b = layer_sample(matrix.grads, matrix.spec, "layer0.weight", max_samples=5,
                         rng=np.random.default_rng(1))
        assert a.shape == (5,)
        np.testing.assert_array_equal(a, b)

    def test_unknown_layer_raises(self):
        matrix = make_matrix()
        with pytest.raises(KeyError):
            layer_view(matrix.grads, matrix.spec, "missing")


class TestClusterWiring:
    def test_cluster_layer_gradient_norms_match_worker_grads(self):
        cluster = make_small_cluster(num_workers=3, seed=2)
        try:
            batches = [w.next_batch() for w in cluster.workers]
            cluster.compute_gradients_all(batches)
            norms = cluster.layer_gradient_norms()
            assert list(norms) == cluster.matrix.spec.names()
            for worker_id, worker in enumerate(cluster.workers):
                named = worker.model.grad_view()
                for name, grad in named.items():
                    assert norms[name][worker_id] == pytest.approx(
                        float(np.linalg.norm(grad.ravel()))
                    )
        finally:
            cluster.close()

    def test_cluster_layer_parameter_norms_and_kde_sample(self):
        cluster = make_small_cluster(num_workers=3, seed=2)
        try:
            name = cluster.matrix.spec.names()[0]
            pnorms = cluster.layer_parameter_norms()
            assert pnorms[name].shape == (3,)
            batches = [w.next_batch() for w in cluster.workers]
            cluster.compute_gradients_all(batches)
            sample = cluster.layer_gradient_sample(name, max_samples=16)
            assert sample.ndim == 1 and 0 < sample.size <= 16
            assert sample.dtype == np.float64
        finally:
            cluster.close()
