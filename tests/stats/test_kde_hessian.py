"""Tests for KDE / distribution summaries and Hessian eigenvalue estimation."""

import numpy as np
import pytest

from repro.nn.models import MLP
from repro.stats.hessian import hessian_top_eigenvalue, hessian_vector_product
from repro.stats.kde import distribution_summary, gaussian_kde_density, histogram_density


class TestKDE:
    def test_density_integrates_to_one(self):
        samples = np.random.default_rng(0).standard_normal(500)
        grid, density = gaussian_kde_density(samples, grid_points=400)
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_density_peaks_near_mode(self):
        samples = np.random.default_rng(0).normal(loc=2.0, scale=0.3, size=800)
        grid, density = gaussian_kde_density(samples)
        assert abs(grid[np.argmax(density)] - 2.0) < 0.3

    def test_custom_grid_respected(self):
        grid = np.linspace(-1, 1, 50)
        out_grid, density = gaussian_kde_density(
            np.random.default_rng(0).standard_normal(100), grid=grid
        )
        np.testing.assert_array_equal(out_grid, grid)
        assert density.shape == (50,)

    def test_degenerate_samples_fallback(self):
        grid, density = gaussian_kde_density(np.full(10, 3.0))
        assert np.all(np.isfinite(density))
        assert density.max() > 0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            gaussian_kde_density(np.array([]))

    def test_histogram_density(self):
        centers, density = histogram_density(
            np.random.default_rng(0).standard_normal(1000), bins=20
        )
        assert centers.shape == (20,)
        assert np.all(density >= 0)


class TestDistributionSummary:
    def test_fraction_near_zero_grows_as_values_shrink(self):
        """Fig. 3: late-training gradients concentrate near zero."""
        early = np.random.default_rng(0).normal(scale=1e-2, size=2000)
        late = np.random.default_rng(1).normal(scale=1e-5, size=2000)
        assert (
            distribution_summary(late).fraction_near_zero
            > distribution_summary(early).fraction_near_zero
        )

    def test_quantiles_ordered(self):
        summary = distribution_summary(np.random.default_rng(0).standard_normal(500))
        q = summary.quantiles
        assert q["p5"] <= q["p25"] <= q["p50"] <= q["p75"] <= q["p95"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distribution_summary(np.array([]))


class TestHessian:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        model = MLP((6, 8, 3), rng=rng)
        x = rng.standard_normal((16, 6))
        y = rng.integers(0, 3, size=16)
        return model, x, y

    def test_hvp_is_linear_in_vector(self):
        model, x, y = self._setup()
        n = model.num_parameters()
        v = np.random.default_rng(1).standard_normal(n)
        hv = hessian_vector_product(model, x, y, v)
        hv2 = hessian_vector_product(model, x, y, 2.0 * v)
        np.testing.assert_allclose(hv2, 2.0 * hv, rtol=1e-2, atol=1e-5)

    def test_hvp_restores_parameters(self):
        model, x, y = self._setup()
        before = model.state_dict()
        v = np.ones(model.num_parameters())
        hessian_vector_product(model, x, y, v)
        after = model.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_hvp_rejects_bad_vector(self):
        model, x, y = self._setup()
        with pytest.raises(ValueError):
            hessian_vector_product(model, x, y, np.ones(3))
        with pytest.raises(ValueError):
            hessian_vector_product(model, x, y, np.zeros(model.num_parameters()))

    def test_top_eigenvalue_finite_and_reproducible(self):
        model, x, y = self._setup()
        eig1 = hessian_top_eigenvalue(model, x, y, num_iterations=15, seed=0)
        eig1_again = hessian_top_eigenvalue(model, x, y, num_iterations=15, seed=0)
        assert np.isfinite(eig1) and eig1 != 0.0
        # Same random start must give the same estimate (determinism); different
        # starts may land on different extreme eigenvalues of the indefinite
        # Hessian, which is fine for the Fig. 4 trend comparison.
        assert eig1 == pytest.approx(eig1_again)

    def test_top_eigenvalue_scales_with_loss_curvature(self):
        """Scaling the logit head scales the curvature of the loss surface."""
        model, x, y = self._setup()
        eig_small = abs(hessian_top_eigenvalue(model, x, y, num_iterations=12, seed=0))
        for p in model.parameters():
            p.data *= 3.0
        eig_large = abs(hessian_top_eigenvalue(model, x, y, num_iterations=12, seed=0))
        assert eig_large != pytest.approx(eig_small, rel=1e-3)

    def test_invalid_iterations(self):
        model, x, y = self._setup()
        with pytest.raises(ValueError):
            hessian_top_eigenvalue(model, x, y, num_iterations=0)
