"""Span tracer unit tests: no-op path, nesting, ids, sinks, adoption."""

import json
import os
import threading
import time
import tracemalloc

from repro import telemetry
from repro.telemetry import NULL_SPAN, Tracer, summarize_trace


class TestDisabledFastPath:
    def test_span_returns_the_shared_singleton(self):
        assert not telemetry.tracing_enabled()
        assert telemetry.span("anything") is NULL_SPAN
        assert telemetry.span("something.else") is NULL_SPAN
        with telemetry.span("nested") as span:
            assert span is NULL_SPAN
            assert span.set("key", "value") is NULL_SPAN

    def test_noop_records_nothing(self):
        for _ in range(25):
            with telemetry.span("hot.loop"):
                pass
        assert telemetry.get_tracer().drain() == []
        assert telemetry.phase_snapshot() == {}

    def test_noop_path_allocates_nothing(self):
        import repro.telemetry as facade
        import repro.telemetry.trace as trace_mod

        with telemetry.span("warmup"):
            pass
        filters = [
            tracemalloc.Filter(True, facade.__file__),
            tracemalloc.Filter(True, trace_mod.__file__),
        ]
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot().filter_traces(filters)
            for _ in range(500):
                with telemetry.span("hot"):
                    pass
            after = tracemalloc.take_snapshot().filter_traces(filters)
        finally:
            tracemalloc.stop()
        growth = sum(
            stat.size_diff for stat in after.compare_to(before, "filename")
        )
        assert growth == 0

    def test_metrics_helpers_are_noops_when_disabled(self):
        telemetry.count("repro_test_total", decision="sync")
        telemetry.observe("repro_test_seconds", 0.5)
        telemetry.gauge("repro_test_depth", 3)
        assert telemetry.get_metrics().families() == {}


class TestEnabledTracing:
    def test_nesting_parents_and_shared_trace_id(self):
        telemetry.configure(tracing=True)
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        names = [span["name"] for span in telemetry.get_tracer().drain()]
        assert names == ["inner", "outer"]  # finish order

    def test_sibling_roots_start_distinct_traces(self):
        telemetry.configure(tracing=True)
        with telemetry.span("first") as first:
            pass
        with telemetry.span("second") as second:
            pass
        assert first.trace_id != second.trace_id
        assert first.span_id != second.span_id

    def test_span_ids_embed_the_pid(self):
        telemetry.configure(tracing=True)
        with telemetry.span("work") as span:
            pass
        assert span.span_id.startswith(f"{os.getpid():x}-")
        assert span.trace_id.startswith(f"t{os.getpid():x}-")

    def test_attributes_and_record_shape(self):
        telemetry.configure(tracing=True)
        with telemetry.span("attrs") as span:
            span.set("rows", 8).set("tick", 3)
        (record,) = telemetry.get_tracer().drain()
        assert record["attrs"] == {"rows": 8, "tick": 3}
        assert record["pid"] == os.getpid()
        assert record["thread"] == threading.current_thread().name
        assert record["duration"] >= 0.0
        assert record["start"] > 0.0

    def test_phase_totals_accumulate_on_span_end(self):
        telemetry.configure(tracing=True)
        before = telemetry.phase_snapshot()
        with telemetry.span("phase.a"):
            time.sleep(0.002)
        with telemetry.span("phase.a"):
            pass
        with telemetry.span("phase.b"):
            pass
        delta = telemetry.phase_delta(before)
        assert set(delta) == {"phase.a", "phase.b"}
        assert delta["phase.a"] >= 0.002

    def test_thread_stacks_are_isolated(self):
        telemetry.configure(tracing=True)
        seen = {}

        def worker():
            with telemetry.span("thread.root") as span:
                seen["trace_id"] = span.trace_id
                seen["parent_id"] = span.parent_id

        with telemetry.span("main.root") as main_span:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker thread's span is a new root, not a child of main's span.
        assert seen["parent_id"] is None
        assert seen["trace_id"] != main_span.trace_id


class TestSinkAndSummarize:
    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure(trace_file=path)
        assert telemetry.tracing_enabled()  # trace_file implies tracing
        with telemetry.span("work.outer"):
            with telemetry.span("work.inner"):
                time.sleep(0.002)
        assert telemetry.flush() == 2
        assert telemetry.flush() == 0  # buffer drained
        with open(path) as handle:
            spans = [json.loads(line) for line in handle]
        assert {span["name"] for span in spans} == {"work.inner", "work.outer"}

    def test_summarize_trace_shares(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure(trace_file=path)
        for _ in range(3):
            with telemetry.span("step"):
                with telemetry.span("step.sub"):
                    time.sleep(0.001)
        telemetry.flush()
        summary = summarize_trace(path)
        assert summary["span_count"] == 6
        assert summary["wall_seconds"] > 0.0
        assert summary["phases"]["step"]["count"] == 3
        assert summary["phases"]["step.sub"]["count"] == 3
        assert (
            summary["phases"]["step"]["total_seconds"]
            >= summary["phases"]["step.sub"]["total_seconds"]
        )
        assert 0.0 < summary["phases"]["step"]["share"]
        assert summary["phases"]["step"]["mean_seconds"] >= 0.001

    def test_summarize_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        summary = summarize_trace(str(path))
        assert summary == {"wall_seconds": 0.0, "span_count": 0, "phases": {}}

    def test_reset_detaches_sink_and_disables(self, tmp_path):
        telemetry.configure(trace_file=str(tmp_path / "t.jsonl"), metrics=True)
        telemetry.reset()
        assert not telemetry.tracing_enabled()
        assert not telemetry.metrics_enabled()
        assert telemetry.get_tracer().sink_path is None

    def test_env_configuration(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_TRACE_FILE", path)
        monkeypatch.setenv("REPRO_METRICS", "1")
        telemetry._configure_from_env()
        assert telemetry.tracing_enabled()
        assert telemetry.metrics_enabled()
        assert telemetry.get_tracer().sink_path == path


class TestAdoption:
    def test_adopt_reparents_child_roots_under_roundtrip(self):
        telemetry.configure(tracing=True)
        child = Tracer()
        with child.span("child.root"):
            with child.span("child.leaf"):
                pass
        batch = child.drain()
        with telemetry.span("parent.roundtrip") as roundtrip:
            telemetry.get_tracer().adopt(batch, parent=roundtrip)
        spans = {span["name"]: span for span in telemetry.get_tracer().drain()}
        # Child root grafts under the round-trip span and joins its trace.
        assert spans["child.root"]["parent_id"] == roundtrip.span_id
        assert spans["child.root"]["trace_id"] == roundtrip.trace_id
        # The leaf keeps its real parent, only its trace id is rebased.
        assert spans["child.leaf"]["parent_id"] == spans["child.root"]["span_id"]
        assert spans["child.leaf"]["trace_id"] == roundtrip.trace_id

    def test_adopt_updates_phase_totals(self):
        telemetry.configure(tracing=True)
        child = Tracer()
        with child.span("pool.child.step"):
            time.sleep(0.001)
        before = telemetry.phase_snapshot()
        with telemetry.span("pool.roundtrip") as roundtrip:
            telemetry.get_tracer().adopt(child.drain(), parent=roundtrip)
        delta = telemetry.phase_delta(before)
        assert delta["pool.child.step"] >= 0.001
        assert "pool.roundtrip" in delta
