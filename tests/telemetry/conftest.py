"""Telemetry tests mutate process-global state; isolate every test."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _pristine_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()
