"""Metrics registry unit tests: counters, gauges, histograms, rendering."""

import pytest

from repro import telemetry
from repro.telemetry import Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_jobs_total")
        counter.inc(state="DONE")
        counter.inc(state="DONE")
        counter.inc(2.0, state="FAILED")
        assert counter.value(state="DONE") == 2.0
        assert counter.value(state="FAILED") == 2.0
        assert counter.value(state="CANCELLED") == 0.0
        assert counter.total() == 4.0

    def test_render(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", help="things")
        counter.inc(kind="sync")
        lines = list(counter.render())
        assert lines == ['repro_x_total{kind="sync"} 1']


class TestGauge:
    def test_set_is_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value() == 2.0
        assert list(gauge.render()) == ["repro_depth 2"]


class TestHistogram:
    def test_count_sum_and_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds")
        for value in (0.002, 0.003, 0.004, 0.02, 0.2):
            hist.observe(value)
        assert hist.count() == 5
        assert hist.sum() == pytest.approx(0.229)
        p50 = hist.quantile(0.5)
        assert 0.0025 <= p50 <= 0.01
        assert hist.quantile(0.99) <= 0.25
        assert hist.quantile(1.0) <= 0.25

    def test_quantile_edge_cases(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) == 0.0  # no observations
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        # +Inf bucket clamps to the largest finite bound.
        hist.observe(100.0)
        assert hist.quantile(0.99) == hist.buckets[-1]

    def test_custom_buckets_and_render(self):
        hist = Histogram("h_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        lines = list(hist.render())
        assert 'h_seconds_bucket{le="0.1"} 1' in lines
        assert 'h_seconds_bucket{le="1"} 2' in lines
        assert 'h_seconds_bucket{le="+Inf"} 3' in lines
        assert "h_seconds_count 3" in lines


class TestRegistry:
    def test_families_are_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("a_total")

    def test_render_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("b_total", help="b things").inc()
        registry.gauge("a_depth").set(1)
        text = registry.render()
        lines = text.splitlines()
        assert "# TYPE a_depth gauge" in lines
        assert "# HELP b_total b things" in lines
        assert "# TYPE b_total counter" in lines
        # Families render sorted by name; the body ends with a newline.
        assert lines.index("# TYPE a_depth gauge") < lines.index("# TYPE b_total counter")
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""


class TestModuleHelpers:
    def test_helpers_record_when_enabled(self):
        telemetry.configure(metrics=True)
        telemetry.count("repro_sync_decisions_total", decision="sync")
        telemetry.count("repro_sync_decisions_total", decision="local")
        telemetry.count("repro_sync_decisions_total", decision="local")
        telemetry.observe("repro_job_run_seconds", 0.25)
        telemetry.gauge("repro_job_queue_depth", 4)
        registry = telemetry.get_metrics()
        assert registry.counter("repro_sync_decisions_total").value(decision="local") == 2.0
        assert registry.histogram("repro_job_run_seconds").count() == 1
        assert registry.gauge("repro_job_queue_depth").value() == 4.0
        rendered = registry.render()
        assert 'repro_sync_decisions_total{decision="sync"} 1' in rendered
