"""Telemetry wired through real runs: traces, counters, phases, and the CLI.

The coverage test is the PR's acceptance criterion: a traced run's
top-level spans (setup + steps + evals) must account for >= 90% of its
wall-clock, i.e. the instrumentation actually covers the hot paths rather
than decorating a corner of them.
"""

import json
import time

import pytest

from repro import telemetry
from repro.api import RunRequest, run
from repro.harness.cli import main as cli_main
from repro.harness.experiment import run_experiment
from repro.scenarios import run_scenario
from repro.scenarios.runner import ScenarioRecord
from repro.telemetry import summarize_trace


class TestTraceCoverage:
    def test_traced_run_covers_at_least_90_percent_of_wall(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        start = time.perf_counter()
        run_experiment(
            "resnet101",
            "selsync",
            num_workers=2,
            iterations=30,
            eval_every=10,
            seed=0,
            delta=0.3,
            telemetry_file=path,
        )
        wall = time.perf_counter() - start
        telemetry.flush()
        summary = summarize_trace(path)
        phases = summary["phases"]
        for name in (
            "run.setup",
            "trainer.step",
            "trainer.eval",
            "cluster.gradients",
            "cluster.update",
            "selsync.tracker",
            "selsync.flags",
        ):
            assert name in phases, f"missing phase {name}: {sorted(phases)}"
        assert phases["trainer.step"]["count"] == 30
        # Top-level, non-overlapping phases vs the measured wall-clock.
        covered = sum(
            phases[name]["total_seconds"]
            for name in ("run.setup", "trainer.step", "trainer.eval")
        )
        assert covered >= 0.9 * wall, f"covered {covered:.3f}s of {wall:.3f}s"

    def test_cluster_config_telemetry_validation(self):
        from repro.cluster.cluster import ClusterConfig

        with pytest.raises(ValueError, match="telemetry"):
            ClusterConfig(num_workers=2, telemetry=123)


class TestMetricsInstrumentation:
    def test_selsync_counters_advance(self):
        telemetry.configure(metrics=True)
        run_experiment(
            "resnet101", "selsync", num_workers=2, iterations=10,
            eval_every=5, seed=0, delta=0.3,
        )
        registry = telemetry.get_metrics()
        decisions = registry.counter("repro_sync_decisions_total")
        # One sync-or-local decision per training step.
        assert decisions.total() == 10.0
        wire = registry.counter("repro_comm_wire_bytes_total")
        # The flags all-gather is charged on every step regardless of δ.
        assert wire.value(kind="flags") > 0.0

    def test_bsp_charges_sync_wire_bytes(self):
        telemetry.configure(metrics=True)
        run_experiment(
            "resnet101", "bsp", num_workers=2, iterations=4, eval_every=4, seed=0
        )
        wire = telemetry.get_metrics().counter("repro_comm_wire_bytes_total")
        assert wire.value(kind="sync") > 0.0


class TestPhasesInRecords:
    def test_scenario_record_phases_round_trip(self):
        bare = ScenarioRecord(params={}, label="x", metrics={"a": 1.0})
        assert "phases" not in bare.to_dict()
        timed = ScenarioRecord(
            params={}, label="x", metrics={}, phases={"trainer.step": 0.5}
        )
        assert timed.to_dict()["phases"] == {"trainer.step": 0.5}

    def test_experiment_kind_attaches_phases_when_tracing(self):
        telemetry.configure(tracing=True)
        out = run(RunRequest(
            kind="experiment", workload="resnet101", algorithm="bsp",
            num_workers=2, iterations=4, eval_every=2,
        ))
        assert out.records[0]["phases"]["trainer.step"] > 0.0
        assert out.meta["phases"]["trainer.step"] > 0.0
        payload = out.to_dict()
        assert payload["records"][0]["phases"] == out.records[0]["phases"]

    def test_experiment_kind_omits_phases_by_default(self):
        out = run(RunRequest(
            kind="experiment", workload="resnet101", algorithm="bsp",
            num_workers=2, iterations=4, eval_every=2,
        ))
        assert "phases" not in out.records[0]
        assert "phases" not in out.meta

    def test_sweep_records_and_meta_carry_phases(self):
        telemetry.configure(tracing=True)
        out = run(RunRequest(
            kind="sweep", workload="resnet101", grid={"delta": [0.0, 0.3]},
            num_workers=2, iterations=4, seed=0,
        ))
        assert out.meta["phases"]["trainer.step"] > 0.0
        for record in out.records:
            assert record["phases"]["trainer.step"] > 0.0

    def test_comparison_records_carry_phases(self):
        telemetry.configure(tracing=True)
        report = run_scenario("quickstart", iterations=4)
        assert all(record.phases for record in report.records)
        assert all(
            record.phases["trainer.step"] > 0.0 for record in report.records
        )


class TestTraceSummarizeCli:
    def _write_trace(self, tmp_path) -> str:
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure(trace_file=path)
        for _ in range(3):
            with telemetry.span("trainer.step"):
                time.sleep(0.001)
        with telemetry.span("run.setup"):
            pass
        telemetry.flush()
        return path

    def test_summarize_renders_table(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        path = self._write_trace(tmp_path)
        json_path = str(tmp_path / "summary.json")
        assert cli_main(["trace", "summarize", path, "--json", json_path]) == 0
        out = capsys.readouterr().out
        assert "trainer.step" in out
        assert "share of wall" in out
        assert "4 spans" in out
        with open(json_path) as handle:
            payload = json.load(handle)
        assert payload["span_count"] == 4
        assert payload["phases"]["trainer.step"]["count"] == 3

    def test_summarize_missing_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        rc = cli_main(["trace", "summarize", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no trace file" in capsys.readouterr().err

    def test_summarize_empty_trace(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        rc = cli_main(["trace", "summarize", str(path)])
        assert rc == 2
        assert "no spans" in capsys.readouterr().err
