"""Tests for weight initializers."""

import numpy as np

from repro.nn import init


class TestBasicInits:
    def test_zeros_and_ones(self):
        assert np.all(init.zeros((3, 3)) == 0.0)
        assert np.all(init.ones((2, 4)) == 1.0)

    def test_uniform_range(self):
        rng = np.random.default_rng(0)
        w = init.uniform((1000,), -0.5, 0.5, rng=rng)
        assert w.min() >= -0.5 and w.max() <= 0.5

    def test_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.normal((10000,), std=0.1, rng=rng)
        assert abs(w.std() - 0.1) < 0.01


class TestFanBasedInits:
    def test_xavier_uniform_limit(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((64, 32), rng=rng)
        limit = np.sqrt(6.0 / (64 + 32))
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_kaiming_uniform_limit(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 32), rng=rng)
        limit = np.sqrt(6.0 / 32)
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_xavier_normal_std_scales_with_fans(self):
        rng = np.random.default_rng(0)
        small = init.xavier_normal((512, 512), rng=rng)
        big_fan_limit = np.sqrt(2.0 / 1024)
        assert abs(small.std() - big_fan_limit) < 0.01

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 128), rng=rng)
        assert abs(w.std() - np.sqrt(2.0 / 128)) < 0.02

    def test_conv_kernel_fan_computation(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((8, 4, 3, 3), rng=rng)
        limit = np.sqrt(6.0 / (4 * 9))
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_deterministic_given_rng_seed(self):
        a = init.xavier_uniform((8, 8), rng=np.random.default_rng(42))
        b = init.xavier_uniform((8, 8), rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)
