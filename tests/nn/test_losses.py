"""Tests for loss functions and the softmax helpers."""

import numpy as np
import pytest

from repro.nn.losses import (
    CrossEntropyLoss,
    MSELoss,
    cross_entropy_with_logits,
    log_softmax,
    perplexity_from_loss,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).standard_normal((4, 7)))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, 0.5)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = np.random.default_rng(1).standard_normal((3, 5))
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = cross_entropy_with_logits(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_log_classes(self):
        logits = np.zeros((5, 8))
        loss, _ = cross_entropy_with_logits(logits, np.zeros(5, dtype=np.int64))
        np.testing.assert_allclose(loss, np.log(8), rtol=1e-6)

    def test_gradient_sums_to_zero_per_sample(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((6, 4))
        _, grad = cross_entropy_with_logits(logits, rng.integers(0, 4, size=6))
        np.testing.assert_allclose(grad.sum(axis=-1), 0.0, atol=1e-12)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 4))
        targets = rng.integers(0, 4, size=3)
        _, grad = cross_entropy_with_logits(logits, targets)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                bumped = logits.copy()
                bumped[i, j] += eps
                up, _ = cross_entropy_with_logits(bumped, targets)
                bumped[i, j] -= 2 * eps
                down, _ = cross_entropy_with_logits(bumped, targets)
                numeric[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-8)

    def test_sequence_logits_supported(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        loss, grad = cross_entropy_with_logits(logits, targets)
        assert np.isfinite(loss)
        assert grad.shape == logits.shape

    def test_label_smoothing_increases_loss_on_perfect_prediction(self):
        logits = np.array([[50.0, 0.0]])
        targets = np.array([0])
        plain, _ = cross_entropy_with_logits(logits, targets)
        smoothed, _ = cross_entropy_with_logits(logits, targets, label_smoothing=0.1)
        assert smoothed > plain

    def test_rejects_float_targets(self):
        with pytest.raises(TypeError):
            cross_entropy_with_logits(np.zeros((2, 3)), np.array([0.0, 1.0]))

    def test_rejects_out_of_range_targets(self):
        with pytest.raises(IndexError):
            cross_entropy_with_logits(np.zeros((2, 3)), np.array([0, 5]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy_with_logits(np.zeros((2, 3)), np.array([0, 1, 2]))


class TestLossClasses:
    def test_cross_entropy_loss_backward_after_forward(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((2, 3))
        value = loss_fn(logits, np.array([0, 1]))
        grad = loss_fn.backward()
        assert np.isfinite(value)
        assert grad.shape == logits.shape

    def test_cross_entropy_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_cross_entropy_invalid_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.5)

    def test_mse_zero_for_identical(self):
        mse = MSELoss()
        x = np.ones((4, 3))
        assert mse(x, x) == 0.0

    def test_mse_gradient_direction(self):
        mse = MSELoss()
        pred = np.array([[2.0]])
        target = np.array([[0.0]])
        _, grad = mse.forward_backward(pred, target)
        assert grad[0, 0] > 0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 2)), np.zeros((3, 2)))


class TestPerplexity:
    def test_perplexity_is_exp_of_loss(self):
        np.testing.assert_allclose(perplexity_from_loss(2.0), np.exp(2.0))

    def test_perplexity_clamps_huge_losses(self):
        assert np.isfinite(perplexity_from_loss(10_000.0))
