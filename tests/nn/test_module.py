"""Tests for the Parameter/Module system and Sequential container."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module, Parameter, Sequential


class _TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.act = ReLU()
        self.fc2 = Linear(8, 3, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2.forward(self.act.forward(self.fc1.forward(x)))

    def backward(self, g):
        return self.fc1.backward(self.act.backward(self.fc2.backward(g)))


class TestParameter:
    def test_grad_initialized_to_zeros(self):
        p = Parameter(np.ones((3, 2)))
        assert p.grad.shape == (3, 2)
        assert np.all(p.grad == 0.0)

    def test_data_cast_to_float64(self):
        p = Parameter(np.ones((2,), dtype=np.float32))
        assert p.data.dtype == np.float64

    def test_zero_grad_resets(self):
        p = Parameter(np.ones(4))
        p.grad += 3.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)

    def test_shape_and_size(self):
        p = Parameter(np.zeros((2, 5)))
        assert p.shape == (2, 5)
        assert p.size == 10


class TestModuleRegistration:
    def test_named_parameters_include_submodules(self):
        model = _TwoLayer()
        names = set(model.named_parameters().keys())
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_num_parameters_counts_scalars(self):
        model = _TwoLayer()
        expected = 4 * 8 + 8 + 8 * 3 + 3
        assert model.num_parameters() == expected

    def test_parameter_bytes_uses_float32_transport(self):
        model = _TwoLayer()
        assert model.parameter_bytes() == model.num_parameters() * 4

    def test_duplicate_parameter_registration_rejected(self):
        m = Module()
        m.register_parameter("w", Parameter(np.zeros(2)))
        with pytest.raises(KeyError):
            m.register_parameter("w", Parameter(np.zeros(2)))

    def test_duplicate_module_registration_rejected(self):
        m = Module()
        m.register_module("sub", Module())
        with pytest.raises(KeyError):
            m.register_module("sub", Module())

    def test_named_modules_traversal(self):
        model = _TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names


class TestTrainEvalAndGrads:
    def test_train_eval_propagates(self):
        model = _TwoLayer()
        model.eval()
        assert not model.fc1.training
        model.train()
        assert model.fc2.training

    def test_zero_grad_clears_all(self):
        model = _TwoLayer()
        x = np.random.default_rng(0).standard_normal((5, 4))
        out = model.forward(x)
        model.backward(np.ones_like(out))
        assert any(np.abs(p.grad).sum() > 0 for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())


class TestStateDict:
    def test_state_dict_roundtrip(self):
        model = _TwoLayer()
        state = model.state_dict()
        other = _TwoLayer()
        other.load_state_dict(state)
        for name, value in other.state_dict().items():
            np.testing.assert_array_equal(value, state[name])

    def test_state_dict_returns_copies(self):
        model = _TwoLayer()
        state = model.state_dict()
        state["fc1.weight"][...] = 99.0
        assert not np.any(model.named_parameters()["fc1.weight"].data == 99.0)

    def test_load_state_dict_strict_missing_key(self):
        model = _TwoLayer()
        state = model.state_dict()
        state.pop("fc1.bias")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        model = _TwoLayer()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_gradient_dict_roundtrip(self):
        model = _TwoLayer()
        x = np.random.default_rng(0).standard_normal((5, 4))
        out = model.forward(x)
        model.backward(np.ones_like(out))
        grads = model.gradient_dict()
        other = _TwoLayer()
        other.load_gradient_dict(grads)
        for name, param in other.named_parameters().items():
            np.testing.assert_array_equal(param.grad, grads[name])

    def test_load_gradient_dict_missing_key(self):
        model = _TwoLayer()
        with pytest.raises(KeyError):
            model.load_gradient_dict({"fc1.weight": np.zeros((8, 4))})


class TestSequential:
    def test_forward_matches_manual_chain(self):
        rng = np.random.default_rng(0)
        l1, l2 = Linear(4, 6, rng=rng), Linear(6, 2, rng=rng)
        seq = Sequential(l1, ReLU(), l2)
        x = rng.standard_normal((3, 4))
        manual = l2.forward(np.maximum(l1.forward(x), 0.0))
        np.testing.assert_allclose(seq.forward(x), manual)

    def test_len_getitem_iter(self):
        seq = Sequential(ReLU(), ReLU(), ReLU())
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert len(list(iter(seq))) == 3

    def test_append_registers_parameters(self):
        seq = Sequential(Linear(3, 3, rng=np.random.default_rng(0)))
        seq.append(Linear(3, 2, rng=np.random.default_rng(1)))
        assert len(seq.named_parameters()) == 4

    def test_backward_reverses_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 4, rng=rng))
        x = rng.standard_normal((2, 4))
        out = seq.forward(x)
        grad_in = seq.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
