"""Tests for the workload model analogs and the model registry."""

import numpy as np
import pytest

from repro.nn.models import (
    MODEL_REGISTRY,
    AlexNetLike,
    ConvNet,
    MLP,
    ResNetLike,
    TransformerLM,
    VGGLike,
    build_model,
)
from repro.nn.models.registry import register_model


class TestMLP:
    def test_output_shape(self):
        model = MLP((8, 16, 4), rng=np.random.default_rng(0))
        assert model.forward(np.zeros((5, 8))).shape == (5, 4)

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP((8,))

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP((4, 4), activation="swish")

    def test_tanh_activation_option(self):
        model = MLP((4, 6, 2), activation="tanh", rng=np.random.default_rng(0))
        assert model.forward(np.zeros((2, 4))).shape == (2, 2)


class TestResNetLike:
    def test_depth_controls_blocks(self):
        shallow = ResNetLike(
            input_dim=8, num_classes=3, width=8, depth=1, rng=np.random.default_rng(0)
        )
        deep = ResNetLike(
            input_dim=8, num_classes=3, width=8, depth=4, rng=np.random.default_rng(0)
        )
        assert deep.num_parameters() > shallow.num_parameters()

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            ResNetLike(depth=0)

    def test_rejects_wrong_input_dim(self):
        model = ResNetLike(input_dim=8, num_classes=3, width=8, depth=1)
        with pytest.raises(ValueError):
            model.forward(np.zeros((2, 9)))

    def test_forward_backward_shapes(self):
        model = ResNetLike(
            input_dim=8, num_classes=3, width=8, depth=2, rng=np.random.default_rng(0)
        )
        x = np.random.default_rng(1).standard_normal((4, 8))
        out = model.forward(x)
        grad = model.backward(np.ones_like(out))
        assert out.shape == (4, 3)
        assert grad.shape == x.shape


class TestVGGLike:
    def test_head_width_grows_parameters(self):
        small = VGGLike(input_dim=8, num_classes=5, feature_widths=(8,), head_width=8)
        big = VGGLike(input_dim=8, num_classes=5, feature_widths=(8,), head_width=64)
        assert big.num_parameters() > small.num_parameters()

    def test_forward_shape(self):
        model = VGGLike(input_dim=8, num_classes=5, feature_widths=(8, 8), head_width=16,
                        rng=np.random.default_rng(0))
        assert model.forward(np.zeros((3, 8))).shape == (3, 5)

    def test_rejects_wrong_input(self):
        model = VGGLike(input_dim=8)
        with pytest.raises(ValueError):
            model.forward(np.zeros((3, 4)))


class TestAlexNetLike:
    def test_forward_shape(self):
        model = AlexNetLike(input_dim=8, num_classes=6, hidden_dim=12, rng=np.random.default_rng(0))
        assert model.forward(np.zeros((2, 8))).shape == (2, 6)

    def test_dropout_disabled_in_eval(self):
        model = AlexNetLike(input_dim=8, num_classes=6, hidden_dim=12, dropout=0.9,
                            rng=np.random.default_rng(0))
        model.eval()
        x = np.random.default_rng(1).standard_normal((2, 8))
        out1 = model.forward(x)
        out2 = model.forward(x)
        np.testing.assert_array_equal(out1, out2)


class TestTransformerLM:
    def test_logits_shape(self):
        model = TransformerLM(vocab_size=11, d_model=8, num_heads=2, num_layers=1,
                              dim_feedforward=12, rng=np.random.default_rng(0))
        tokens = np.random.default_rng(1).integers(0, 11, size=(3, 5))
        assert model.forward(tokens).shape == (3, 5, 11)

    def test_causality(self):
        """Changing a future token must not change earlier positions' logits."""
        model = TransformerLM(vocab_size=11, d_model=8, num_heads=2, num_layers=2,
                              dim_feedforward=12, dropout=0.0, rng=np.random.default_rng(0))
        model.eval()
        tokens = np.random.default_rng(1).integers(0, 11, size=(1, 6))
        base = model.forward(tokens)
        perturbed_tokens = tokens.copy()
        perturbed_tokens[0, -1] = (perturbed_tokens[0, -1] + 1) % 11
        perturbed = model.forward(perturbed_tokens)
        np.testing.assert_allclose(base[0, :-1], perturbed[0, :-1], atol=1e-10)

    def test_parameter_count_grows_with_layers(self):
        one = TransformerLM(vocab_size=11, d_model=8, num_heads=2, num_layers=1)
        two = TransformerLM(vocab_size=11, d_model=8, num_heads=2, num_layers=2)
        assert two.num_parameters() > one.num_parameters()


class TestConvNet:
    def test_forward_shape(self):
        model = ConvNet(in_channels=1, num_classes=4, image_size=8, channels=(2, 3),
                        rng=np.random.default_rng(0))
        assert model.forward(np.zeros((2, 1, 8, 8))).shape == (2, 4)

    def test_rejects_wrong_channels(self):
        model = ConvNet(in_channels=3)
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 1, 8, 8)))


class TestRegistry:
    def test_paper_names_registered(self):
        for name in ("resnet101", "vgg11", "alexnet", "transformer"):
            assert name in MODEL_REGISTRY

    def test_build_model_applies_overrides(self):
        model = build_model("resnet101", rng=np.random.default_rng(0), depth=2, width=16)
        assert isinstance(model, ResNetLike)
        assert model.depth == 2

    def test_build_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("lenet")

    def test_register_duplicate_rejected(self):
        with pytest.raises(KeyError):
            register_model("resnet101", lambda rng=None, **kw: None)

    def test_models_are_deterministic_given_seed(self):
        a = build_model("vgg11", rng=np.random.default_rng(5))
        b = build_model("vgg11", rng=np.random.default_rng(5))
        for (na, pa), (nb, pb) in zip(a.named_parameters().items(), b.named_parameters().items()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)
