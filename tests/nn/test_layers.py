"""Behavioural tests for individual layers (shape, mode and error handling)."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm1d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualMLPBlock,
    Sigmoid,
    Tanh,
)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(8, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((5, 8)))
        assert out.shape == (5, 3)

    def test_three_dimensional_input(self):
        layer = Linear(8, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((2, 7, 8)))
        assert out.shape == (2, 7, 3)

    def test_no_bias_option(self):
        layer = Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert "bias" not in layer.named_parameters()

    def test_bias_is_zero_initialized(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        assert np.all(layer.bias.data == 0.0)

    def test_backward_before_forward_raises(self):
        layer = Linear(4, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_backward_accumulates_gradients(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        x = np.ones((3, 4))
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestActivations:
    def test_relu_clamps_negative(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_relu_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 2.0]]))
        grad = relu.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_tanh_range(self):
        out = Tanh().forward(np.linspace(-5, 5, 11)[None, :])
        assert np.all(np.abs(out) < 1.0)

    def test_sigmoid_midpoint(self):
        out = Sigmoid().forward(np.zeros((1, 3)))
        np.testing.assert_allclose(out, 0.5)

    def test_gelu_positive_approx_identity_for_large_inputs(self):
        out = GELU().forward(np.array([[10.0]]))
        np.testing.assert_allclose(out, [[10.0]], rtol=1e-4)

    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid, GELU])
    def test_backward_before_forward_raises(self, cls):
        with pytest.raises(RuntimeError):
            cls().backward(np.zeros((1, 2)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = np.ones((4, 4))
        np.testing.assert_array_equal(drop.forward(x), x)

    def test_train_mode_scales_kept_units(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop.forward(np.ones((1000,)))
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_zero_probability_is_identity(self):
        drop = Dropout(0.0)
        x = np.ones((3, 3))
        np.testing.assert_array_equal(drop.forward(x), x)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_backward_uses_same_mask(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200,))
        out = drop.forward(x)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, out)


class TestFlattenIdentity:
    def test_flatten_and_restore(self):
        flat = Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        out = flat.forward(x)
        assert out.shape == (2, 12)
        back = flat.backward(out)
        assert back.shape == x.shape

    def test_identity_passthrough(self):
        ident = Identity()
        x = np.ones((2, 2))
        np.testing.assert_array_equal(ident.forward(x), x)
        np.testing.assert_array_equal(ident.backward(x), x)


class TestBatchNorm:
    def test_normalizes_batch_statistics(self):
        bn = BatchNorm1d(4)
        x = np.random.default_rng(0).standard_normal((64, 4)) * 5 + 3
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated_in_train(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = np.ones((8, 2)) * 4.0
        bn.forward(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)
        bn.forward(np.random.default_rng(0).standard_normal((32, 2)) + 10.0)
        bn.eval()
        out = bn.forward(np.full((4, 2), 10.0))
        assert np.all(np.abs(out) < 5.0)

    def test_rejects_wrong_feature_count(self):
        bn = BatchNorm1d(3)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((4, 5)))


class TestLayerNorm:
    def test_normalizes_last_dim(self):
        ln = LayerNorm(6)
        x = np.random.default_rng(0).standard_normal((3, 6)) * 4 + 2
        out = ln.forward(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)

    def test_works_on_three_dims(self):
        ln = LayerNorm(5)
        out = ln.forward(np.random.default_rng(0).standard_normal((2, 3, 5)))
        assert out.shape == (2, 3, 5)

    def test_gamma_beta_affect_output(self):
        ln = LayerNorm(4)
        ln.gamma.data[...] = 2.0
        ln.beta.data[...] = 1.0
        out = ln.forward(np.random.default_rng(0).standard_normal((2, 4)))
        assert not np.allclose(out.mean(axis=-1), 0.0)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_rejects_float_ids(self):
        emb = Embedding(10, 4)
        with pytest.raises(TypeError):
            emb.forward(np.array([[1.0, 2.0]]))

    def test_rejects_out_of_range(self):
        emb = Embedding(5, 4)
        with pytest.raises(IndexError):
            emb.forward(np.array([[7]]))

    def test_backward_accumulates_at_indices(self):
        emb = Embedding(6, 3, rng=np.random.default_rng(0))
        ids = np.array([[0, 0, 1]])
        emb.forward(ids)
        emb.backward(np.ones((1, 3, 3)))
        np.testing.assert_allclose(emb.weight.grad[0], 2.0)
        np.testing.assert_allclose(emb.weight.grad[1], 1.0)
        np.testing.assert_allclose(emb.weight.grad[2], 0.0)


class TestConvPool:
    def test_conv_output_shape_with_padding(self):
        conv = Conv2d(2, 4, kernel_size=3, padding=1, rng=np.random.default_rng(0))
        out = conv.forward(np.zeros((3, 2, 8, 8)))
        assert out.shape == (3, 4, 8, 8)

    def test_conv_output_shape_with_stride(self):
        conv = Conv2d(1, 2, kernel_size=3, stride=2, rng=np.random.default_rng(0))
        out = conv.forward(np.zeros((1, 1, 9, 9)))
        assert out.shape == (1, 2, 4, 4)

    def test_conv_rejects_wrong_channels(self):
        conv = Conv2d(3, 2, kernel_size=3)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 1, 5, 5)))

    def test_conv_matches_manual_single_pixel(self):
        conv = Conv2d(1, 1, kernel_size=1, bias=False, rng=np.random.default_rng(0))
        conv.weight.data[...] = 2.0
        out = conv.forward(np.ones((1, 1, 3, 3)))
        np.testing.assert_allclose(out, 2.0)

    def test_maxpool_picks_max(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_backward_routes_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0  # argmax of the first window

    def test_global_avg_pool(self):
        gap = GlobalAvgPool2d()
        x = np.ones((2, 3, 4, 4)) * 5.0
        out = gap.forward(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, 5.0)

    def test_global_avg_pool_backward_spreads_evenly(self):
        gap = GlobalAvgPool2d()
        x = np.ones((1, 1, 2, 2))
        gap.forward(x)
        grad = gap.backward(np.array([[4.0]]))
        np.testing.assert_allclose(grad, 1.0)


class TestResidualBlock:
    def test_identity_at_zero_weights(self):
        block = ResidualMLPBlock(6, rng=np.random.default_rng(0))
        block.fc2.weight.data[...] = 0.0
        block.fc2.bias.data[...] = 0.0
        x = np.random.default_rng(1).standard_normal((4, 6))
        np.testing.assert_allclose(block.forward(x), x)

    def test_backward_shape(self):
        block = ResidualMLPBlock(6, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((4, 6))
        out = block.forward(x)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape
