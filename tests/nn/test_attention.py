"""Tests for multi-head attention and positional encoding specifics."""

import numpy as np
import pytest

from repro.nn.attention import (
    MultiHeadSelfAttention,
    PositionalEncoding,
    TransformerEncoderLayer,
)


class TestPositionalEncoding:
    def test_adds_position_dependent_offsets(self):
        pe = PositionalEncoding(8, max_len=16)
        x = np.zeros((1, 4, 8))
        out = pe.forward(x)
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_rejects_too_long_sequences(self):
        pe = PositionalEncoding(8, max_len=4)
        with pytest.raises(ValueError):
            pe.forward(np.zeros((1, 5, 8)))

    def test_backward_is_identity(self):
        pe = PositionalEncoding(8)
        g = np.random.default_rng(0).standard_normal((2, 3, 8))
        np.testing.assert_array_equal(pe.backward(g), g)

    def test_encoding_values_bounded(self):
        pe = PositionalEncoding(16, max_len=64)
        assert np.all(np.abs(pe.pe) <= 1.0)


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        out = attn.forward(np.random.default_rng(1).standard_normal((3, 5, 8)))
        assert out.shape == (3, 5, 8)

    def test_d_model_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_rejects_wrong_feature_dim(self):
        attn = MultiHeadSelfAttention(8, 2)
        with pytest.raises(ValueError):
            attn.forward(np.zeros((1, 4, 6)))

    def test_causal_mask_blocks_future(self):
        attn = MultiHeadSelfAttention(8, 2, causal=True, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((1, 6, 8))
        base = attn.forward(x)
        x2 = x.copy()
        x2[0, -1] += 10.0
        out2 = attn.forward(x2)
        np.testing.assert_allclose(base[0, :-1], out2[0, :-1], atol=1e-10)

    def test_non_causal_attends_to_future(self):
        attn = MultiHeadSelfAttention(8, 2, causal=False, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((1, 6, 8))
        base = attn.forward(x)
        x2 = x.copy()
        x2[0, -1] += 10.0
        out2 = attn.forward(x2)
        assert not np.allclose(base[0, 0], out2[0, 0])

    def test_backward_before_forward_raises(self):
        attn = MultiHeadSelfAttention(8, 2)
        with pytest.raises(RuntimeError):
            attn.backward(np.zeros((1, 2, 8)))

    def test_attention_weights_cached_are_normalized(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        attn.forward(np.random.default_rng(1).standard_normal((2, 4, 8)))
        _, _, _, weights, _ = attn._cache
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-10)


class TestTransformerEncoderLayer:
    def test_shape_preserved(self):
        layer = TransformerEncoderLayer(8, 2, 16, dropout=0.0, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 5, 8))
        assert layer.forward(x).shape == x.shape

    def test_backward_shape(self):
        layer = TransformerEncoderLayer(8, 2, 16, dropout=0.0, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 5, 8))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_residual_path_dominates_for_zeroed_weights(self):
        layer = TransformerEncoderLayer(8, 2, 16, dropout=0.0, rng=np.random.default_rng(0))
        # Zero the output projections of both sublayers: the block becomes identity.
        layer.attn.out_proj.weight.data[...] = 0.0
        layer.attn.out_proj.bias.data[...] = 0.0
        layer.ff2.weight.data[...] = 0.0
        layer.ff2.bias.data[...] = 0.0
        x = np.random.default_rng(1).standard_normal((1, 4, 8))
        np.testing.assert_allclose(layer.forward(x), x)
