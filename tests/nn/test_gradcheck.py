"""Finite-difference gradient checks for every layer and model.

These are the load-bearing correctness tests of the NN substrate: if a layer's
manual backward pass is wrong, the distributed-training results built on top
of it are meaningless.
"""

import numpy as np
import pytest

from tests.conftest import assert_gradients_close

from repro.nn.attention import MultiHeadSelfAttention, TransformerEncoderLayer
from repro.nn.layers import (
    BatchNorm1d,
    Conv2d,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    ReLU,
    ResidualMLPBlock,
    Sigmoid,
    Tanh,
)
from repro.nn.models import AlexNetLike, ConvNet, MLP, ResNetLike, TransformerLM, VGGLike
from repro.nn.module import Module, Sequential


def _classification_batch(input_dim, num_classes, batch=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, input_dim))
    y = rng.integers(0, num_classes, size=batch)
    return x, y


class _WrappedHead(Module):
    """Wrap a feature extractor with a linear head so cross-entropy applies."""

    def __init__(self, body, feature_dim, num_classes, rng):
        super().__init__()
        self.body = body
        self.head = Linear(feature_dim, num_classes, rng=rng)

    def forward(self, x):
        return self.head.forward(self.body.forward(x))

    def backward(self, g):
        return self.body.backward(self.head.backward(g))


class TestLayerGradients:
    def test_linear(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(6, 5, rng=rng), Linear(5, 3, rng=rng))
        x, y = _classification_batch(6, 3)
        assert_gradients_close(model, x, y)

    @pytest.mark.parametrize("act", [ReLU, Tanh, Sigmoid, GELU])
    def test_activations(self, act):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(6, 8, rng=rng), act(), Linear(8, 3, rng=rng))
        x, y = _classification_batch(6, 3, seed=2)
        assert_gradients_close(model, x, y)

    def test_layernorm(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(5, 6, rng=rng), LayerNorm(6), Linear(6, 3, rng=rng))
        x, y = _classification_batch(5, 3, seed=3)
        assert_gradients_close(model, x, y)

    def test_batchnorm_training_mode(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(5, 6, rng=rng), BatchNorm1d(6), Linear(6, 3, rng=rng))
        x, y = _classification_batch(5, 3, batch=8, seed=4)
        assert_gradients_close(model, x, y, rtol=1e-3, atol=1e-5)

    def test_residual_block(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Linear(5, 6, rng=rng),
            ResidualMLPBlock(6, rng=rng, zero_init_residual=False),
            Linear(6, 3, rng=rng),
        )
        x, y = _classification_batch(5, 3, seed=5)
        assert_gradients_close(model, x, y)

    def test_conv2d(self):
        rng = np.random.default_rng(0)
        body = Sequential(
            Conv2d(1, 2, kernel_size=3, padding=1, rng=rng), ReLU(), GlobalAvgPool2d()
        )
        model = _WrappedHead(body, 2, 3, rng)
        x = rng.standard_normal((3, 1, 5, 5))
        y = rng.integers(0, 3, size=3)
        assert_gradients_close(model, x, y, rtol=1e-3, atol=1e-6)

    def test_conv2d_with_flatten(self):
        rng = np.random.default_rng(0)
        body = Sequential(Conv2d(1, 2, kernel_size=2, stride=2, rng=rng), Flatten())
        model = _WrappedHead(body, 2 * 2 * 2, 3, rng)
        x = rng.standard_normal((2, 1, 4, 4))
        y = rng.integers(0, 3, size=2)
        assert_gradients_close(model, x, y, rtol=1e-3, atol=1e-6)

    def test_attention(self):
        rng = np.random.default_rng(0)

        class TinyAttn(Module):
            def __init__(self):
                super().__init__()
                self.emb = Embedding(7, 8, rng=rng)
                self.attn = MultiHeadSelfAttention(8, 2, causal=True, rng=rng)
                self.head = Linear(8, 7, rng=rng)

            def forward(self, tokens):
                return self.head.forward(self.attn.forward(self.emb.forward(tokens)))

            def backward(self, g):
                return self.emb.backward(self.attn.backward(self.head.backward(g)))

        model = TinyAttn()
        tokens = np.random.default_rng(1).integers(0, 7, size=(2, 4))
        targets = np.random.default_rng(2).integers(0, 7, size=(2, 4))
        assert_gradients_close(model, tokens, targets, rtol=1e-3, atol=1e-6)

    def test_transformer_encoder_layer(self):
        rng = np.random.default_rng(0)

        class TinyBlock(Module):
            def __init__(self):
                super().__init__()
                self.emb = Embedding(6, 8, rng=rng)
                self.block = TransformerEncoderLayer(8, 2, 12, dropout=0.0, rng=rng)
                self.head = Linear(8, 6, rng=rng)

            def forward(self, tokens):
                return self.head.forward(self.block.forward(self.emb.forward(tokens)))

            def backward(self, g):
                return self.emb.backward(self.block.backward(self.head.backward(g)))

        model = TinyBlock()
        tokens = np.random.default_rng(3).integers(0, 6, size=(2, 3))
        targets = np.random.default_rng(4).integers(0, 6, size=(2, 3))
        assert_gradients_close(model, tokens, targets, rtol=1e-3, atol=1e-6)


class TestModelGradients:
    def test_mlp(self):
        model = MLP((6, 10, 4), rng=np.random.default_rng(0))
        x, y = _classification_batch(6, 4, seed=6)
        assert_gradients_close(model, x, y)

    def test_resnet_like(self):
        model = ResNetLike(
            input_dim=6, num_classes=3, width=8, depth=2, rng=np.random.default_rng(0)
        )
        x, y = _classification_batch(6, 3, seed=7)
        assert_gradients_close(model, x, y, rtol=1e-3, atol=1e-6)

    def test_vgg_like(self):
        model = VGGLike(
            input_dim=6, num_classes=3, feature_widths=(8, 8), head_width=10,
            dropout=0.0, rng=np.random.default_rng(0),
        )
        x, y = _classification_batch(6, 3, seed=8)
        assert_gradients_close(model, x, y, rtol=1e-3, atol=1e-6)

    def test_alexnet_like_eval_mode(self):
        # Dropout is stochastic, so gradcheck runs in eval mode.
        model = AlexNetLike(input_dim=6, num_classes=3, hidden_dim=8, dropout=0.3,
                            rng=np.random.default_rng(0))
        model.eval()
        x, y = _classification_batch(6, 3, seed=9)
        assert_gradients_close(model, x, y, rtol=1e-3, atol=1e-6)

    def test_convnet(self):
        model = ConvNet(in_channels=1, num_classes=3, image_size=6, channels=(2, 3),
                        rng=np.random.default_rng(0))
        rng = np.random.default_rng(10)
        x = rng.standard_normal((2, 1, 6, 6))
        y = rng.integers(0, 3, size=2)
        assert_gradients_close(model, x, y, rtol=1e-3, atol=1e-6)

    def test_transformer_lm(self):
        model = TransformerLM(
            vocab_size=9, d_model=8, num_heads=2, num_layers=1, dim_feedforward=12,
            dropout=0.0, rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(11)
        tokens = rng.integers(0, 9, size=(2, 4))
        targets = rng.integers(0, 9, size=(2, 4))
        assert_gradients_close(model, tokens, targets, rtol=1e-3, atol=1e-6)
