"""FaultScenario spec/runner gates and the façade/service fault plumbing."""

from __future__ import annotations

import pytest

from repro.api import ApiError, RunRequest, run as api_run
from repro.faults.schedule import crash, rejoin, straggler_burst
from repro.scenarios import FaultScenario, ScenarioError, run_scenario

pytestmark = pytest.mark.faults


def tiny_fault_scenario(**overrides) -> FaultScenario:
    base = dict(
        name="tiny-fault",
        title="tiny fault replay",
        workload="deep_mlp",
        algorithm="selsync",
        events=(crash(1, 3), rejoin(1, 8)),
        checkpoint_every=4,
        num_workers=3,
        iterations=16,
        batch_size=4,
    )
    base.update(overrides)
    return FaultScenario(**base)


class TestFaultScenarioSpec:
    def test_kind_and_eval_cadence(self):
        scenario = tiny_fault_scenario()
        assert scenario.kind == "fault"
        assert scenario.resolved_eval_every() == 2
        assert scenario.resolved_eval_every(40) == 5

    def test_unsupported_algorithm_rejected(self):
        with pytest.raises(ScenarioError, match="fault injection supports"):
            tiny_fault_scenario(algorithm="ssp")

    def test_some_fault_source_required(self):
        with pytest.raises(ScenarioError, match="fault"):
            tiny_fault_scenario(events=(), failure_rate=0.0, straggler_fraction=0.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(fault_seed=-1),
            dict(failure_rate=1.5),
            dict(straggler_fraction=-0.2),
            dict(mttr=0),
            dict(slowdown=0.5),
            dict(continuity_factor=0.0),
            dict(checkpoint_every=0),
        ],
    )
    def test_bad_fault_parameters_rejected(self, overrides):
        with pytest.raises(ScenarioError):
            tiny_fault_scenario(**overrides)

    def test_impossible_event_history_rejected_at_construction(self):
        with pytest.raises(ScenarioError):
            tiny_fault_scenario(events=(rejoin(0, 2),))

    def test_reserved_fixed_parameters_rejected(self):
        with pytest.raises(ScenarioError, match="reserved"):
            tiny_fault_scenario(fixed={"failure_rate": 0.5})

    def test_build_schedule_prefers_explicit_events(self):
        scenario = tiny_fault_scenario()
        schedule = scenario.build_schedule(3, 16)
        assert [e.kind for e in schedule] == ["crash", "rejoin"]

    def test_build_schedule_generates_from_rates(self):
        scenario = tiny_fault_scenario(
            events=(), fault_seed=3, failure_rate=0.2, mttr=3
        )
        a = scenario.build_schedule(3, 16)
        b = scenario.build_schedule(3, 16)
        assert a == b and len(a) > 0


class TestFaultRunner:
    def test_gates_pass_and_report_shape(self):
        report = run_scenario(tiny_fault_scenario())
        assert report.kind == "fault"
        assert report.meta["gates"] == {
            "deterministic_replay": True,
            "loss_continuity": True,
            "continuity_detail": "ok",
        }
        assert [r.params["attempt"] for r in report.records] == ["run", "replay"]
        assert report.records[0].to_dict()["metrics"] == (
            report.records[1].to_dict()["metrics"]
        )
        assert report.meta["fault_events"] == [
            {"step": 3, "kind": "crash", "worker": 1},
            {"step": 8, "kind": "rejoin", "worker": 1},
        ]

    def test_fault_seed_override_reseeds_generated_schedule(self):
        scenario = tiny_fault_scenario(events=(), fault_seed=0, failure_rate=0.1)
        a = run_scenario(scenario, fault_seed=4)
        b = run_scenario(scenario, fault_seed=4)
        assert a.meta["fault_seed"] == 4
        assert a.meta["fault_events"] == b.meta["fault_events"]

    def test_fault_seed_override_rejected_for_other_kinds(self):
        with pytest.raises(ScenarioError, match="fault"):
            run_scenario("quickstart", fault_seed=3, iterations=4)


class TestRunRequestFaultFields:
    def test_experiment_kind_runs_with_faults(self):
        out = api_run(RunRequest(
            kind="experiment",
            workload="deep_mlp",
            algorithm="bsp",
            iterations=8,
            fault_seed=2,
            failure_rate=0.1,
            mttr=3,
        ))
        assert out.meta["faults"]["failure_rate"] == 0.1
        assert "fault_crashes" in out.results["run"].extras

    @pytest.mark.parametrize("kind", ["sweep", "comparison", "throughput"])
    def test_fault_fields_forbidden_for_other_kinds(self, kind):
        kwargs = {
            "sweep": dict(workload="deep_mlp", algorithm="selsync",
                          grid={"delta": [0.0, 1.0]}),
            "comparison": dict(options={"methods": {"bsp": ("bsp", {})}}),
            "throughput": dict(options={"workloads": ("deep_mlp",),
                                        "worker_counts": (1, 2)}),
        }[kind]
        with pytest.raises(ApiError, match="failure_rate"):
            RunRequest(kind=kind, failure_rate=0.1, **kwargs)

    def test_invalid_fault_values_rejected(self):
        with pytest.raises(ApiError):
            RunRequest(kind="experiment", workload="deep_mlp", algorithm="bsp",
                       failure_rate=2.0)
        with pytest.raises(ApiError):
            RunRequest(kind="experiment", workload="deep_mlp", algorithm="bsp",
                       fault_seed=-1)
        with pytest.raises(ApiError):
            RunRequest(kind="experiment", workload="deep_mlp", algorithm="bsp",
                       mttr=0)

    def test_scenario_kind_fault_seed_needs_fault_scenario(self):
        request = RunRequest(kind="scenario", scenario="quickstart", fault_seed=1)
        with pytest.raises(ApiError, match="fault"):
            request.validate()


class TestServiceSchemas:
    def test_experiment_schema_gained_fault_fields(self):
        from repro.service.schemas import SCHEMAS

        props = SCHEMAS["experiment"]["properties"]
        for field in ("fault_seed", "failure_rate", "straggler_fraction", "mttr"):
            assert field in props
            assert not props[field]["required"]

    def test_scenario_schema_accepts_fault_seed(self):
        from repro.service.schemas import validate_payload

        validate_payload("scenario", {"name": "fault-replay-deep-mlp",
                                      "fault_seed": 3})

    def test_catalog_fault_scenarios_registered_with_tags(self):
        from repro.scenarios import get_scenario, scenario_names

        names = scenario_names(tag="faults")
        assert {
            "fault-replay-deep-mlp",
            "fault-random-deep-mlp-bsp",
            "fault-replay-transformer",
        } <= set(names)
        for name in names:
            scenario = get_scenario(name)
            assert "paper-scale" not in scenario.tags
            assert "nightly" in scenario.tags
