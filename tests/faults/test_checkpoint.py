"""Checkpoint/restore round-trip: bit-identical float64 continuation.

The contract the rejoin path rests on: ``trainer.checkpoint()`` →
mutate everything → ``trainer.restore()`` → continue on the *same*
``run_stepwise`` generator must yield exactly the trajectory of an
uninterrupted run, for every lockstep trainer family on both model
families (MLP and transformer analogs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.checkpoint import restore_cluster, snapshot_cluster
from repro.harness.experiment import build_cluster, build_workload, make_trainer
from tests.conftest import make_small_cluster

pytestmark = pytest.mark.faults

ITERATIONS = 12
CHECKPOINT_AT = 5

ALGORITHM_KWARGS = {
    "bsp": {},
    "ssp": {"staleness": 3},
    "selsync": {"delta": 0.3},
}


def build_trainer(algorithm: str, workload: str):
    preset = build_workload(workload)
    cluster = build_cluster(preset, num_workers=4, seed=0, batch_size=4)
    return make_trainer(
        algorithm,
        cluster,
        preset,
        ITERATIONS,
        eval_every=4,
        **ALGORITHM_KWARGS[algorithm],
    )


def drive(stepper, steps=None):
    """Advance a run_stepwise generator; returns the TrainingResult at the end."""
    remaining = steps
    while remaining is None or remaining > 0:
        try:
            next(stepper)
        except StopIteration as stop:
            return stop.value
        if remaining is not None:
            remaining -= 1
    return None


def scramble(trainer):
    """Corrupt every piece of state the checkpoint claims to cover."""
    cluster = trainer.cluster
    cluster.matrix.params += 1.23
    cluster.matrix.grads[:] = 7.0
    cluster.ps.state_vector[:] += 0.5
    cluster.clock.worker_time += 11.0
    for worker in cluster.workers:
        worker.optimizer.lr = 99.0
        worker.steps_taken += 100
    trainer.global_step += 50


@pytest.mark.parametrize("workload", ["deep_mlp", "transformer"])
@pytest.mark.parametrize("algorithm", sorted(ALGORITHM_KWARGS))
def test_roundtrip_matches_uninterrupted_run(algorithm, workload):
    baseline_trainer = build_trainer(algorithm, workload)
    baseline = baseline_trainer.run(ITERATIONS, eval_every=4)

    trainer = build_trainer(algorithm, workload)
    stepper = trainer.run_stepwise(ITERATIONS, eval_every=4)
    assert drive(stepper, steps=CHECKPOINT_AT) is None
    ckpt = trainer.checkpoint()
    scramble(trainer)
    trainer.restore(ckpt)
    restored = drive(stepper)

    assert restored.final_metric == baseline.final_metric
    assert restored.final_loss == baseline.final_loss
    assert restored.sim_time_seconds == baseline.sim_time_seconds
    assert restored.communication_bytes == baseline.communication_bytes
    assert restored.lssr == baseline.lssr
    assert [p.loss for p in trainer.history] == [
        p.loss for p in baseline_trainer.history
    ]
    np.testing.assert_array_equal(
        trainer.cluster.matrix.params, baseline_trainer.cluster.matrix.params
    )


class TestCheckpointMechanics:
    def test_checkpoint_holds_copies_not_views(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        ckpt = snapshot_cluster(cluster)
        before = ckpt.params.copy()
        cluster.matrix.params += 3.0
        np.testing.assert_array_equal(ckpt.params, before)

    def test_restore_rejects_mismatched_worker_count(self, small_cluster_factory):
        small = small_cluster_factory(num_workers=2)
        big = small_cluster_factory(num_workers=3)
        with pytest.raises(ValueError, match="workers"):
            restore_cluster(big, snapshot_cluster(small))

    def test_cluster_checkpoint_api_roundtrip(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        batches = cluster.next_batches()
        cluster.compute_gradients_all(batches)
        cluster.apply_local_updates()
        cluster.charge_compute_step()
        ckpt = cluster.checkpoint()
        params = cluster.matrix.params.copy()
        elapsed = cluster.clock.elapsed

        cluster.matrix.params[:] = -4.0
        cluster.clock.worker_time += 9.0
        cluster.deactivate_worker(1)
        cluster.restore(ckpt)

        np.testing.assert_array_equal(cluster.matrix.params, params)
        assert cluster.clock.elapsed == elapsed
        assert cluster.active_mask.all()

    def test_restore_resumes_identical_data_stream(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        ckpt = cluster.checkpoint()
        expected = cluster.next_batches()
        cluster.next_batches()  # advance further before restoring
        cluster.restore(ckpt)
        resumed = cluster.next_batches()
        for a, b in zip(expected, resumed):
            np.testing.assert_array_equal(a[0], b[0])
            np.testing.assert_array_equal(a[1], b[1])
