"""Elastic worker masking: crashed rows vanish from compute and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.sweep_exec import StackedSweepMatrix
from repro.engine.worker_matrix import WorkerMatrix
from repro.nn.models import MLP
from tests.conftest import make_small_cluster

pytestmark = pytest.mark.faults


class TestActiveSet:
    def test_deactivate_and_reactivate_roundtrip(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=4)
        cluster.deactivate_worker(2)
        assert cluster.num_active == 3
        assert list(cluster.active_indices) == [0, 1, 3]
        cluster.reactivate_worker(2)
        assert cluster.active_mask.all()

    def test_double_deactivate_and_double_reactivate_rejected(
        self, small_cluster_factory
    ):
        cluster = small_cluster_factory(num_workers=3)
        cluster.deactivate_worker(1)
        with pytest.raises(ValueError, match="already inactive"):
            cluster.deactivate_worker(1)
        cluster.reactivate_worker(1)
        with pytest.raises(ValueError, match="already active"):
            cluster.reactivate_worker(1)

    def test_last_active_worker_protected(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        cluster.deactivate_worker(0)
        with pytest.raises(ValueError, match="last active worker"):
            cluster.deactivate_worker(1)

    def test_out_of_range_worker_rejected(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        with pytest.raises(ValueError, match="worker_id"):
            cluster.deactivate_worker(5)

    def test_primary_worker_skips_crashed_worker_zero(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=3)
        assert cluster.primary_worker.worker_id == 0
        cluster.deactivate_worker(0)
        assert cluster.primary_worker.worker_id == 1

    @pytest.mark.pool
    def test_pool_cluster_rejects_elastic_masks(self):
        cluster = make_small_cluster(num_workers=2, pool_workers=2)
        try:
            with pytest.raises(RuntimeError, match="replica pool"):
                cluster.deactivate_worker(0)
        finally:
            cluster.close()


class TestMaskedBatchesAndCompute:
    def test_next_batches_returns_none_at_crashed_slots(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=3)
        cluster.deactivate_worker(1)
        batches = cluster.next_batches()
        assert batches[1] is None
        assert batches[0] is not None and batches[2] is not None

    def test_crashed_loader_does_not_advance(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        reference = small_cluster_factory(num_workers=2)
        cluster.deactivate_worker(1)
        cluster.next_batches()
        cluster.reactivate_worker(1)
        # The crashed worker's stream resumes exactly where it stopped: its
        # first post-rejoin batch is the reference worker's *first* batch.
        resumed = cluster.workers[1].next_batch()
        expected = reference.workers[1].next_batch()
        np.testing.assert_array_equal(resumed[0], expected[0])
        np.testing.assert_array_equal(resumed[1], expected[1])

    def test_masked_compute_matches_unmasked_active_rows(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=4, seed=3)
        reference = small_cluster_factory(num_workers=4, seed=3)
        ref_batches = reference.next_batches()
        ref_losses = reference.compute_gradients_all(ref_batches)

        cluster.deactivate_worker(1)
        batches = list(ref_batches)
        batches[1] = None
        losses = cluster.compute_gradients_all(batches)

        # Only active losses come back, bit-equal to the unmasked run's rows.
        assert losses == [ref_losses[0], ref_losses[2], ref_losses[3]]
        for row in (0, 2, 3):
            np.testing.assert_array_equal(
                cluster.matrix.grads[row], reference.matrix.grads[row]
            )
        assert not cluster.matrix.grads[1].any()

    def test_masked_update_freezes_crashed_rows(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=3, seed=1)
        cluster.deactivate_worker(2)
        frozen = cluster.matrix.params[2].copy()
        batches = cluster.next_batches()
        cluster.compute_gradients_all(batches)
        cluster.apply_local_updates()
        np.testing.assert_array_equal(cluster.matrix.params[2], frozen)
        assert not np.array_equal(
            cluster.matrix.params[0], frozen
        )  # live rows did step

    def test_masked_aggregation_ignores_crashed_rows(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=3)
        cluster.matrix.params[0] = 1.0
        cluster.matrix.params[1] = 5.0
        cluster.matrix.params[2] = 3.0
        cluster.deactivate_worker(1)
        np.testing.assert_allclose(cluster.average_worker_vector(), 2.0)
        mean_state = cluster.average_worker_states()
        flat = np.concatenate([v.ravel() for v in mean_state.values()])
        np.testing.assert_allclose(flat, 2.0)

    def test_broadcast_skips_crashed_rows(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=3)
        cluster.deactivate_worker(1)
        stale = cluster.matrix.params[1].copy()
        cluster.broadcast_state(
            np.full(cluster.matrix.spec.total_size, 9.0)
        )
        np.testing.assert_array_equal(cluster.matrix.params[1], stale)
        np.testing.assert_allclose(cluster.matrix.params[0], 9.0)
        np.testing.assert_allclose(cluster.matrix.params[2], 9.0)


class TestFaultClockCharging:
    def test_crashed_workers_charge_no_compute_time(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=3)
        cluster.deactivate_worker(1)
        durations = cluster.charge_compute_step()
        assert durations[1] == 0.0
        assert durations[0] > 0.0 and durations[2] > 0.0
        assert cluster.clock.worker_elapsed(1) == 0.0

    def test_fault_speed_scale_slows_compute(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        baseline = cluster.charge_compute_step()
        cluster.fault_speed_scale[1] = 1.0 / 3.0
        slowed = cluster.charge_compute_step()
        assert slowed[0] == pytest.approx(baseline[0])
        assert slowed[1] == pytest.approx(3.0 * baseline[1])


class TestWorkerMatrixResize:
    def _spec(self):
        model = MLP((6, 8, 3), rng=np.random.default_rng(0))
        model.flatten_parameters()
        return model.flat_spec

    def test_grow_preserves_rows_and_zeroes_new_ones(self):
        matrix = WorkerMatrix(2, self._spec())
        matrix.params[:] = 7.0
        matrix.resize(4)
        assert matrix.params.shape[0] == 4
        np.testing.assert_allclose(matrix.params[:2], 7.0)
        np.testing.assert_allclose(matrix.params[2:], 0.0)

    def test_shrink_drops_tail_rows(self):
        matrix = WorkerMatrix(4, self._spec())
        matrix.params[:] = np.arange(4)[:, None]
        matrix.resize(2)
        np.testing.assert_allclose(matrix.params[:, 0], [0.0, 1.0])

    def test_donated_storage_cannot_resize(self):
        spec = self._spec()
        params = np.zeros((2, spec.total_size))
        grads = np.zeros_like(params)
        matrix = WorkerMatrix(2, spec, params=params, grads=grads)
        assert not matrix.owns_storage
        with pytest.raises(ValueError, match="donated storage"):
            matrix.resize(3)

    def test_invalid_size_rejected(self):
        matrix = WorkerMatrix(2, self._spec())
        with pytest.raises(ValueError, match="num_workers"):
            matrix.resize(0)


class TestStackedSliceMasks:
    IN_DIM, NUM_CLASSES, BATCH = 6, 3, 4

    def _make(self, num_slices=2, num_workers=3):
        model = MLP((self.IN_DIM, 8, self.NUM_CLASSES), rng=np.random.default_rng(0))
        stacked = StackedSweepMatrix(num_slices, num_workers)
        for index in range(num_slices):
            stacked.slice_storage(index, model.flat_spec)
        stacked.params[:] = np.random.default_rng(11).standard_normal(
            stacked.params.shape
        )
        stacked.build_executors(model)
        return stacked

    def _batches(self, num_workers, seed=5):
        rng = np.random.default_rng(seed)
        return [
            (
                rng.standard_normal((self.BATCH, self.IN_DIM)),
                rng.integers(0, self.NUM_CLASSES, size=self.BATCH),
            )
            for _ in range(num_workers)
        ]

    def test_masked_slice_zeroes_its_crashed_rows_only(self):
        stacked = self._make()
        reference = self._make()
        batches = self._batches(3)
        mask = np.array([True, False, True])
        stacked.set_slice_mask(1, mask)
        masked_batches = list(batches)
        masked_batches[1] = None

        losses0, norms0 = stacked.gradients_for_slice(0, batches)
        losses1, norms1 = stacked.gradients_for_slice(1, masked_batches)
        ref0 = reference.gradients_for_slice(0, batches)
        ref1 = reference.gradients_for_slice(1, batches)

        # Slice 0 (unmasked) is untouched by slice 1's mask.
        np.testing.assert_array_equal(losses0, ref0[0])
        np.testing.assert_array_equal(norms0, ref0[1])
        # Slice 1's crashed row is zeroed, its live rows bit-equal.
        assert losses1[1] == 0.0 and norms1[1] == 0.0
        assert not stacked.grads[4].any()  # slice 1, worker 1 → row 4
        for worker in (0, 2):
            assert losses1[worker] == ref1[0][worker]
            np.testing.assert_array_equal(
                stacked.grads[3 + worker], reference.grads[3 + worker]
            )

    def test_all_false_mask_rejected(self):
        stacked = self._make()
        with pytest.raises(ValueError, match="every worker"):
            stacked.set_slice_mask(0, np.zeros(3, dtype=bool))

    def test_wrong_shape_and_bad_index_rejected(self):
        stacked = self._make()
        with pytest.raises(ValueError):
            stacked.set_slice_mask(0, np.ones(5, dtype=bool))
        with pytest.raises(ValueError):
            stacked.set_slice_mask(9, np.ones(3, dtype=bool))

    def test_clearing_the_mask_restores_full_compute(self):
        stacked = self._make()
        batches = self._batches(3)
        stacked.set_slice_mask(1, np.array([True, False, True]))
        stacked.set_slice_mask(1, None)
        stacked.gradients_for_slice(0, batches)
        losses1, norms1 = stacked.gradients_for_slice(1, batches)
        assert np.all(np.asarray(losses1) > 0.0) and np.all(np.asarray(norms1) > 0.0)
