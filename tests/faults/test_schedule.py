"""FaultEvent / FaultSchedule validation and seeded generation determinism."""

from __future__ import annotations

import pytest

from repro.faults.schedule import (
    FaultError,
    FaultEvent,
    FaultSchedule,
    crash,
    rejoin,
    straggler_burst,
)

pytestmark = pytest.mark.faults


class TestFaultEvent:
    def test_helpers_build_the_right_kinds(self):
        assert crash(1, 5) == FaultEvent(step=5, kind="crash", worker=1)
        assert rejoin(1, 9) == FaultEvent(step=9, kind="rejoin", worker=1)
        burst = straggler_burst(2, 4, duration=3, slowdown=2.5)
        assert (burst.kind, burst.duration, burst.slowdown) == ("straggler", 3, 2.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(step=0, kind="explode", worker=0),
            dict(step=-1, kind="crash", worker=0),
            dict(step=0, kind="crash", worker=-1),
            dict(step=0, kind="straggler", worker=0, duration=0, slowdown=2.0),
            dict(step=0, kind="straggler", worker=0, duration=-2, slowdown=2.0),
            dict(step=0, kind="straggler", worker=0, duration=3, slowdown=0.5),
        ],
    )
    def test_invalid_events_rejected(self, kwargs):
        with pytest.raises(FaultError):
            FaultEvent(**kwargs)

    def test_to_dict_includes_burst_fields_only_for_stragglers(self):
        assert crash(1, 5).to_dict() == {"step": 5, "kind": "crash", "worker": 1}
        burst = straggler_burst(0, 2, duration=4, slowdown=3.0).to_dict()
        assert burst["duration"] == 4 and burst["slowdown"] == 3.0


class TestFaultSchedule:
    def test_events_sorted_by_step_stably(self):
        schedule = FaultSchedule([rejoin(0, 5), crash(1, 2), crash(0, 5)])
        assert [e.step for e in schedule] == [2, 5, 5]
        # Same-step events keep insertion order: rejoin before crash.
        assert [e.kind for e in schedule.events_at(5)] == ["rejoin", "crash"]

    def test_non_event_members_rejected(self):
        with pytest.raises(FaultError, match="FaultEvent"):
            FaultSchedule([crash(0, 1), {"step": 2, "kind": "crash", "worker": 1}])

    def test_equality_and_roundtrip_dicts(self):
        events = [crash(1, 3), rejoin(1, 7)]
        assert FaultSchedule(events) == FaultSchedule(events)
        assert FaultSchedule(events).to_dicts() == [e.to_dict() for e in events]

    @pytest.mark.parametrize(
        "events, match",
        [
            ([crash(5, 0)], "has 4 workers"),
            ([crash(1, 99)], "beyond"),
            ([crash(1, 2), crash(1, 3)], "already down"),
            ([rejoin(1, 2)], "never crashed"),
            (
                [crash(0, 1), crash(1, 1), crash(2, 1), crash(3, 2)],
                "last active worker",
            ),
        ],
    )
    def test_impossible_histories_rejected(self, events, match):
        with pytest.raises(FaultError, match=match):
            FaultSchedule(events).validate(4, iterations=20)

    def test_valid_history_passes(self):
        FaultSchedule(
            [crash(0, 1), rejoin(0, 4), crash(0, 6), straggler_burst(1, 2, 3)]
        ).validate(4, iterations=10)


class TestGenerate:
    def test_pure_function_of_arguments(self):
        kwargs = dict(seed=11, failure_rate=0.1, straggler_fraction=0.2, mttr=4)
        a = FaultSchedule.generate(6, 40, **kwargs)
        b = FaultSchedule.generate(6, 40, **kwargs)
        assert a == b and len(a) > 0

    def test_seed_changes_the_schedule(self):
        a = FaultSchedule.generate(6, 40, seed=0, failure_rate=0.1)
        b = FaultSchedule.generate(6, 40, seed=1, failure_rate=0.1)
        assert a != b

    def test_generated_schedule_is_always_valid(self):
        for seed in range(5):
            schedule = FaultSchedule.generate(
                4, 30, seed=seed, failure_rate=0.15, straggler_fraction=0.3, mttr=3
            )
            schedule.validate(4, iterations=30)

    def test_zero_rates_generate_nothing(self):
        assert len(FaultSchedule.generate(4, 20, seed=3)) == 0

    def test_straggler_bursts_never_overlap_per_worker(self):
        schedule = FaultSchedule.generate(
            3, 60, seed=2, straggler_fraction=0.5, mttr=5
        )
        ends = {}
        for event in schedule:
            if event.kind != "straggler":
                continue
            assert event.step > ends.get(event.worker, -1)
            ends[event.worker] = event.step + event.duration - 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_workers=0, iterations=10),
            dict(num_workers=2, iterations=0),
            dict(num_workers=2, iterations=10, failure_rate=1.5),
            dict(num_workers=2, iterations=10, straggler_fraction=-0.1),
            dict(num_workers=2, iterations=10, mttr=0),
            dict(num_workers=2, iterations=10, slowdown=0.9),
        ],
    )
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(FaultError):
            FaultSchedule.generate(**kwargs)
