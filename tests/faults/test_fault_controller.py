"""FaultController behavior and run_experiment fault arming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultController, FaultSchedule
from repro.faults.schedule import crash, rejoin, straggler_burst
from repro.harness.experiment import run_experiment
from tests.conftest import make_small_cluster

pytestmark = pytest.mark.faults


def controller_for(cluster, events, **kwargs):
    return FaultController(cluster, FaultSchedule(events), **kwargs)


class TestController:
    def test_invalid_checkpoint_interval_rejected(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        with pytest.raises(ValueError, match="checkpoint_every"):
            controller_for(cluster, [], checkpoint_every=0)

    def test_schedule_validated_against_cluster_size(self, small_cluster_factory):
        from repro.faults.schedule import FaultError

        cluster = small_cluster_factory(num_workers=2)
        with pytest.raises(FaultError, match="has 2 workers"):
            controller_for(cluster, [crash(5, 0)])

    def test_crash_deactivates_and_snapshots(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=3)
        controller = controller_for(cluster, [crash(1, 2)])
        step0_ckpt = controller.latest_checkpoint
        controller.before_step(0)
        assert cluster.active_mask.all()  # nothing scheduled yet
        cluster.matrix.params[:] += 1.0  # state moves between steps
        controller.before_step(2)
        assert not cluster.active_mask[1]
        assert controller.crash_count == 1
        # The crash snapshot is fresh, not the step-0 one.
        assert controller.latest_checkpoint is not step0_ckpt
        np.testing.assert_array_equal(
            controller.latest_checkpoint.params, cluster.matrix.params
        )
        assert controller.event_log == [{"step": 2, "kind": "crash", "worker": 1}]

    def test_rejoin_restores_syncs_and_charges_resync(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=3)
        controller = controller_for(cluster, [crash(1, 1), rejoin(1, 4)])
        controller.before_step(1)
        # The survivors make progress while worker 1 is down.
        cluster.clock.advance_worker(0, 5.0)
        cluster.ps.set_state(np.full(cluster.matrix.spec.total_size, 2.5))
        comm_before = cluster.clock.buckets["communication"]
        controller.before_step(4)
        assert cluster.active_mask.all()
        assert controller.rejoin_count == 1
        # Fast-forwarded to the barrier, then charged the re-sync pull.
        assert cluster.clock.worker_elapsed(1) > 5.0
        assert cluster.clock.buckets["communication"] > comm_before
        # The rejoined row carries the parameter server's current state.
        np.testing.assert_allclose(cluster.matrix.params[1], 2.5)

    def test_straggler_burst_scales_and_expires(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        controller = controller_for(
            cluster, [straggler_burst(1, 2, duration=3, slowdown=4.0)]
        )
        controller.before_step(2)
        assert cluster.fault_speed_scale[1] == 0.25
        assert controller.straggler_count == 1
        controller.before_step(4)  # still inside the burst
        assert cluster.fault_speed_scale[1] == 0.25
        controller.before_step(5)  # burst over
        assert cluster.fault_speed_scale[1] == 1.0

    def test_periodic_checkpoint_refreshes_restore_point(self, small_cluster_factory):
        cluster = small_cluster_factory(num_workers=2)
        controller = controller_for(cluster, [], checkpoint_every=2)
        first = controller.latest_checkpoint
        controller.before_step(1)
        assert controller.latest_checkpoint is first  # not due yet
        controller.before_step(2)
        assert controller.latest_checkpoint is not first


class TestRunExperimentFaults:
    def test_unsupported_algorithm_rejected(self):
        with pytest.raises(ValueError, match="fault injection"):
            run_experiment(
                "deep_mlp", "ssp", iterations=4, failure_rate=0.1, staleness=10
            )

    def test_pool_runs_rejected(self):
        with pytest.raises(ValueError, match="pool"):
            run_experiment(
                "deep_mlp", "bsp", iterations=4, failure_rate=0.1, pool_workers=2
            )

    def test_explicit_schedule_counts_land_in_extras(self):
        schedule = FaultSchedule(
            [crash(1, 2), straggler_burst(0, 3, duration=2), rejoin(1, 6)]
        )
        out = run_experiment(
            "deep_mlp", "selsync", iterations=10, fault_schedule=schedule
        )
        assert out.result.extras["fault_crashes"] == 1.0
        assert out.result.extras["fault_rejoins"] == 1.0
        assert out.result.extras["fault_stragglers"] == 1.0
        assert np.isfinite(out.result.final_loss)

    def test_generated_faults_replay_deterministically(self):
        kwargs = dict(
            iterations=16,
            fault_seed=5,
            failure_rate=0.08,
            straggler_fraction=0.2,
            mttr=4,
            fault_checkpoint_every=4,
        )
        a = run_experiment("deep_mlp", "bsp", **kwargs).result
        b = run_experiment("deep_mlp", "bsp", **kwargs).result
        assert a.final_metric == b.final_metric
        assert a.final_loss == b.final_loss
        assert a.sim_time_seconds == b.sim_time_seconds
        assert a.communication_bytes == b.communication_bytes

    def test_unarmed_run_untouched_by_fault_defaults(self):
        plain = run_experiment("deep_mlp", "bsp", iterations=8).result
        explicit = run_experiment(
            "deep_mlp", "bsp", iterations=8, failure_rate=0.0, straggler_fraction=0.0
        ).result
        assert "fault_crashes" not in plain.extras
        assert "fault_crashes" not in explicit.extras
        assert plain.final_loss == explicit.final_loss
