"""Tests for compute/memory cost models, heterogeneity and the simulated clock."""

import numpy as np
import pytest

from repro.cluster.clock import SimulatedClock
from repro.cluster.compute_model import (
    PAPER_WORKLOADS,
    ComputeCostModel,
    memory_gigabytes,
)
from repro.cluster.heterogeneity import HomogeneousSpeed, StragglerModel


class TestWorkloadSpecs:
    def test_all_paper_workloads_present(self):
        assert set(PAPER_WORKLOADS) == {"resnet101", "vgg11", "alexnet", "transformer"}

    def test_vgg_is_largest_model(self):
        """VGG11 is 507 MB in the paper — the largest of the four."""
        sizes = {name: spec.model_mb for name, spec in PAPER_WORKLOADS.items()}
        assert max(sizes, key=sizes.get) == "vgg11"

    def test_model_bytes_conversion(self):
        spec = PAPER_WORKLOADS["resnet101"]
        assert spec.model_bytes == spec.model_mb * 1e6


class TestComputeCostModel:
    def test_compute_time_increases_with_batch(self):
        """Fig. 2a: compute time grows with batch size."""
        model = ComputeCostModel(PAPER_WORKLOADS["resnet101"])
        times = [model.step_seconds(b) for b in (32, 64, 128, 256, 512, 1024)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_speed_factor_divides_time(self):
        model = ComputeCostModel(PAPER_WORKLOADS["alexnet"])
        assert model.step_seconds(64, speed_factor=2.0) < model.step_seconds(64, 1.0)

    def test_throughput_positive_and_sublinear(self):
        model = ComputeCostModel(PAPER_WORKLOADS["transformer"])
        small = model.throughput_samples_per_second(32)
        large = model.throughput_samples_per_second(1024)
        assert small > 0 and large > 0

    def test_validation(self):
        model = ComputeCostModel(PAPER_WORKLOADS["vgg11"])
        with pytest.raises(ValueError):
            model.step_seconds(0)
        with pytest.raises(ValueError):
            model.step_seconds(32, speed_factor=0.0)
        with pytest.raises(ValueError):
            ComputeCostModel(PAPER_WORKLOADS["vgg11"], scaling_exponent=5.0)


class TestMemoryModel:
    def test_memory_increases_with_batch(self):
        """Fig. 2b: memory utilization grows with batch size."""
        spec = PAPER_WORKLOADS["transformer"]
        mems = [memory_gigabytes(spec, b) for b in (32, 64, 128, 256, 512, 1024)]
        assert all(b > a for a, b in zip(mems, mems[1:]))

    def test_transformer_exceeds_k80_capacity_at_large_batch(self):
        """The paper's Transformer OOMs beyond b=64 on a 12 GB K80."""
        spec = PAPER_WORKLOADS["transformer"]
        assert memory_gigabytes(spec, 1024) > 10.0

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            memory_gigabytes(PAPER_WORKLOADS["resnet101"], 0)


class TestHeterogeneity:
    def test_homogeneous_all_equal(self):
        speeds = HomogeneousSpeed().speed_factors(8, 0)
        np.testing.assert_allclose(speeds, 1.0)

    def test_homogeneous_custom_factor(self):
        speeds = HomogeneousSpeed(2.0).speed_factors(4, 0)
        np.testing.assert_allclose(speeds, 2.0)

    def test_straggler_probability_zero_is_nominal(self):
        speeds = StragglerModel(straggler_prob=0.0).speed_factors(8, 0)
        np.testing.assert_allclose(speeds, 1.0)

    def test_stragglers_slow_down_some_workers(self):
        model = StragglerModel(straggler_prob=0.5, slowdown=4.0, seed=0)
        speeds = model.speed_factors(100, 0)
        assert np.any(speeds < 1.0) and np.any(speeds == 1.0)

    def test_static_factors_respected(self):
        model = StragglerModel(straggler_prob=0.0, static_factors=[1.0, 0.5])
        np.testing.assert_allclose(model.speed_factors(2, 0), [1.0, 0.5])

    def test_static_factors_length_checked(self):
        model = StragglerModel(static_factors=[1.0, 0.5])
        with pytest.raises(ValueError):
            model.speed_factors(3, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerModel(straggler_prob=2.0)
        with pytest.raises(ValueError):
            StragglerModel(slowdown=0.5)
        with pytest.raises(ValueError):
            HomogeneousSpeed(0.0)


class TestSimulatedClock:
    def test_advance_all_and_elapsed(self):
        clock = SimulatedClock(3)
        clock.advance_all([1.0, 2.0, 3.0])
        assert clock.elapsed == 3.0
        assert clock.worker_elapsed(0) == 1.0

    def test_barrier_aligns_to_slowest(self):
        """BSP semantics: every worker waits for the slowest one."""
        clock = SimulatedClock(3)
        clock.advance_all([1.0, 2.0, 5.0])
        clock.barrier()
        np.testing.assert_allclose(clock.worker_time, 5.0)

    def test_barrier_and_add_charges_everyone(self):
        clock = SimulatedClock(2)
        clock.advance_all([1.0, 2.0])
        clock.barrier_and_add(0.5)
        np.testing.assert_allclose(clock.worker_time, 2.5)
        assert clock.buckets["communication"] == 0.5

    def test_async_advance_keeps_workers_apart(self):
        clock = SimulatedClock(2)
        clock.advance_worker(0, 1.0)
        clock.advance_worker(1, 3.0)
        assert clock.worker_elapsed(0) != clock.worker_elapsed(1)

    def test_bucket_accounting(self):
        clock = SimulatedClock(2)
        clock.advance_all([1.0, 1.0], bucket="compute")
        clock.barrier_and_add(2.0, bucket="communication")
        assert clock.buckets["compute"] == 1.0
        assert clock.buckets["communication"] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedClock(0)
        clock = SimulatedClock(2)
        with pytest.raises(ValueError):
            clock.advance_worker(5, 1.0)
        with pytest.raises(ValueError):
            clock.advance_worker(0, -1.0)
        with pytest.raises(ValueError):
            clock.advance_all([1.0])
        with pytest.raises(ValueError):
            clock.barrier_and_add(-1.0)
