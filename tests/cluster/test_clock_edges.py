"""SimulatedClock edge cases: single-worker barriers, rejections, bucket sums,
and the fault layer's rejoin fast-forward (``sync_worker``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.clock import SimulatedClock

pytestmark = pytest.mark.faults


class TestSingleWorker:
    def test_barrier_with_one_worker_is_a_noop(self):
        clock = SimulatedClock(1)
        clock.advance_worker(0, 2.5)
        assert clock.barrier() == 2.5
        assert clock.worker_elapsed(0) == 2.5

    def test_barrier_and_add_charges_the_lone_worker(self):
        clock = SimulatedClock(1)
        clock.advance_worker(0, 1.0)
        assert clock.barrier_and_add(0.5) == 1.5
        assert clock.elapsed == 1.5
        assert clock.buckets["communication"] == 0.5


class TestRejections:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            SimulatedClock(0)

    def test_negative_advances_rejected_everywhere(self):
        clock = SimulatedClock(2)
        with pytest.raises(ValueError, match="negative"):
            clock.advance_worker(0, -1.0)
        with pytest.raises(ValueError, match="negative"):
            clock.advance_all([1.0, -1.0])
        with pytest.raises(ValueError, match="negative"):
            clock.barrier_and_add(-0.1)

    def test_zero_second_advance_is_a_clean_noop(self):
        clock = SimulatedClock(2)
        clock.advance_worker(0, 0.0)
        clock.advance_all([0.0, 0.0])
        assert clock.elapsed == 0.0
        assert clock.buckets["compute"] == 0.0

    def test_out_of_range_workers_rejected(self):
        clock = SimulatedClock(2)
        with pytest.raises(ValueError, match="out of range"):
            clock.advance_worker(5, 1.0)
        with pytest.raises(ValueError, match="out of range"):
            clock.worker_elapsed(5)
        with pytest.raises(ValueError, match="out of range"):
            clock.sync_worker(5)

    def test_wrong_duration_shape_rejected(self):
        clock = SimulatedClock(3)
        with pytest.raises(ValueError, match="expected 3 durations"):
            clock.advance_all([1.0, 2.0])


class TestBucketAccounting:
    def test_serial_advances_sum_into_their_bucket(self):
        clock = SimulatedClock(3)
        amounts = [(0, 1.0), (1, 2.0), (2, 0.5), (0, 0.25)]
        for worker, seconds in amounts:
            clock.advance_worker(worker, seconds, bucket="compute")
        assert clock.buckets["compute"] == pytest.approx(
            sum(s for _, s in amounts)
        )
        np.testing.assert_allclose(clock.worker_time, [1.25, 2.0, 0.5])

    def test_parallel_advance_charges_the_critical_path(self):
        clock = SimulatedClock(3)
        clock.advance_all([1.0, 3.0, 2.0])
        # A parallel phase costs its slowest worker, not the sum.
        assert clock.buckets["compute"] == 3.0
        assert clock.elapsed == 3.0

    def test_unknown_buckets_are_created_on_demand(self):
        clock = SimulatedClock(1)
        clock.advance_worker(0, 1.0, bucket="resync")
        assert clock.buckets["resync"] == 1.0


class TestSyncWorker:
    def test_fast_forwards_to_the_frontier(self):
        clock = SimulatedClock(3)
        clock.advance_worker(0, 4.0)
        clock.advance_worker(1, 7.0)
        assert clock.sync_worker(2) == 7.0
        assert clock.worker_elapsed(2) == 7.0
        # Other workers are untouched (unlike barrier()).
        assert clock.worker_elapsed(0) == 4.0

    def test_charges_no_bucket(self):
        clock = SimulatedClock(2)
        clock.advance_worker(0, 5.0)
        buckets = dict(clock.buckets)
        clock.sync_worker(1)
        assert clock.buckets == buckets

    def test_never_rewinds_the_frontier_worker(self):
        clock = SimulatedClock(2)
        clock.advance_worker(1, 3.0)
        assert clock.sync_worker(1) == 3.0
        assert clock.worker_elapsed(1) == 3.0
