"""Tests for the Worker abstraction and the SimulatedCluster wiring."""

import numpy as np
import pytest

from repro.cluster.cluster import ClusterConfig, SimulatedCluster
from repro.cluster.worker import Worker
from repro.data.datasets import make_classification_dataset
from repro.data.loader import DataLoader
from repro.data.partition import DefaultPartitioner, SelSyncPartitioner
from repro.nn.models import MLP
from repro.optim.sgd import SGD


@pytest.fixture
def dataset():
    return make_classification_dataset(256, 4, 16, class_sep=4.0, seed=0)


@pytest.fixture
def test_dataset():
    return make_classification_dataset(128, 4, 16, class_sep=4.0, seed=1)


def _make_worker(dataset, worker_id=0, batch_size=16, seed=0):
    model = MLP((16, 24, 4), rng=np.random.default_rng(seed))
    optimizer = SGD(model, lr=0.1)
    loader = DataLoader(dataset, batch_size=batch_size, seed=seed)
    return Worker(worker_id, model, optimizer, loader)


def _make_cluster(dataset, test_dataset, num_workers=4, partitioner=None, **config_kwargs):
    config = ClusterConfig(num_workers=num_workers, batch_size=16, seed=0, **config_kwargs)
    return SimulatedCluster(
        model_factory=lambda rng: MLP((16, 24, 4), rng=rng),
        optimizer_factory=lambda m: SGD(m, lr=0.1),
        train_dataset=dataset,
        test_dataset=test_dataset,
        config=config,
        partitioner=partitioner,
    )


class TestWorker:
    def test_compute_gradients_returns_loss_and_grads(self, dataset):
        worker = _make_worker(dataset)
        loss, grads = worker.compute_gradients()
        assert np.isfinite(loss)
        assert set(grads) == set(worker.model.named_parameters())

    def test_gradients_left_on_module(self, dataset):
        worker = _make_worker(dataset)
        worker.compute_gradients()
        assert any(np.abs(p.grad).sum() > 0 for p in worker.model.parameters())

    def test_apply_update_changes_parameters(self, dataset):
        worker = _make_worker(dataset)
        before = worker.get_state()
        worker.compute_gradients()
        worker.apply_update()
        after = worker.get_state()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_apply_update_with_explicit_lr(self, dataset):
        worker = _make_worker(dataset)
        worker.compute_gradients()
        worker.apply_update(lr=0.5)
        assert worker.optimizer.lr == 0.5

    def test_train_step_reduces_loss_over_time(self, dataset):
        worker = _make_worker(dataset)
        first = worker.train_step()
        for _ in range(40):
            last = worker.train_step()
        assert last < first

    def test_state_delta(self, dataset):
        worker = _make_worker(dataset)
        reference = worker.get_state()
        worker.train_step()
        delta = worker.state_delta(reference)
        for name in reference:
            np.testing.assert_allclose(
                reference[name] + delta[name], worker.get_state()[name]
            )

    def test_steps_taken_counter(self, dataset):
        worker = _make_worker(dataset)
        worker.train_step()
        worker.train_step()
        assert worker.steps_taken == 2

    def test_invalid_args(self, dataset):
        with pytest.raises(ValueError):
            _make_worker(dataset, worker_id=-1)
        model = MLP((16, 8, 4), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            Worker(0, model, SGD(model, lr=0.1),
                   DataLoader(dataset, batch_size=8), task="segmentation")


class TestClusterConstruction:
    def test_all_replicas_start_identical(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        reference = cluster.workers[0].get_state()
        for worker in cluster.workers[1:]:
            for name, value in worker.get_state().items():
                np.testing.assert_array_equal(value, reference[name])

    def test_ps_matches_initial_replicas(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        ps_state = cluster.ps.pull()
        for name, value in cluster.workers[0].get_state().items():
            np.testing.assert_array_equal(value, ps_state[name])

    def test_partition_respected(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset, partitioner=DefaultPartitioner(seed=0))
        sizes = [w.loader.indices.size for w in cluster.workers]
        assert sum(sizes) == len(dataset)

    def test_seldp_gives_every_worker_full_dataset(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset, partitioner=SelSyncPartitioner(seed=0))
        for worker in cluster.workers:
            assert worker.loader.indices.size == len(dataset)

    def test_workers_draw_different_batches(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        batches = [w.next_batch()[1] for w in cluster.workers]
        assert any(not np.array_equal(batches[0], b) for b in batches[1:])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ValueError):
            ClusterConfig(batch_size=0)
        with pytest.raises(ValueError):
            ClusterConfig(task="regression")
        with pytest.raises(ValueError):
            ClusterConfig(workload="bert")


class TestClusterTimeCharging:
    def test_compute_step_advances_clock(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        before = cluster.clock.elapsed
        cluster.charge_compute_step()
        assert cluster.clock.elapsed > before

    def test_sync_more_expensive_than_flags(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        sync_cost = cluster.charge_sync()
        flags_cost = cluster.charge_flags_allgather()
        assert sync_cost > flags_cost * 10

    def test_p2p_charge(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        assert cluster.charge_p2p(1e6) > 0

    def test_steps_per_epoch(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        assert cluster.steps_per_epoch() == len(dataset) // (16 * 4)


class TestClusterEvaluation:
    def test_evaluate_state_restores_replica(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        before = cluster.workers[0].get_state()
        random_state = {k: np.random.default_rng(1).standard_normal(v.shape)
                        for k, v in before.items()}
        cluster.evaluate_state(random_state)
        after = cluster.workers[0].get_state()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_evaluate_returns_accuracy_in_range(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        result = cluster.evaluate_global()
        assert 0.0 <= result.metric <= 1.0
        assert result.metric_name == "accuracy"

    def test_average_worker_states(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        for worker in cluster.workers:
            worker.train_step()
        avg = cluster.average_worker_states()
        name = next(iter(avg))
        manual = np.mean([w.get_state()[name] for w in cluster.workers], axis=0)
        np.testing.assert_allclose(avg[name], manual)

    def test_replica_divergence_zero_when_identical(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        assert cluster.replica_divergence() == pytest.approx(0.0, abs=1e-12)

    def test_replica_divergence_positive_after_local_steps(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        for worker in cluster.workers:
            worker.train_step()
        assert cluster.replica_divergence() > 0.0

    def test_broadcast_state_makes_replicas_identical(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset)
        for worker in cluster.workers:
            worker.train_step()
        cluster.broadcast_state(cluster.average_worker_states())
        assert cluster.replica_divergence() == pytest.approx(0.0, abs=1e-12)


class TestTransportDtypeWiring:
    def test_transport_dtype_reaches_cost_model_and_backend(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset, transport_dtype="float16")
        assert cluster.comm_model.wire_scale == 0.5
        assert cluster.backend.dtype_bytes == 2

    def test_float16_transport_halves_sync_payload_time(self, dataset, test_dataset):
        fp32 = _make_cluster(dataset, test_dataset)
        fp16 = _make_cluster(dataset, test_dataset, transport_dtype="float16")
        s32 = fp32.charge_sync()
        s16 = fp16.charge_sync()
        # Half the payload bytes on the wire; latency terms are unchanged,
        # so the saving is strictly between 0 and 2x.
        assert s16 < s32
        expected = fp32.comm_model.sync_seconds(
            fp32.workload_spec.model_bytes * 0.5, fp32.num_workers
        )
        assert s16 == pytest.approx(expected)

    def test_compute_dtype_unchanged_by_transport(self, dataset, test_dataset):
        cluster = _make_cluster(dataset, test_dataset, transport_dtype="float16")
        assert cluster.matrix.params.dtype == np.float64
        batches = [w.next_batch() for w in cluster.workers]
        losses = cluster.compute_gradients_all(batches)
        assert all(np.isfinite(losses))

    def test_invalid_transport_dtype_rejected(self):
        with pytest.raises(TypeError):
            ClusterConfig(num_workers=2, transport_dtype="float8")

    def test_ps_bytes_follow_transport_dtype(self, dataset, test_dataset):
        # communication_bytes sums backend records and PS push/pull bytes;
        # both must price the same wire format.
        fp32 = _make_cluster(dataset, test_dataset)
        fp16 = _make_cluster(dataset, test_dataset, transport_dtype="float16")
        assert fp16.ps.state_bytes() == fp32.ps.state_bytes() // 2
