"""Property-based tests for the worker speed models (cluster/heterogeneity).

The properties run twice: through hypothesis when it is installed, and
always through a deterministic seeded grid — so the invariants stay covered
on machines without hypothesis (the repo installs nothing at test time).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.cluster.heterogeneity import HomogeneousSpeed, StragglerModel

try:
    from hypothesis import given, settings, strategies as st

    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on stripped-down images
    HAS_HYPOTHESIS = False

pytestmark = pytest.mark.faults


# --------------------------------------------------------------------------- #
# the properties, as plain assertions over one parameter point
# --------------------------------------------------------------------------- #
def check_factors_positive(num_workers, seed, prob, slowdown, steps=8):
    model = StragglerModel(straggler_prob=prob, slowdown=slowdown, seed=seed)
    for step in range(steps):
        factors = model.speed_factors(num_workers, step)
        assert factors.shape == (num_workers,)
        assert np.all(factors > 0.0)
        # Without static heterogeneity a factor is nominal or slowed, nothing else.
        assert np.all(np.isin(factors, [1.0, 1.0 / slowdown]))


def check_deterministic_replay(num_workers, seed, prob, steps=8):
    """Identically-seeded models replayed through the same call sequence agree.

    The straggler model is *stateful* (its RNG advances once per call), so
    determinism is a property of the whole call sequence, not of one step.
    """
    a = StragglerModel(straggler_prob=prob, seed=seed)
    b = StragglerModel(straggler_prob=prob, seed=seed)
    for step in range(steps):
        np.testing.assert_array_equal(
            a.speed_factors(num_workers, step), b.speed_factors(num_workers, step)
        )


def check_homogeneous_is_constant(num_workers, factor, steps=5):
    model = HomogeneousSpeed(factor)
    for step in range(steps):
        np.testing.assert_array_equal(
            model.speed_factors(num_workers, step),
            np.full(num_workers, float(factor)),
        )


# --------------------------------------------------------------------------- #
# seeded-grid coverage (always runs)
# --------------------------------------------------------------------------- #
GRID = list(
    itertools.product([1, 3, 8], [0, 7, 123], [0.0, 0.3, 1.0])
)


class TestSeededGrid:
    @pytest.mark.parametrize("num_workers, seed, prob", GRID)
    def test_factors_positive_and_two_valued(self, num_workers, seed, prob):
        check_factors_positive(num_workers, seed, prob, slowdown=3.0)

    @pytest.mark.parametrize("num_workers, seed, prob", GRID)
    def test_deterministic_per_seed_and_sequence(self, num_workers, seed, prob):
        check_deterministic_replay(num_workers, seed, prob)

    @pytest.mark.parametrize("factor", [0.25, 1.0, 4.0])
    @pytest.mark.parametrize("num_workers", [1, 5])
    def test_homogeneous_equals_constant_matrix(self, num_workers, factor):
        check_homogeneous_is_constant(num_workers, factor)

    def test_static_factors_scale_the_baseline(self):
        statics = [2.0, 1.0, 0.5]
        model = StragglerModel(straggler_prob=0.0, static_factors=statics, seed=0)
        np.testing.assert_array_equal(model.speed_factors(3, 0), statics)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StragglerModel(straggler_prob=1.5)
        with pytest.raises(ValueError):
            StragglerModel(slowdown=0.5)
        with pytest.raises(ValueError):
            StragglerModel(static_factors=[1.0, -2.0])
        with pytest.raises(ValueError):
            HomogeneousSpeed(0.0)
        with pytest.raises(ValueError):
            StragglerModel().speed_factors(0, 0)
        with pytest.raises(ValueError, match="static_factors"):
            StragglerModel(static_factors=[1.0, 2.0]).speed_factors(3, 0)


# --------------------------------------------------------------------------- #
# hypothesis coverage (richer sampling of the same properties)
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not HAS_HYPOTHESIS, reason="hypothesis not installed")
class TestHypothesisProperties:
    @given(
        num_workers=st.integers(1, 16),
        seed=st.integers(0, 10_000),
        prob=st.floats(min_value=0.0, max_value=1.0),
        slowdown=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_factors_always_positive(self, num_workers, seed, prob, slowdown):
        check_factors_positive(num_workers, seed, prob, slowdown, steps=4)

    @given(
        num_workers=st.integers(1, 16),
        seed=st.integers(0, 10_000),
        prob=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_deterministic_replay(self, num_workers, seed, prob):
        check_deterministic_replay(num_workers, seed, prob, steps=4)

    @given(
        num_workers=st.integers(1, 16),
        factor=st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_homogeneous_constant(self, num_workers, factor):
        check_homogeneous_is_constant(num_workers, factor, steps=3)
