"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.optim.schedules import (
    ConstantLR,
    ExponentialDecay,
    IntervalDecay,
    MultiStepDecay,
    StepDecay,
    WarmupCosine,
)


class TestConstant:
    def test_always_base(self):
        sched = ConstantLR(0.01)
        assert sched(0) == sched(10_000) == 0.01

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            ConstantLR(0.1)(-1)


class TestStepDecay:
    def test_decays_every_period(self):
        sched = StepDecay(1.0, step_size=10, gamma=0.1)
        assert sched(0) == 1.0
        assert sched(9) == 1.0
        np.testing.assert_allclose(sched(10), 0.1)
        np.testing.assert_allclose(sched(25), 0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StepDecay(1.0, step_size=0)
        with pytest.raises(ValueError):
            StepDecay(1.0, step_size=5, gamma=0.0)


class TestMultiStepDecay:
    def test_paper_style_milestones(self):
        # ResNet101 recipe: decay by 10x after epochs 110 and 150.
        sched = MultiStepDecay(0.1, milestones=[110, 150], gamma=0.1, steps_per_epoch=1)
        assert sched(0) == 0.1
        np.testing.assert_allclose(sched(110), 0.01)
        np.testing.assert_allclose(sched(150), 0.001)

    def test_steps_per_epoch_conversion(self):
        sched = MultiStepDecay(1.0, milestones=[2], gamma=0.5, steps_per_epoch=100)
        assert sched(199) == 1.0
        assert sched(200) == 0.5

    def test_unsorted_milestones_are_sorted(self):
        sched = MultiStepDecay(1.0, milestones=[30, 10], gamma=0.1)
        np.testing.assert_allclose(sched(20), 0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MultiStepDecay(1.0, milestones=[10], gamma=2.0)
        with pytest.raises(ValueError):
            MultiStepDecay(1.0, milestones=[10], steps_per_epoch=0)
        with pytest.raises(ValueError):
            MultiStepDecay(1.0, milestones=[-5])


class TestIntervalDecay:
    def test_transformer_recipe(self):
        # Paper: lr 2.0 decays by 0.8 every 2000 iterations.
        sched = IntervalDecay(2.0, interval=2000, gamma=0.8)
        assert sched(1999) == 2.0
        np.testing.assert_allclose(sched(2000), 1.6)
        np.testing.assert_allclose(sched(4000), 2.0 * 0.8**2)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            IntervalDecay(1.0, interval=0, gamma=0.5)


class TestExponentialDecay:
    def test_monotone_decreasing(self):
        sched = ExponentialDecay(1.0, decay_rate=0.5, decay_steps=100)
        values = [sched(s) for s in range(0, 500, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_hits_decay_rate_at_decay_steps(self):
        sched = ExponentialDecay(1.0, decay_rate=0.5, decay_steps=100)
        np.testing.assert_allclose(sched(100), 0.5)


class TestWarmupCosine:
    def test_warmup_ramps_linearly(self):
        sched = WarmupCosine(1.0, warmup_steps=10, total_steps=100)
        assert sched(0) < sched(5) < sched(9)

    def test_peak_at_end_of_warmup(self):
        sched = WarmupCosine(1.0, warmup_steps=10, total_steps=100)
        np.testing.assert_allclose(sched(10), 1.0)

    def test_ends_at_min_lr(self):
        sched = WarmupCosine(1.0, warmup_steps=0, total_steps=100, min_lr=0.05)
        np.testing.assert_allclose(sched(100), 0.05, atol=1e-9)

    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            WarmupCosine(1.0, warmup_steps=50, total_steps=50)
