"""Tests for SGD, Adam and the optimizer base class."""

import numpy as np
import pytest

from repro.nn.models import MLP
from repro.nn.module import Module, Parameter
from repro.optim.adam import Adam
from repro.optim.sgd import SGD


class _Scalar(Module):
    """Single-parameter model for hand-checkable optimizer algebra."""

    def __init__(self, value=1.0):
        super().__init__()
        self.w = Parameter(np.array([value]))

    def forward(self, x):
        return x * self.w.data

    def backward(self, g):
        return g


def _set_grad(model, value):
    model.named_parameters()["w"].grad[...] = value


class TestSGD:
    def test_vanilla_step(self):
        model = _Scalar(1.0)
        opt = SGD(model, lr=0.1)
        _set_grad(model, 2.0)
        opt.step()
        np.testing.assert_allclose(model.w.data, 1.0 - 0.1 * 2.0)

    def test_weight_decay_adds_l2_term(self):
        model = _Scalar(1.0)
        opt = SGD(model, lr=0.1, weight_decay=0.5)
        _set_grad(model, 0.0)
        opt.step()
        np.testing.assert_allclose(model.w.data, 1.0 - 0.1 * 0.5 * 1.0)

    def test_momentum_accumulates(self):
        model = _Scalar(0.0)
        opt = SGD(model, lr=1.0, momentum=0.5)
        _set_grad(model, 1.0)
        opt.step()            # velocity = 1 -> w = -1
        _set_grad(model, 1.0)
        opt.step()            # velocity = 1.5 -> w = -2.5
        np.testing.assert_allclose(model.w.data, -2.5)

    def test_nesterov_requires_momentum(self):
        model = _Scalar()
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, nesterov=True)

    def test_nesterov_differs_from_plain_momentum(self):
        plain_model, nest_model = _Scalar(0.0), _Scalar(0.0)
        plain = SGD(plain_model, lr=1.0, momentum=0.9)
        nest = SGD(nest_model, lr=1.0, momentum=0.9, nesterov=True)
        for _ in range(2):
            _set_grad(plain_model, 1.0)
            plain.step()
            _set_grad(nest_model, 1.0)
            nest.step()
        assert not np.allclose(plain_model.w.data, nest_model.w.data)

    def test_explicit_grads_override_module_grads(self):
        model = _Scalar(1.0)
        opt = SGD(model, lr=0.1)
        _set_grad(model, 100.0)
        opt.step(grads={"w": np.array([1.0])})
        np.testing.assert_allclose(model.w.data, 0.9)

    def test_negative_hyperparameters_rejected(self):
        model = _Scalar()
        with pytest.raises(ValueError):
            SGD(model, lr=0.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, momentum=-0.1)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, weight_decay=-1.0)

    def test_state_dict_roundtrip(self):
        model = _Scalar(0.0)
        opt = SGD(model, lr=1.0, momentum=0.9)
        _set_grad(model, 1.0)
        opt.step()
        state = opt.state_dict()
        other = SGD(_Scalar(0.0), lr=1.0, momentum=0.9)
        other.load_state_dict(state)
        np.testing.assert_allclose(other._velocity["w"], opt._velocity["w"])

    def test_set_lr(self):
        model = _Scalar(0.0)
        opt = SGD(model, lr=1.0)
        opt.set_lr(0.5)
        _set_grad(model, 1.0)
        opt.step()
        np.testing.assert_allclose(model.w.data, -0.5)
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)


class TestAdam:
    def test_first_step_size_close_to_lr(self):
        model = _Scalar(0.0)
        opt = Adam(model, lr=0.1)
        _set_grad(model, 5.0)
        opt.step()
        # With bias correction, the first Adam step has magnitude ~lr.
        np.testing.assert_allclose(abs(model.w.data[0]), 0.1, rtol=1e-3)

    def test_step_direction_opposes_gradient(self):
        model = _Scalar(0.0)
        opt = Adam(model, lr=0.01)
        _set_grad(model, -3.0)
        opt.step()
        assert model.w.data[0] > 0

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam(_Scalar(), betas=(1.0, 0.999))

    def test_invalid_eps_rejected(self):
        with pytest.raises(ValueError):
            Adam(_Scalar(), eps=0.0)

    def test_weight_decay_pulls_towards_zero(self):
        model = _Scalar(1.0)
        opt = Adam(model, lr=0.1, weight_decay=1.0)
        _set_grad(model, 0.0)
        opt.step()
        assert abs(model.w.data[0]) < 1.0

    def test_state_dict_roundtrip_preserves_timestep(self):
        model = _Scalar(0.0)
        opt = Adam(model, lr=0.1)
        for _ in range(3):
            _set_grad(model, 1.0)
            opt.step()
        state = opt.state_dict()
        other = Adam(_Scalar(0.0), lr=0.1)
        other.load_state_dict(state)
        assert other._t == 3
        np.testing.assert_allclose(other._m["w"], opt._m["w"])

    def test_reduces_loss_on_real_model(self):
        rng = np.random.default_rng(0)
        model = MLP((8, 16, 3), rng=rng)
        opt = Adam(model, lr=0.01)
        x = rng.standard_normal((32, 8))
        y = rng.integers(0, 3, size=32)
        from repro.nn.losses import cross_entropy_with_logits

        first_loss = None
        for _ in range(30):
            model.zero_grad()
            logits = model.forward(x)
            loss, dlogits = cross_entropy_with_logits(logits, y)
            if first_loss is None:
                first_loss = loss
            model.backward(dlogits)
            opt.step()
        assert loss < first_loss


class TestOptimizerBase:
    def test_step_count_increments(self):
        model = _Scalar()
        opt = SGD(model, lr=0.1)
        _set_grad(model, 1.0)
        opt.step()
        opt.step()
        assert opt.step_count == 2

    def test_zero_grad_clears_module(self):
        model = MLP((4, 4, 2), rng=np.random.default_rng(0))
        opt = SGD(model, lr=0.1)
        for p in model.parameters():
            p.grad += 1.0
        opt.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())
