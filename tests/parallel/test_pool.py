"""ReplicaPool mechanics: grouping, shared-matrix plumbing, crash handling."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.engine import BatchedReplicaExecutor, WorkerMatrix
from repro.nn.models import MLP
from repro.parallel.pool import (
    PoolCrashError,
    _compute_group,
    _compute_row,
    group_bounds,
    resolve_start_method,
)
from repro.utils.rng import spawn_rngs
from tests.conftest import make_small_cluster


@pytest.mark.pool
class TestGroupBounds:
    def test_even_split(self):
        assert group_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads_remainder(self):
        assert group_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_clamps_groups_to_workers(self):
        assert group_bounds(2, 8) == [(0, 1), (1, 2)]

    def test_single_group(self):
        assert group_bounds(5, 1) == [(0, 5)]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            group_bounds(0, 1)


@pytest.mark.pool
class TestStartMethod:
    def test_default_prefers_fork_on_posix(self):
        assert resolve_start_method(None) in ("fork", "spawn", "forkserver")

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_start_method("threads")


@pytest.mark.pool
class TestChildArithmetic:
    """The child-side compute helpers, run in-process (they are pure).

    These are the exact functions `_pool_child_main` dispatches to; pinning
    them here keeps the cross-process parity contract unit-testable without
    a subprocess.
    """

    def _make_group(self, n=3):
        rngs = spawn_rngs(0, n)
        models = [MLP((6, 8, 3), rng=r) for r in rngs]
        models[0].flatten_parameters()
        matrix = WorkerMatrix(n, models[0].flat_spec)
        for i, model in enumerate(models):
            matrix.adopt(i, model)
        rng = np.random.default_rng(1)
        batches = [
            (rng.standard_normal((4, 6)), rng.integers(0, 3, size=4)) for _ in range(n)
        ]
        return matrix, models, batches

    def test_compute_row_matches_worker_arithmetic(self):
        matrix, models, batches = self._make_group()
        loss, norm = _compute_row(models[0], batches[0])
        grad = matrix.grads[0]
        assert norm == float(np.sqrt(grad @ grad))
        assert loss > 0.0

    def test_compute_group_executor_and_fallback_agree(self):
        matrix, models, batches = self._make_group()
        executor = BatchedReplicaExecutor.build(matrix, models[0])
        losses_exec, norms_exec = _compute_group(models, executor, batches)
        grads_exec = matrix.grads.copy()
        losses_loop, _ = _compute_group(models, None, batches)
        np.testing.assert_array_equal(np.asarray(losses_exec), np.asarray(losses_loop))
        np.testing.assert_array_equal(grads_exec, matrix.grads)
        assert len(norms_exec) == len(models)

    def test_compute_group_mismatched_batches_fall_back(self):
        matrix, models, batches = self._make_group()
        executor = BatchedReplicaExecutor.build(matrix, models[0])
        # One worker's batch has a different shape: executor.step returns
        # None and the per-worker loop takes over.
        rng = np.random.default_rng(2)
        batches[1] = (rng.standard_normal((2, 6)), rng.integers(0, 3, size=2))
        losses, norms = _compute_group(models, executor, batches)
        assert len(losses) == len(norms) == len(models)


@pytest.mark.pool
class TestPoolPlumbing:
    def test_cluster_matrix_is_shared_memory_backed(self):
        cluster = make_small_cluster(num_workers=4, pool_workers=2)
        try:
            storage = cluster._shared_storage
            assert storage is not None
            # The matrix and every worker's flat views alias the segments.
            assert np.shares_memory(cluster.matrix.params, storage.params)
            assert np.shares_memory(cluster.workers[0].param_vector, storage.params)
            assert np.shares_memory(cluster.workers[3].grad_vector, storage.grads)
        finally:
            cluster.close()

    def test_gradients_land_in_parent_matrix(self):
        cluster = make_small_cluster(num_workers=4, pool_workers=2)
        try:
            assert not cluster.matrix.grads.any()
            batches = [w.next_batch() for w in cluster.workers]
            losses = cluster.compute_gradients_all(batches)
            assert len(losses) == 4
            # Every row received a gradient from some child process.
            assert all(cluster.matrix.grads[i].any() for i in range(4))
            # last_loss / last_grad_norm bookkeeping mirrors the local path.
            for worker, loss in zip(cluster.workers, losses):
                assert worker.last_loss == loss
                assert worker.last_grad_norm > 0.0
        finally:
            cluster.close()

    def test_parent_side_updates_visible_to_children(self):
        cluster = make_small_cluster(num_workers=2, pool_workers=2, seed=5)
        try:
            batches = [w.next_batch() for w in cluster.workers]
            cluster.compute_gradients_all(batches)
            grads_before = cluster.matrix.grads.copy()
            # Mutate the shared parameters from the parent, then recompute on
            # the same batches: the children must see the new parameters.
            cluster.matrix.broadcast(np.zeros(cluster.matrix.spec.total_size))
            cluster.compute_gradients_all(batches)
            assert not np.array_equal(grads_before, cluster.matrix.grads)
        finally:
            cluster.close()

    def test_compute_one_matches_worker_row(self):
        cluster = make_small_cluster(num_workers=3, pool_workers=3, seed=1)
        reference = make_small_cluster(num_workers=3, seed=1)
        try:
            batch = cluster.workers[1].next_batch()
            ref_batch = reference.workers[1].next_batch()
            loss = cluster.compute_gradients_worker(cluster.workers[1], batch)
            ref_loss = reference.compute_gradients_worker(reference.workers[1], ref_batch)
            assert loss == ref_loss
            np.testing.assert_array_equal(
                cluster.matrix.grads[1], reference.matrix.grads[1]
            )
        finally:
            cluster.close()
            reference.close()

    def test_close_is_idempotent_and_stops_children(self):
        cluster = make_small_cluster(num_workers=2, pool_workers=2)
        pool = cluster.pool
        procs = list(pool._processes)
        cluster.close()
        cluster.close()
        assert pool.closed
        deadline = time.monotonic() + 5.0
        while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not any(p.is_alive() for p in procs)

    def test_pool_workers_clamped_to_num_workers(self):
        cluster = make_small_cluster(num_workers=2, pool_workers=8)
        try:
            assert cluster.pool.num_groups == 2
        finally:
            cluster.close()


@pytest.mark.pool
class TestPoolCrash:
    def test_killed_child_raises_and_cleanup_unlinks_segments(self):
        cluster = make_small_cluster(num_workers=4, pool_workers=2)
        handle = cluster._shared_storage.handle
        victim = cluster.pool._processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        batches = [w.next_batch() for w in cluster.workers]
        with pytest.raises(PoolCrashError):
            cluster.compute_gradients_all(batches)
        assert cluster.pool.closed
        # Cleanup after the crash: no leaked segments.
        cluster.close()
        from repro.parallel.shm import SharedMatrixStorage

        with pytest.raises(FileNotFoundError):
            SharedMatrixStorage.attach(handle)

    def test_pool_refuses_work_after_close(self):
        cluster = make_small_cluster(num_workers=2, pool_workers=2)
        pool = cluster.pool
        cluster.close()
        with pytest.raises(RuntimeError):
            pool.compute_all([None, None])
