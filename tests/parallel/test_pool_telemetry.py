"""Cross-process span collection: child step spans graft into parent traces."""

from __future__ import annotations

import os

import pytest

from repro import telemetry
from tests.conftest import make_small_cluster


@pytest.fixture(autouse=True)
def _pristine_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _drain_by_name(names):
    spans = telemetry.get_tracer().drain()
    return {name: [s for s in spans if s["name"] == name] for name in names}


@pytest.mark.pool
class TestPoolSpanAdoption:
    def _run_one_round(self, **cluster_kwargs):
        telemetry.configure(tracing=True)
        cluster = make_small_cluster(num_workers=2, pool_workers=2, **cluster_kwargs)
        try:
            batches = [w.next_batch() for w in cluster.workers]
            cluster.compute_gradients_all(batches)
        finally:
            cluster.close()
        return _drain_by_name(["pool.roundtrip", "pool.child.step"])

    def test_child_step_spans_adopted_under_roundtrip(self):
        spans = self._run_one_round()
        assert len(spans["pool.roundtrip"]) == 1
        roundtrip = spans["pool.roundtrip"][0]
        # One step span per pool group, shipped over the pipe and grafted
        # under the parent-side round-trip span.
        assert len(spans["pool.child.step"]) == 2
        for child in spans["pool.child.step"]:
            assert child["parent_id"] == roundtrip["span_id"]
            assert child["trace_id"] == roundtrip["trace_id"]
            assert child["pid"] != os.getpid()
            assert child["attrs"]["rows"] >= 1
        # Child compute time is nested inside the round-trip wall time.
        child_total = max(s["duration"] for s in spans["pool.child.step"])
        assert roundtrip["duration"] >= child_total * 0.5

    def test_spawned_children_also_report_spans(self):
        spans = self._run_one_round(pool_start_method="spawn")
        assert len(spans["pool.child.step"]) == 2
        assert all(s["pid"] != os.getpid() for s in spans["pool.child.step"])

    def test_compute_one_adopts_single_child_span(self):
        telemetry.configure(tracing=True)
        cluster = make_small_cluster(num_workers=2, pool_workers=2)
        try:
            worker = cluster.workers[1]
            cluster.compute_gradients_worker(worker, worker.next_batch())
        finally:
            cluster.close()
        spans = _drain_by_name(["pool.roundtrip", "pool.child.step"])
        assert len(spans["pool.roundtrip"]) == 1
        assert len(spans["pool.child.step"]) == 1
        child = spans["pool.child.step"][0]
        assert child["parent_id"] == spans["pool.roundtrip"][0]["span_id"]
        assert child["attrs"]["rows"] == 1

    def test_disabled_tracing_ships_no_spans(self):
        cluster = make_small_cluster(num_workers=2, pool_workers=2)
        try:
            batches = [w.next_batch() for w in cluster.workers]
            cluster.compute_gradients_all(batches)
        finally:
            cluster.close()
        assert telemetry.get_tracer().drain() == []
