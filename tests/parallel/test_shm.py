"""Shared-memory storage: ownership, attach semantics, cleanup guarantees."""

from __future__ import annotations

import gc
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.parallel.shm import SharedMatrixStorage


def _name_exists(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


@pytest.mark.pool
class TestSharedMatrixStorage:
    def test_allocates_zeroed_matrices(self):
        storage = SharedMatrixStorage(3, 5, np.float64)
        assert storage.params.shape == (3, 5)
        assert storage.grads.shape == (3, 5)
        assert storage.params.dtype == np.float64
        assert not storage.params.any() and not storage.grads.any()
        assert storage.owner
        storage.close()

    def test_validates_dimensions(self):
        with pytest.raises(ValueError):
            SharedMatrixStorage(0, 5, np.float64)
        with pytest.raises(ValueError):
            SharedMatrixStorage(3, 0, np.float64)

    def test_attach_sees_owner_writes_and_vice_versa(self):
        storage = SharedMatrixStorage(2, 4, np.float32)
        attached = SharedMatrixStorage.attach(storage.handle)
        assert not attached.owner
        storage.params[1, 2] = 7.5
        assert attached.params[1, 2] == np.float32(7.5)
        attached.grads[0, 0] = -1.0
        assert storage.grads[0, 0] == np.float32(-1.0)
        attached.close()
        storage.close()

    def test_attached_side_may_not_unlink(self):
        storage = SharedMatrixStorage(2, 4, np.float64)
        attached = SharedMatrixStorage.attach(storage.handle)
        with pytest.raises(RuntimeError):
            attached.unlink()
        storage.close()

    def test_owner_close_is_idempotent_and_unlinks(self):
        storage = SharedMatrixStorage(2, 4, np.float64)
        name = storage.handle.params_name
        assert _name_exists(name)
        storage.close()
        assert not _name_exists(name)
        storage.close()  # second close is a no-op
        # The owner's own views stay valid after unlink (mapping alive).
        storage.params[0, 0] = 1.0
        assert storage.params[0, 0] == 1.0

    def test_attach_after_owner_unlink_fails(self):
        storage = SharedMatrixStorage(2, 4, np.float64)
        handle = storage.handle
        storage.close()
        with pytest.raises(FileNotFoundError):
            SharedMatrixStorage.attach(handle)

    def test_gc_finalizer_unlinks_abandoned_storage(self):
        storage = SharedMatrixStorage(2, 4, np.float64)
        name = storage.handle.params_name
        del storage
        gc.collect()
        assert not _name_exists(name)

    def test_handle_roundtrips_dtype(self):
        storage = SharedMatrixStorage(2, 3, "float32")
        attached = SharedMatrixStorage.attach(storage.handle)
        assert attached.dtype == np.float32
        assert attached.nbytes == storage.nbytes == 2 * (2 * 3 * 4)
        attached.close()
        storage.close()
