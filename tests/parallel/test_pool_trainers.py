"""Pool determinism: bit-identical float64 trajectories vs the single-process
engine for BSP, SSP and SelSync, across pool sizes and start methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bsp import BSPTrainer
from repro.algorithms.ssp import SSPTrainer
from repro.cluster.cluster import ClusterConfig, SimulatedCluster
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.data.datasets import make_image_splits, make_sequence_splits
from repro.data.partition import SelSyncPartitioner
from repro.nn.models import ConvNet, TransformerLM
from repro.optim.sgd import SGD
from tests.conftest import make_small_cluster

STEPS = 6


def make_conv_cluster(pool_workers=0, seed=0, num_workers=4, **config_kwargs):
    train, test = make_image_splits(256, 64, 4, in_channels=1, image_size=8, seed=seed)
    config = ClusterConfig(
        num_workers=num_workers, batch_size=8, seed=seed, pool_workers=pool_workers,
        **config_kwargs,
    )
    return SimulatedCluster(
        model_factory=lambda rng: ConvNet(
            in_channels=1, num_classes=4, image_size=8, channels=(3, 5), rng=rng
        ),
        optimizer_factory=lambda m: SGD(m, lr=0.05, momentum=0.9),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def make_lm_cluster(pool_workers=0, seed=0, num_workers=4, dropout=0.3, **config_kwargs):
    train, test = make_sequence_splits(4096, 512, 32, bptt=8, seed=seed)
    config = ClusterConfig(
        num_workers=num_workers, batch_size=4, seed=seed, task="language_modeling",
        workload="transformer", pool_workers=pool_workers, **config_kwargs,
    )
    return SimulatedCluster(
        model_factory=lambda rng: TransformerLM(
            vocab_size=32, d_model=16, num_heads=2, num_layers=2,
            dim_feedforward=32, dropout=dropout, rng=rng,
        ),
        optimizer_factory=lambda m: SGD(m, lr=0.1),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def make_trainer(name, cluster):
    if name == "bsp":
        return BSPTrainer(cluster, eval_every=10_000)
    if name == "ssp":
        return SSPTrainer(cluster, staleness=10, eval_every=10_000)
    return SelSyncTrainer(cluster, SelSyncConfig(delta=0.05), eval_every=10_000)


def run_trajectory(cluster, algorithm, steps=STEPS):
    """(losses, final params) after ``steps`` train steps; closes the cluster."""
    try:
        trainer = make_trainer(algorithm, cluster)
        losses = []
        for _ in range(steps):
            info = trainer.train_step()
            trainer.global_step += 1
            cluster.global_step = trainer.global_step
            losses.append(info["loss"])
        return np.asarray(losses), cluster.matrix.params.copy()
    finally:
        cluster.close()


def assert_identical(a, b):
    np.testing.assert_array_equal(a[0], b[0])  # losses
    np.testing.assert_array_equal(a[1], b[1])  # parameter matrix


@pytest.mark.pool
class TestMLPTrajectories:
    @pytest.mark.parametrize("algorithm", ["bsp", "ssp", "selsync"])
    def test_bit_identical_across_pool_sizes(self, algorithm):
        single = run_trajectory(make_small_cluster(num_workers=4, seed=3), algorithm)
        for pool_workers in (1, 2, 4):
            pooled = run_trajectory(
                make_small_cluster(num_workers=4, seed=3, pool_workers=pool_workers),
                algorithm,
            )
            assert_identical(single, pooled)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_bit_identical_across_start_methods(self, start_method):
        single = run_trajectory(make_small_cluster(num_workers=4, seed=7), "bsp")
        pooled = run_trajectory(
            make_small_cluster(
                num_workers=4, seed=7, pool_workers=2, pool_start_method=start_method
            ),
            "bsp",
        )
        assert_identical(single, pooled)


@pytest.mark.pool
class TestConvNetTrajectories:
    @pytest.mark.parametrize("algorithm", ["bsp", "ssp", "selsync"])
    def test_bit_identical_pool_vs_single(self, algorithm):
        single = run_trajectory(make_conv_cluster(0, seed=2), algorithm)
        pooled = run_trajectory(make_conv_cluster(2, seed=2), algorithm)
        assert_identical(single, pooled)

    def test_per_worker_fallback_children_match_batched_single(self):
        # Children forced onto the per-worker loop (the models-too-heavy-to-
        # batch scenario the pool exists for) still reproduce the batched
        # single-process trajectory bit for bit.
        single = run_trajectory(make_conv_cluster(0, seed=4), "bsp")
        cluster = make_conv_cluster(2, seed=4)
        cluster.pool.set_use_executor(False)
        pooled = run_trajectory(cluster, "bsp")
        assert_identical(single, pooled)


@pytest.mark.pool
class TestTransformerDropoutTrajectories:
    def test_pool_matches_single_with_active_dropout(self):
        # Active dropout (shared per-step stream) across process boundaries:
        # masks are derived from the seed alone, so the pooled trajectory is
        # bit-identical to the single-process batched one.
        single = run_trajectory(make_lm_cluster(0, seed=1), "bsp")
        pooled = run_trajectory(make_lm_cluster(3, seed=1), "bsp")
        assert_identical(single, pooled)

    def test_selsync_pool_matches_single_with_active_dropout(self):
        single = run_trajectory(make_lm_cluster(0, seed=6), "selsync")
        pooled = run_trajectory(make_lm_cluster(2, seed=6), "selsync")
        assert_identical(single, pooled)

    def test_direct_worker_step_works_before_any_trainer_step(self):
        # The stream is armed at cluster construction, so public per-worker
        # entry points (train_step / compute_gradients_flat) keep working in
        # training mode with active dropout, as they did pre-stream.
        with make_lm_cluster(0, seed=8) as cluster:
            loss = cluster.workers[0].train_step(lr=0.1)
            assert np.isfinite(loss)


@pytest.mark.pool
class TestSelSyncDecisionsParity:
    def test_sync_step_indices_match(self):
        def sync_indices(cluster):
            trainer = make_trainer("selsync", cluster)
            try:
                for _ in range(STEPS):
                    trainer.train_step()
                    trainer.global_step += 1
                    cluster.global_step = trainer.global_step
                return list(trainer.sync_step_indices), trainer.sync_steps
            finally:
                cluster.close()

        assert sync_indices(make_small_cluster(num_workers=4, seed=9)) == sync_indices(
            make_small_cluster(num_workers=4, seed=9, pool_workers=2)
        )
