"""Crash-path contract of the replica pool, across start methods.

A child process dying mid-step must surface as :class:`PoolCrashError`
(never a hang), the parent must keep the shared state intact, cleanup must
unlink every shared-memory segment, and a *fresh* pool must come up cleanly
afterwards — for both the fork and spawn start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.parallel.pool import PoolCrashError
from repro.parallel.shm import SharedMatrixStorage
from tests.conftest import make_small_cluster

pytestmark = [pytest.mark.pool, pytest.mark.faults]

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


@pytest.mark.parametrize("start_method", START_METHODS)
class TestCrashAcrossStartMethods:
    def test_child_death_raises_unlinks_and_next_pool_works(self, start_method):
        cluster = make_small_cluster(
            num_workers=4, pool_workers=2, pool_start_method=start_method
        )
        handle = cluster._shared_storage.handle
        params_before = cluster.matrix.params.copy()

        victim = cluster.pool._processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        with pytest.raises(PoolCrashError, match="died"):
            cluster.compute_gradients_all([w.next_batch() for w in cluster.workers])
        assert cluster.pool.closed
        # Shared state survives the crash: the parent's matrix is untouched.
        np.testing.assert_array_equal(cluster.matrix.params, params_before)

        cluster.close()
        # Cleanup unlinked both segments: attaching by name must fail.
        with pytest.raises(FileNotFoundError):
            SharedMatrixStorage.attach(handle)

        # A subsequent pool-backed cluster (same config, fresh segments)
        # comes up and computes a full step.
        fresh = make_small_cluster(
            num_workers=4, pool_workers=2, pool_start_method=start_method
        )
        try:
            losses = fresh.compute_gradients_all(
                [w.next_batch() for w in fresh.workers]
            )
            assert len(losses) == 4
            assert all(np.isfinite(loss) for loss in losses)
            assert all(fresh.matrix.grads[i].any() for i in range(4))
        finally:
            fresh.close()

    def test_crash_error_is_a_runtime_error(self, start_method):
        assert issubclass(PoolCrashError, RuntimeError)
        cluster = make_small_cluster(
            num_workers=2, pool_workers=2, pool_start_method=start_method
        )
        victim = cluster.pool._processes[1]
        os.kill(victim.pid, signal.SIGKILL)
        try:
            with pytest.raises(RuntimeError):
                cluster.compute_gradients_all(
                    [w.next_batch() for w in cluster.workers]
                )
        finally:
            cluster.close()
