"""Tests for the network model and topology cost models."""

import numpy as np
import pytest

from repro.comm.cost_model import (
    CommunicationCostModel,
    allgather_bits_seconds,
    ps_sync_seconds,
    ring_allreduce_seconds,
    tree_allreduce_seconds,
)
from repro.comm.network import NetworkModel


class TestNetworkModel:
    def test_bytes_per_second_from_gbps(self):
        net = NetworkModel(bandwidth_gbps=8.0, latency_s=0.0, per_message_overhead_s=0.0)
        assert net.bytes_per_second == 1e9

    def test_transfer_time_scales_with_bytes(self):
        net = NetworkModel(bandwidth_gbps=1.0, latency_s=0.0, per_message_overhead_s=0.0)
        assert net.transfer_seconds(2e9) == 2 * net.transfer_seconds(1e9)

    def test_latency_added_per_message(self):
        net = NetworkModel(bandwidth_gbps=1.0, latency_s=0.01, per_message_overhead_s=0.0)
        one = net.transfer_seconds(0.0, num_messages=1)
        five = net.transfer_seconds(0.0, num_messages=5)
        np.testing.assert_allclose(five, 5 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1.0)
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.transfer_seconds(-10)
        with pytest.raises(ValueError):
            net.transfer_seconds(10, num_messages=0)


class TestTopologyCosts:
    net = NetworkModel(bandwidth_gbps=5.0)

    def test_single_worker_costs_nothing(self):
        for fn in (ps_sync_seconds, ring_allreduce_seconds, tree_allreduce_seconds):
            assert fn(1e8, 1, self.net) == 0.0
        assert allgather_bits_seconds(1, self.net) == 0.0

    def test_ps_cost_grows_with_workers(self):
        """PS-side contention makes synchronization more expensive at scale."""
        t4 = ps_sync_seconds(1e8, 4, self.net)
        t8 = ps_sync_seconds(1e8, 8, self.net)
        t16 = ps_sync_seconds(1e8, 16, self.net)
        assert t4 < t8 < t16

    def test_ps_contention_parameter(self):
        base = ps_sync_seconds(1e8, 16, self.net, contention=0.0)
        contended = ps_sync_seconds(1e8, 16, self.net, contention=0.1)
        assert contended > base
        with pytest.raises(ValueError):
            ps_sync_seconds(1e8, 16, self.net, contention=-0.1)

    def test_ring_cost_nearly_constant_in_workers(self):
        t4 = ring_allreduce_seconds(5e8, 4, self.net)
        t16 = ring_allreduce_seconds(5e8, 16, self.net)
        assert t16 < 1.5 * t4

    def test_ring_cheaper_than_ps_for_large_clusters(self):
        t_ps = ps_sync_seconds(5e8, 16, self.net)
        t_ring = ring_allreduce_seconds(5e8, 16, self.net)
        assert t_ring < t_ps

    def test_tree_scales_logarithmically(self):
        t4 = tree_allreduce_seconds(1e8, 4, self.net)
        t16 = tree_allreduce_seconds(1e8, 16, self.net)
        assert t16 / t4 == pytest.approx(2.0, rel=0.1)

    def test_flags_allgather_is_orders_cheaper_than_model_sync(self):
        """The paper measures the flags op at 2-4 ms vs seconds for a sync."""
        flags = allgather_bits_seconds(16, self.net)
        sync = ps_sync_seconds(170e6, 16, self.net)  # ResNet101-sized model
        assert flags < sync / 100

    def test_larger_model_costs_more(self):
        small = ps_sync_seconds(52e6, 16, self.net)   # Transformer-sized
        large = ps_sync_seconds(507e6, 16, self.net)  # VGG11-sized
        assert large > small

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ps_sync_seconds(-1, 4, self.net)
        with pytest.raises(ValueError):
            ring_allreduce_seconds(-1, 4, self.net)


class TestCommunicationCostModel:
    def test_topology_dispatch(self):
        for topology in ("ps", "ring", "tree"):
            model = CommunicationCostModel(topology=topology)
            assert model.sync_seconds(1e8, 8) > 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            CommunicationCostModel(topology="mesh")

    def test_ssp_push_pull_cheaper_than_full_sync(self):
        model = CommunicationCostModel(topology="ps")
        assert model.ssp_push_pull_seconds(1e8) < model.sync_seconds(1e8, 16)

    def test_p2p_seconds_positive(self):
        model = CommunicationCostModel()
        assert model.p2p_seconds(1e6) > 0
