"""Tests for the network model and topology cost models."""

import numpy as np
import pytest

from repro.comm.cost_model import (
    CommunicationCostModel,
    allgather_bits_seconds,
    ps_sync_seconds,
    ring_allreduce_seconds,
    tree_allreduce_seconds,
)
from repro.comm.network import NetworkModel


class TestNetworkModel:
    def test_bytes_per_second_from_gbps(self):
        net = NetworkModel(bandwidth_gbps=8.0, latency_s=0.0, per_message_overhead_s=0.0)
        assert net.bytes_per_second == 1e9

    def test_transfer_time_scales_with_bytes(self):
        net = NetworkModel(bandwidth_gbps=1.0, latency_s=0.0, per_message_overhead_s=0.0)
        assert net.transfer_seconds(2e9) == 2 * net.transfer_seconds(1e9)

    def test_latency_added_per_message(self):
        net = NetworkModel(bandwidth_gbps=1.0, latency_s=0.01, per_message_overhead_s=0.0)
        one = net.transfer_seconds(0.0, num_messages=1)
        five = net.transfer_seconds(0.0, num_messages=5)
        np.testing.assert_allclose(five, 5 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1.0)
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.transfer_seconds(-10)
        with pytest.raises(ValueError):
            net.transfer_seconds(10, num_messages=0)


class TestTopologyCosts:
    net = NetworkModel(bandwidth_gbps=5.0)

    def test_single_worker_costs_nothing(self):
        for fn in (ps_sync_seconds, ring_allreduce_seconds, tree_allreduce_seconds):
            assert fn(1e8, 1, self.net) == 0.0
        assert allgather_bits_seconds(1, self.net) == 0.0

    def test_ps_cost_grows_with_workers(self):
        """PS-side contention makes synchronization more expensive at scale."""
        t4 = ps_sync_seconds(1e8, 4, self.net)
        t8 = ps_sync_seconds(1e8, 8, self.net)
        t16 = ps_sync_seconds(1e8, 16, self.net)
        assert t4 < t8 < t16

    def test_ps_contention_parameter(self):
        base = ps_sync_seconds(1e8, 16, self.net, contention=0.0)
        contended = ps_sync_seconds(1e8, 16, self.net, contention=0.1)
        assert contended > base
        with pytest.raises(ValueError):
            ps_sync_seconds(1e8, 16, self.net, contention=-0.1)

    def test_ring_cost_nearly_constant_in_workers(self):
        t4 = ring_allreduce_seconds(5e8, 4, self.net)
        t16 = ring_allreduce_seconds(5e8, 16, self.net)
        assert t16 < 1.5 * t4

    def test_ring_cheaper_than_ps_for_large_clusters(self):
        t_ps = ps_sync_seconds(5e8, 16, self.net)
        t_ring = ring_allreduce_seconds(5e8, 16, self.net)
        assert t_ring < t_ps

    def test_tree_scales_logarithmically(self):
        t4 = tree_allreduce_seconds(1e8, 4, self.net)
        t16 = tree_allreduce_seconds(1e8, 16, self.net)
        assert t16 / t4 == pytest.approx(2.0, rel=0.1)

    def test_flags_allgather_is_orders_cheaper_than_model_sync(self):
        """The paper measures the flags op at 2-4 ms vs seconds for a sync."""
        flags = allgather_bits_seconds(16, self.net)
        sync = ps_sync_seconds(170e6, 16, self.net)  # ResNet101-sized model
        assert flags < sync / 100

    def test_larger_model_costs_more(self):
        small = ps_sync_seconds(52e6, 16, self.net)   # Transformer-sized
        large = ps_sync_seconds(507e6, 16, self.net)  # VGG11-sized
        assert large > small

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ps_sync_seconds(-1, 4, self.net)
        with pytest.raises(ValueError):
            ring_allreduce_seconds(-1, 4, self.net)


class TestCommunicationCostModel:
    def test_topology_dispatch(self):
        for topology in ("ps", "ring", "tree"):
            model = CommunicationCostModel(topology=topology)
            assert model.sync_seconds(1e8, 8) > 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            CommunicationCostModel(topology="mesh")

    def test_ssp_push_pull_cheaper_than_full_sync(self):
        model = CommunicationCostModel(topology="ps")
        assert model.ssp_push_pull_seconds(1e8) < model.sync_seconds(1e8, 16)

    def test_p2p_seconds_positive(self):
        model = CommunicationCostModel()
        assert model.p2p_seconds(1e6) > 0


class TestTransportDtype:
    def test_default_wire_scale_is_one(self):
        assert CommunicationCostModel().wire_scale == 1.0

    @pytest.mark.parametrize("topology", ["ps", "ring", "tree"])
    def test_float16_sync_equals_half_payload_on_float32_wire(self, topology):
        # A float16 wire must price exactly like shipping half the bytes on
        # the canonical wire — the scale applies before latency terms.
        fp32 = CommunicationCostModel(topology=topology)
        fp16 = CommunicationCostModel(topology=topology, transport_dtype="float16")
        assert fp16.wire_scale == 0.5
        np.testing.assert_allclose(
            fp16.sync_seconds(1e8, 8), fp32.sync_seconds(0.5e8, 8)
        )

    def test_float64_wire_doubles_payload(self):
        fp32 = CommunicationCostModel(topology="ps")
        fp64 = CommunicationCostModel(topology="ps", transport_dtype="float64")
        np.testing.assert_allclose(
            fp64.sync_seconds(1e8, 8), fp32.sync_seconds(2e8, 8)
        )

    def test_ssp_push_pull_scales_with_transport(self):
        fp32 = CommunicationCostModel(topology="ps")
        fp16 = CommunicationCostModel(topology="ps", transport_dtype="float16")
        np.testing.assert_allclose(
            fp16.ssp_push_pull_seconds(1e8), fp32.ssp_push_pull_seconds(0.5e8)
        )

    def test_flags_and_p2p_not_scaled(self):
        # Status bits and raw point-to-point payloads are not tensor
        # payloads; the transport dtype must leave them untouched.
        fp32 = CommunicationCostModel(topology="ps")
        fp16 = CommunicationCostModel(topology="ps", transport_dtype="float16")
        assert fp16.flags_seconds(8) == fp32.flags_seconds(8)
        assert fp16.p2p_seconds(1e6) == fp32.p2p_seconds(1e6)

    def test_unknown_transport_dtype_rejected(self):
        with pytest.raises(TypeError):
            CommunicationCostModel(transport_dtype="int8")

    def test_scale_transport_false_skips_the_wire_scale(self):
        # Pre-priced payloads (the compression layer's) must charge the same
        # regardless of the configured transport dtype.
        fp32 = CommunicationCostModel(topology="ps")
        fp16 = CommunicationCostModel(topology="ps", transport_dtype="float16")
        assert fp16.sync_seconds(1e8, 8, scale_transport=False) == fp32.sync_seconds(
            1e8, 8
        )

    def test_wire_bytes_helper_prices_compute_and_transport_dtypes(self):
        from repro.comm.cost_model import wire_bytes

        assert wire_bytes(100) == 400.0
        assert wire_bytes(100, dtype_bytes=2) == 200.0
        # Compute dtypes ship on the canonical float32 wire...
        assert wire_bytes(100, dtype="float64") == 400.0
        # ...while an explicit transport dtype prices its native width.
        assert wire_bytes(100, transport_dtype="float16") == 200.0
        assert wire_bytes(100, transport_dtype="float64") == 800.0
