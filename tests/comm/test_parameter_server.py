"""Tests for the simulated parameter server."""

import numpy as np
import pytest

from repro.comm.parameter_server import ParameterServer


@pytest.fixture
def ps():
    state = {"w": np.zeros((2, 2)), "b": np.zeros(3)}
    return ParameterServer(state, num_workers=4)


class TestPullPush:
    def test_pull_returns_copy(self, ps):
        state = ps.pull()
        state["w"][...] = 5.0
        np.testing.assert_array_equal(ps.pull()["w"], 0.0)

    def test_state_bytes(self, ps):
        assert ps.state_bytes() == (4 + 3) * 4

    def test_pull_invalid_worker(self, ps):
        with pytest.raises(ValueError):
            ps.pull(worker_id=9)


class TestParameterAggregation:
    def test_average_of_pushed_states(self, ps):
        pushed = {
            0: {"w": np.full((2, 2), 2.0), "b": np.zeros(3)},
            1: {"w": np.full((2, 2), 4.0), "b": np.full(3, 6.0)},
        }
        new_state = ps.aggregate_parameters(pushed)
        np.testing.assert_allclose(new_state["w"], 3.0)
        np.testing.assert_allclose(new_state["b"], 3.0)

    def test_version_and_counters_advance(self, ps):
        ps.aggregate_parameters({0: ps.pull()})
        assert ps.version == 1
        assert ps.aggregations == 1
        assert ps.total_pushed_bytes > 0

    def test_missing_parameter_rejected(self, ps):
        with pytest.raises(KeyError):
            ps.aggregate_parameters({0: {"w": np.zeros((2, 2))}})

    def test_shape_mismatch_rejected(self, ps):
        with pytest.raises(ValueError):
            ps.aggregate_parameters({0: {"w": np.zeros((3, 3)), "b": np.zeros(3)}})

    def test_empty_push_rejected(self, ps):
        with pytest.raises(ValueError):
            ps.aggregate_parameters({})


class TestGradientAggregation:
    def test_returns_average_without_touching_state(self, ps):
        grads = {
            0: {"w": np.full((2, 2), 1.0), "b": np.ones(3)},
            1: {"w": np.full((2, 2), 3.0), "b": np.ones(3)},
        }
        averaged = ps.aggregate_gradients(grads)
        np.testing.assert_allclose(averaged["w"], 2.0)
        np.testing.assert_array_equal(ps.pull()["w"], 0.0)  # state unchanged

    def test_set_state_overwrites(self, ps):
        ps.set_state({"w": np.full((2, 2), 7.0), "b": np.full(3, 7.0)})
        np.testing.assert_allclose(ps.pull()["w"], 7.0)


class TestAsyncSSPPath:
    def test_delta_applied_immediately(self, ps):
        delta = {"w": np.full((2, 2), 0.5), "b": np.zeros(3)}
        new_state = ps.async_apply_delta(0, delta)
        np.testing.assert_allclose(new_state["w"], 0.5)

    def test_clock_and_staleness_tracking(self, ps):
        delta = {"w": np.zeros((2, 2)), "b": np.zeros(3)}
        for _ in range(3):
            ps.async_apply_delta(0, delta)
        assert ps.staleness(0) == 3
        assert ps.staleness(1) == 0
        assert ps.min_clock() == 0

    def test_updates_compose_across_workers(self, ps):
        delta = {"w": np.ones((2, 2)), "b": np.zeros(3)}
        ps.async_apply_delta(0, delta)
        ps.async_apply_delta(1, delta)
        np.testing.assert_allclose(ps.pull()["w"], 2.0)

    def test_invalid_worker_rejected(self, ps):
        with pytest.raises(ValueError):
            ps.async_apply_delta(7, {"w": np.zeros((2, 2)), "b": np.zeros(3)})
        with pytest.raises(ValueError):
            ps.staleness(7)


class TestConstruction:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParameterServer({"w": np.zeros(2)}, num_workers=0)

    def test_initial_state_copied(self):
        source = {"w": np.zeros(2)}
        ps = ParameterServer(source, num_workers=1)
        source["w"][0] = 9.0
        np.testing.assert_array_equal(ps.pull()["w"], 0.0)
