"""Tests for the in-process collective backend."""

import numpy as np
import pytest

from repro.comm.backend import InProcessBackend


class TestAllreduce:
    def test_mean_matches_numpy(self):
        backend = InProcessBackend(3)
        arrays = [np.full(4, float(i)) for i in range(3)]
        out = backend.allreduce(arrays, op="mean")
        for result in out:
            np.testing.assert_allclose(result, 1.0)

    def test_sum_and_max_ops(self):
        backend = InProcessBackend(2)
        arrays = [np.array([1.0, 5.0]), np.array([3.0, 2.0])]
        np.testing.assert_allclose(backend.allreduce(arrays, op="sum")[0], [4.0, 7.0])
        np.testing.assert_allclose(backend.allreduce(arrays, op="max")[0], [3.0, 5.0])

    def test_every_rank_receives_identical_result(self):
        backend = InProcessBackend(4)
        arrays = [np.random.default_rng(i).standard_normal(8) for i in range(4)]
        out = backend.allreduce(arrays)
        for result in out[1:]:
            np.testing.assert_array_equal(result, out[0])

    def test_unknown_op_rejected(self):
        backend = InProcessBackend(2)
        with pytest.raises(ValueError):
            backend.allreduce([np.zeros(2), np.zeros(2)], op="median")

    def test_wrong_rank_count_rejected(self):
        backend = InProcessBackend(3)
        with pytest.raises(ValueError):
            backend.allreduce([np.zeros(2)] * 2)

    def test_shape_mismatch_rejected(self):
        backend = InProcessBackend(2)
        with pytest.raises(ValueError):
            backend.allreduce([np.zeros(2), np.zeros(3)])

    def test_bytes_accounted(self):
        backend = InProcessBackend(4)
        backend.allreduce([np.zeros(100)] * 4)
        assert backend.record.total_bytes > 0
        assert backend.record.calls["allreduce"] == 1


class TestAllgather:
    def test_gathers_all_ranks(self):
        backend = InProcessBackend(3)
        out = backend.allgather([np.full(2, i) for i in range(3)])
        assert out[0].shape == (3, 2)
        np.testing.assert_array_equal(out[0][2], 2.0)

    def test_allgather_bits_flags_semantics(self):
        """Alg. 1 line 12: every worker learns every other worker's sync bit."""
        backend = InProcessBackend(4)
        flags = backend.allgather_bits([0, 1, 0, 0])
        assert flags.tolist() == [0, 1, 0, 0]
        assert bool(flags.any()) is True

    def test_allgather_bits_all_zero(self):
        backend = InProcessBackend(4)
        flags = backend.allgather_bits([0, 0, 0, 0])
        assert not flags.any()

    def test_allgather_bits_volume_is_tiny(self):
        backend = InProcessBackend(16)
        backend.allgather_bits([1] * 16)
        assert backend.record.bytes_by_op["allgather_bits"] < 100

    def test_allgather_bits_wrong_count(self):
        backend = InProcessBackend(4)
        with pytest.raises(ValueError):
            backend.allgather_bits([1, 0])


class TestBroadcastReduceGather:
    def test_broadcast_copies_to_all(self):
        backend = InProcessBackend(3)
        out = backend.broadcast(np.arange(4.0), root=0)
        assert len(out) == 3
        out[1][0] = 99.0
        assert out[0][0] == 0.0  # copies, not views

    def test_broadcast_invalid_root(self):
        backend = InProcessBackend(2)
        with pytest.raises(ValueError):
            backend.broadcast(np.zeros(2), root=5)

    def test_reduce_to_root(self):
        backend = InProcessBackend(2)
        result = backend.reduce([np.array([2.0]), np.array([4.0])], op="mean")
        np.testing.assert_allclose(result, 3.0)

    def test_gather_returns_all(self):
        backend = InProcessBackend(2)
        out = backend.gather([np.array([1.0]), np.array([2.0])])
        assert len(out) == 2


class TestAllreduceTree:
    def test_tree_mean_matches_manual(self):
        backend = InProcessBackend(2)
        trees = [
            {"w": np.array([1.0, 3.0]), "b": np.array([0.0])},
            {"w": np.array([3.0, 5.0]), "b": np.array([2.0])},
        ]
        out = backend.allreduce_tree(trees)
        np.testing.assert_allclose(out[0]["w"], [2.0, 4.0])
        np.testing.assert_allclose(out[1]["b"], [1.0])

    def test_tree_structure_mismatch_rejected(self):
        backend = InProcessBackend(2)
        with pytest.raises(ValueError):
            backend.allreduce_tree([
                {"w": np.zeros(2)},
                {"w": np.zeros(3)},
            ])


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        backend = InProcessBackend(3)
        backend.send(0, 2, {"payload": 42}, num_bytes=10)
        sender, payload = backend.recv(2)
        assert sender == 0 and payload["payload"] == 42

    def test_recv_filters_by_source(self):
        backend = InProcessBackend(3)
        backend.send(0, 2, "from0")
        backend.send(1, 2, "from1")
        sender, payload = backend.recv(2, src=1)
        assert sender == 1 and payload == "from1"
        assert backend.pending(2) == 1

    def test_recv_empty_mailbox_raises(self):
        backend = InProcessBackend(2)
        with pytest.raises(LookupError):
            backend.recv(0)

    def test_send_invalid_ranks(self):
        backend = InProcessBackend(2)
        with pytest.raises(ValueError):
            backend.send(0, 5, "x")

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            InProcessBackend(0)


class TestTransportDtypeAccounting:
    def test_default_matches_class_constant(self):
        backend = InProcessBackend(2)
        assert backend.dtype_bytes == InProcessBackend.DTYPE_BYTES == 4
        assert backend.transport_dtype is None

    def test_float16_halves_recorded_bytes(self):
        fp32 = InProcessBackend(4)
        fp16 = InProcessBackend(4, transport_dtype="float16")
        arrays = [np.ones(16) for _ in range(4)]
        fp32.allreduce(arrays)
        fp16.allreduce(arrays)
        assert fp16.record.total_bytes == fp32.record.total_bytes / 2

    def test_float16_does_not_cast_the_arrays(self):
        backend = InProcessBackend(2, transport_dtype="float16")
        out = backend.allreduce([np.ones(8), np.zeros(8)])
        # Only accounting changes; the arithmetic stays in the compute dtype.
        assert out[0].dtype == np.float64
        np.testing.assert_allclose(out[0], 0.5)

    def test_broadcast_and_matrix_allreduce_use_transport_bytes(self):
        backend = InProcessBackend(3, transport_dtype="float16")
        backend.broadcast(np.ones(10))
        assert backend.record.bytes_by_op["broadcast"] == 10 * 2 * 2
        backend.allreduce_matrix(np.ones((3, 5)))
        assert backend.record.bytes_by_op["allreduce"] == 2.0 * 5 * 2 * 3

    def test_flag_bits_unaffected_by_transport(self):
        fp32 = InProcessBackend(4)
        fp16 = InProcessBackend(4, transport_dtype="float16")
        fp32.allgather_bits([1, 0, 1, 0])
        fp16.allgather_bits([1, 0, 1, 0])
        assert fp16.record.total_bytes == fp32.record.total_bytes

    def test_unknown_transport_dtype_rejected(self):
        with pytest.raises(TypeError):
            InProcessBackend(2, transport_dtype="int8")
