"""Static validation of the documentation site.

CI builds the site with ``mkdocs build --strict`` (every warning fails the
build), but mkdocs is not a test dependency — these checks statically
validate the same failure surface so docs breakage is caught by tier-1
without installing the docs toolchain:

* every file referenced in the ``mkdocs.yml`` nav exists under ``docs/``;
* every ``::: identifier`` directive in the reference pages imports (module)
  or resolves (attribute) against the installed package;
* every relative Markdown link between docs pages points at a real file;
* every ``repro`` subsystem has an API reference page wired into the nav.
"""

from __future__ import annotations

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


def nav_files(node) -> list:
    """Flatten the mkdocs nav tree into its file paths."""
    files = []
    if isinstance(node, str):
        files.append(node)
    elif isinstance(node, list):
        for item in node:
            files.extend(nav_files(item))
    elif isinstance(node, dict):
        for value in node.values():
            files.extend(nav_files(value))
    return files


def load_config() -> dict:
    return yaml.safe_load(MKDOCS_YML.read_text())


class TestMkdocsConfig:
    def test_config_parses(self):
        config = load_config()
        assert config["site_name"]
        assert "nav" in config

    def test_every_nav_entry_exists(self):
        for rel in nav_files(load_config()["nav"]):
            assert (DOCS_DIR / rel).is_file(), f"nav references missing file {rel}"

    def test_mkdocstrings_configured_for_src_layout(self):
        config = load_config()
        plugins = config["plugins"]
        mkdocstrings = next(
            p["mkdocstrings"] for p in plugins
            if isinstance(p, dict) and "mkdocstrings" in p
        )
        assert "src" in mkdocstrings["handlers"]["python"]["paths"]


class TestReferencePages:
    def identifiers(self):
        for page in sorted((DOCS_DIR / "reference").glob("*.md")):
            for line in page.read_text().splitlines():
                match = re.match(r"^::: (\S+)$", line)
                if match:
                    yield page.name, match.group(1)

    def test_every_identifier_resolves(self):
        checked = 0
        for page, identifier in self.identifiers():
            try:
                importlib.import_module(identifier)
            except ImportError:
                module_name, _, attr = identifier.rpartition(".")
                module = importlib.import_module(module_name)
                assert hasattr(module, attr), (
                    f"{page}: identifier {identifier!r} does not resolve"
                )
            checked += 1
        assert checked > 0

    def test_every_subsystem_has_a_reference_page(self):
        import repro

        subsystems = {
            name for _, name, ispkg in pkgutil.iter_modules(repro.__path__) if ispkg
        }
        pages = {p.stem for p in (DOCS_DIR / "reference").glob("*.md")}
        missing = subsystems - pages
        assert not missing, f"subsystems without a reference page: {sorted(missing)}"
        nav_refs = {
            Path(rel).stem
            for rel in nav_files(load_config()["nav"])
            if rel.startswith("reference/")
        }
        assert subsystems <= nav_refs, "reference pages exist but are not in the nav"


class TestInternalLinks:
    LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")

    def test_relative_markdown_links_resolve(self):
        checked = 0
        for page in DOCS_DIR.rglob("*.md"):
            for target in self.LINK.findall(page.read_text()):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                resolved = (page.parent / target).resolve()
                assert resolved.exists(), f"{page.relative_to(REPO_ROOT)}: broken link {target}"
                checked += 1
        assert checked > 0
