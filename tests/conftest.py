"""Shared fixtures and numerical-gradient helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import (
    make_classification_dataset,
    make_classification_splits,
    make_sequence_dataset,
)
from repro.nn.losses import cross_entropy_with_logits
from repro.utils.flatten import flatten_arrays, unflatten_vector


# --------------------------------------------------------------------------- #
# numerical gradient checking
# --------------------------------------------------------------------------- #
def analytic_gradients(model, inputs, targets):
    """Backprop gradients of the mean cross-entropy for a model."""
    model.zero_grad()
    logits = model.forward(inputs)
    loss, dlogits = cross_entropy_with_logits(logits, targets)
    model.backward(dlogits)
    return loss, model.gradient_dict()


def numerical_gradients(model, inputs, targets, epsilon: float = 1e-5):
    """Central finite-difference gradients of the mean cross-entropy."""
    state = model.state_dict()
    flat, spec = flatten_arrays(state)

    def loss_at(vec):
        model.load_state_dict(unflatten_vector(vec, spec))
        logits = model.forward(inputs)
        loss, _ = cross_entropy_with_logits(logits, targets)
        return loss

    grads = np.zeros_like(flat)
    for i in range(flat.size):
        bump = np.zeros_like(flat)
        bump[i] = epsilon
        grads[i] = (loss_at(flat + bump) - loss_at(flat - bump)) / (2 * epsilon)
    model.load_state_dict(state)
    return unflatten_vector(grads, spec)


def assert_gradients_close(model, inputs, targets, rtol=1e-4, atol=1e-6):
    """Assert analytic and numerical gradients agree for every parameter."""
    _, analytic = analytic_gradients(model, inputs, targets)
    numeric = numerical_gradients(model, inputs, targets)
    for name in analytic:
        np.testing.assert_allclose(
            analytic[name], numeric[name], rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for parameter {name!r}",
        )


# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_classification_data():
    """Small, well-separated 4-class dataset for fast end-to-end tests."""
    return make_classification_dataset(
        num_samples=256, num_classes=4, input_dim=16, class_sep=4.0, noise=0.6, seed=0
    )


@pytest.fixture
def tiny_classification_test_data():
    return make_classification_dataset(
        num_samples=128, num_classes=4, input_dim=16, class_sep=4.0, noise=0.6, seed=1
    )


@pytest.fixture
def tiny_sequence_data():
    return make_sequence_dataset(num_tokens=2000, vocab_size=20, bptt=8, seed=0)


# --------------------------------------------------------------------------- #
# small-cluster factory used by algorithm and integration tests
# --------------------------------------------------------------------------- #
def make_small_cluster(
    num_workers: int = 4,
    batch_size: int = 16,
    seed: int = 0,
    momentum: float = 0.0,
    lr: float = 0.1,
    partitioner=None,
    num_classes: int = 4,
    train_samples: int = 256,
    width: int = 24,
    **config_kwargs,
):
    """Build a small MLP classification cluster for fast algorithm tests.

    Extra keyword arguments flow into :class:`ClusterConfig` (e.g.
    ``dtype="float32"``, ``transport_dtype="float16"``).
    """
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.partition import SelSyncPartitioner
    from repro.nn.models import MLP
    from repro.optim.sgd import SGD

    train, test = make_classification_splits(
        train_samples, max(train_samples // 2, 4 * num_classes), num_classes, 16,
        class_sep=4.0, noise=0.6, seed=seed,
    )
    config = ClusterConfig(
        num_workers=num_workers, batch_size=batch_size, seed=seed, **config_kwargs
    )
    return SimulatedCluster(
        model_factory=lambda rng: MLP((16, width, num_classes), rng=rng),
        optimizer_factory=lambda m: SGD(m, lr=lr, momentum=momentum),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=partitioner or SelSyncPartitioner(seed=seed),
    )


@pytest.fixture
def small_cluster_factory():
    return make_small_cluster
