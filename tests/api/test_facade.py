"""Tests for the unified repro.api façade: requests, aliases, execution."""

import pytest

from repro.api import (
    ApiError,
    KINDS,
    RunCancelled,
    RunRequest,
    apply_aliases,
    request_from_action,
    run,
)
from repro.harness.experiment import run_experiment
from repro.scenarios import ScenarioError, run_scenario


class TestRunRequest:
    def test_kind_is_validated(self):
        with pytest.raises(ApiError, match="unknown request kind"):
            RunRequest(kind="magic")
        assert set(KINDS) == {"experiment", "sweep", "comparison", "throughput", "scenario"}

    def test_per_kind_required_fields(self):
        with pytest.raises(ApiError, match="requires 'workload'"):
            RunRequest(kind="experiment", algorithm="bsp")
        with pytest.raises(ApiError, match="requires 'grid'"):
            RunRequest(kind="sweep", workload="deep_mlp", algorithm="selsync")
        with pytest.raises(ApiError, match="methods"):
            RunRequest(kind="comparison")
        with pytest.raises(ApiError, match="workloads"):
            RunRequest(kind="throughput")
        with pytest.raises(ApiError, match="requires 'scenario'"):
            RunRequest(kind="scenario")

    def test_kinds_reject_foreign_fields(self):
        with pytest.raises(ApiError, match="does not accept"):
            RunRequest(kind="experiment", workload="resnet101", algorithm="bsp",
                       grid={"delta": [0.1]})
        with pytest.raises(ApiError, match="does not accept"):
            RunRequest(kind="scenario", scenario="quickstart", workload="resnet101")
        with pytest.raises(ApiError, match="does not accept"):
            RunRequest(kind="throughput", options={"workloads": ["resnet101"]},
                       iterations=5)

    def test_run_settings_bounds(self):
        with pytest.raises(ApiError, match="num_workers"):
            RunRequest(kind="experiment", workload="resnet101", algorithm="bsp",
                       num_workers=0)
        with pytest.raises(ApiError, match="seed"):
            RunRequest(kind="experiment", workload="resnet101", algorithm="bsp", seed=-1)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ApiError, match="unknown request fields"):
            RunRequest.from_dict({"kind": "experiment", "workload": "resnet101",
                                  "algorithm": "bsp", "turbo": True})

    def test_to_dict_round_trips(self):
        request = RunRequest(kind="sweep", workload="deep_mlp", algorithm="selsync",
                             grid={"delta": [0.1, 0.3]}, num_workers=2, iterations=6)
        clone = RunRequest.from_dict(request.to_dict())
        assert clone == request

    def test_deep_validation_catches_scenario_level_errors(self):
        request = RunRequest(kind="sweep", workload="deep_mlp", algorithm="selsync",
                             grid={"seed": [1, 2]})  # reserved run setting
        with pytest.raises((ApiError, ScenarioError)):
            request.validate()
        with pytest.raises((ApiError, ScenarioError), match="stacked"):
            RunRequest(kind="scenario", scenario="table1-comparison",
                       stacked=True).validate()
        with pytest.raises((ApiError, ScenarioError), match="analytic"):
            RunRequest(kind="scenario", scenario="fig1a-throughput",
                       iterations=5).validate()


class TestDeprecatedAliases:
    def test_aliases_warn_and_canonicalize(self):
        with pytest.warns(DeprecationWarning, match="workers"):
            out = apply_aliases({"workers": 4})
        assert out == {"num_workers": 4}
        with pytest.warns(DeprecationWarning, match="algo"):
            assert apply_aliases({"algo": "bsp"}) == {"algorithm": "bsp"}
        with pytest.warns(DeprecationWarning, match="fixed"):
            assert apply_aliases({"fixed": {"delta": 0.1}}) == {"params": {"delta": 0.1}}

    def test_alias_plus_canonical_is_ambiguous(self):
        with pytest.raises(ApiError, match="use 'num_workers' only"):
            apply_aliases({"workers": 4, "num_workers": 2})

    def test_run_kwargs_accept_aliases(self):
        with pytest.warns(DeprecationWarning):
            request = RunRequest.from_dict({
                "kind": "experiment", "workload": "resnet101", "algo": "bsp",
                "workers": 2, "iterations": 4,
            })
        assert request.algorithm == "bsp" and request.num_workers == 2


class TestRequestFromAction:
    def test_scenario_action_maps_name(self):
        request = request_from_action("scenario", {"name": "quickstart", "iterations": 9})
        assert request.kind == "scenario"
        assert request.scenario == "quickstart"
        assert request.iterations == 9

    def test_scenario_action_requires_name(self):
        with pytest.raises(ApiError, match="name"):
            request_from_action("scenario", {"iterations": 9})

    def test_extra_keys_fold_into_options(self):
        request = request_from_action("comparison", {
            "methods": {"a": ["bsp", {}]}, "workloads": ["resnet101"],
            "iterations": 6, "use_convergence": False,
        })
        assert request.iterations == 6
        assert request.options == {
            "methods": {"a": ["bsp", {}]},
            "workloads": ["resnet101"],
            "use_convergence": False,
        }

    def test_unknown_action_rejected(self):
        with pytest.raises(ApiError, match="unknown action"):
            request_from_action("frobnicate", {})


class TestRunExecution:
    def test_experiment_kind_matches_run_experiment(self):
        request = RunRequest(kind="experiment", workload="resnet101", algorithm="selsync",
                             params={"delta": 0.3}, num_workers=2, iterations=6,
                             seed=3, eval_every=2)
        out = run(request)
        direct = run_experiment("resnet101", "selsync", num_workers=2, iterations=6,
                                seed=3, eval_every=2, delta=0.3)
        assert out.kind == "experiment"
        assert out.label == direct.algorithm
        assert len(out.records) == 1
        record = out.records[0]
        assert record["params"] == {"delta": 0.3}
        assert record["metrics"]["final_loss"] == direct.result.final_loss
        assert record["metrics"]["best_metric"] == direct.result.best_metric
        assert record["metrics"]["communication_bytes"] == direct.result.communication_bytes
        assert out.results["run"].final_loss == direct.result.final_loss
        assert out.meta["eval_every"] == 2 and out.meta["seed"] == 3

    def test_scenario_kind_matches_run_scenario(self):
        out = run(RunRequest(kind="scenario", scenario="fig1a-throughput"))
        direct = run_scenario("fig1a-throughput").to_dict()
        assert [r for r in out.records] == direct["records"]
        assert out.report is not None and out.report.kind == "throughput"

    def test_sweep_kind_builds_adhoc_scenario(self):
        out = run(RunRequest(kind="sweep", workload="resnet101", algorithm="selsync",
                             grid={"delta": [0.0, 1e9]}, num_workers=2, iterations=6,
                             batch_size=8))
        assert out.kind == "sweep"
        assert [r["params"]["delta"] for r in out.records] == [0.0, 1e9]
        assert out.meta["name"] == "adhoc-sweep"

    def test_comparison_kind_defaults_baseline_to_first_method(self):
        out = run(RunRequest(kind="comparison", num_workers=2, iterations=6,
                             options={
                                 "methods": {"mine": ["selsync", {"delta": 0.3}],
                                             "bsp-ref": ["bsp", {}]},
                                 "workloads": ["resnet101"],
                                 "use_convergence": False,
                             }))
        assert len(out.records) == 2
        assert out.meta["baseline"] == "mine"

    def test_run_kwargs_shorthand(self):
        out = run(kind="throughput", options={"workloads": ["resnet101"],
                                              "worker_counts": [1, 2]})
        assert [r["params"]["workers"] for r in out.records] == [1, 2]

    def test_request_plus_kwargs_is_an_error(self):
        request = RunRequest(kind="scenario", scenario="fig1a-throughput")
        with pytest.raises(ApiError, match="not both"):
            run(request, kind="scenario")

    def test_cancel_check_aborts_before_work(self):
        request = RunRequest(kind="experiment", workload="resnet101", algorithm="bsp",
                             iterations=4, num_workers=2)
        with pytest.raises(RunCancelled):
            run(request, cancel_check=lambda: True)
        with pytest.raises(RunCancelled):
            # comparison scenarios poll between method runs; the first poll
            # fires before any training happens
            run(RunRequest(kind="scenario", scenario="quickstart"),
                cancel_check=lambda: True)

    def test_result_to_dict_is_json_ready(self):
        import json

        out = run(kind="throughput", options={"workloads": ["resnet101"]})
        payload = out.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["kind"] == "throughput"
        assert payload["records"] == out.records
