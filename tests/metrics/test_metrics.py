"""Tests for accuracy, evaluation, LSSR, throughput and convergence metrics."""

import numpy as np
import pytest

from repro.cluster.compute_model import PAPER_WORKLOADS
from repro.comm.cost_model import CommunicationCostModel
from repro.data.datasets import make_classification_splits
from repro.metrics.accuracy import accuracy, top_k_accuracy
from repro.metrics.convergence import ConvergenceDetector, better_than
from repro.metrics.evaluation import evaluate_model
from repro.metrics.lssr import LSSRTracker, communication_reduction, lssr
from repro.metrics.throughput import relative_throughput, scaling_efficiency, throughput_curve
from repro.nn.models import MLP


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.array([[10.0, 0.0], [0.0, 10.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_sequence_logits_flattened(self):
        logits = np.zeros((2, 3, 4))
        logits[..., 2] = 5.0
        targets = np.full((2, 3), 2)
        assert accuracy(logits, targets) == 1.0

    def test_top_k_contains_target(self):
        logits = np.array([[1.0, 2.0, 3.0, 4.0, 5.0]])
        assert top_k_accuracy(logits, np.array([2]), k=3) == 1.0
        assert top_k_accuracy(logits, np.array([0]), k=3) == 0.0

    def test_top_k_never_below_top_1(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((50, 10))
        targets = rng.integers(0, 10, size=50)
        assert top_k_accuracy(logits, targets, k=5) >= accuracy(logits, targets)

    def test_k_larger_than_classes_is_one(self):
        logits = np.random.default_rng(0).standard_normal((10, 3))
        assert top_k_accuracy(logits, np.zeros(10, dtype=np.int64), k=10) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(5), np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((3, 2)), np.zeros(3, dtype=np.int64), k=0)


class TestEvaluateModel:
    def test_classification_metrics_in_range(self):
        train, test = make_classification_splits(128, 64, 4, 8, seed=0)
        model = MLP((8, 16, 4), rng=np.random.default_rng(0))
        result = evaluate_model(model, test, task="classification", batch_size=32)
        assert 0.0 <= result.metric <= 1.0
        assert result.metric_name == "accuracy"
        assert result.num_samples == 64
        assert result.higher_is_better

    def test_top_k_metric_name(self):
        _, test = make_classification_splits(64, 64, 10, 8, seed=0)
        model = MLP((8, 16, 10), rng=np.random.default_rng(0))
        result = evaluate_model(model, test, top_k=5)
        assert result.metric_name == "top5_accuracy"

    def test_language_modeling_perplexity(self):
        from repro.data.datasets import make_sequence_splits
        from repro.nn.models import TransformerLM

        _, test = make_sequence_splits(600, 600, 12, bptt=6, seed=0)
        model = TransformerLM(vocab_size=12, d_model=8, num_heads=2, num_layers=1,
                              dim_feedforward=16, rng=np.random.default_rng(0))
        result = evaluate_model(model, test, task="language_modeling", batch_size=16)
        assert result.metric_name == "perplexity"
        assert result.metric > 1.0
        assert not result.higher_is_better

    def test_max_batches_limits_samples(self):
        _, test = make_classification_splits(64, 64, 4, 8, seed=0)
        model = MLP((8, 8, 4), rng=np.random.default_rng(0))
        result = evaluate_model(model, test, batch_size=16, max_batches=2)
        assert result.num_samples == 32

    def test_restores_training_mode(self):
        _, test = make_classification_splits(64, 64, 4, 8, seed=0)
        model = MLP((8, 8, 4), rng=np.random.default_rng(0))
        model.train()
        evaluate_model(model, test)
        assert model.training

    def test_invalid_task(self):
        _, test = make_classification_splits(64, 64, 4, 8, seed=0)
        model = MLP((8, 8, 4), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            evaluate_model(model, test, task="detection")


class TestLSSR:
    def test_eqn4(self):
        assert lssr(90, 10) == pytest.approx(0.9)
        assert lssr(0, 50) == 0.0
        assert lssr(50, 0) == 1.0
        assert lssr(0, 0) == 0.0

    def test_communication_reduction(self):
        """LSSR 0.9 means a 10x communication reduction over BSP."""
        assert communication_reduction(0.9) == pytest.approx(10.0)
        assert communication_reduction(0.0) == 1.0
        assert communication_reduction(1.0) == float("inf")

    def test_tracker_counts(self):
        tracker = LSSRTracker()
        tracker.record_local(8)
        tracker.record_sync(2)
        assert tracker.value == pytest.approx(0.8)
        assert tracker.total_steps == 10
        assert tracker.reduction_factor == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            lssr(-1, 5)
        with pytest.raises(ValueError):
            communication_reduction(1.5)
        tracker = LSSRTracker()
        with pytest.raises(ValueError):
            tracker.record_local(-1)


class TestThroughput:
    comm = CommunicationCostModel(topology="ps")

    def test_single_worker_is_one(self):
        spec = PAPER_WORKLOADS["resnet101"]
        assert relative_throughput(spec, 1, 32, self.comm) == pytest.approx(1.0)

    def test_sublinear_scaling(self):
        """Fig. 1a: relative throughput grows far slower than the worker count."""
        spec = PAPER_WORKLOADS["resnet101"]
        t16 = relative_throughput(spec, 16, 32, self.comm)
        assert 1.0 < t16 < 8.0

    def test_larger_model_scales_worse(self):
        """VGG11 (507 MB) scales worse than the Transformer (52 MB)."""
        t_vgg = relative_throughput(PAPER_WORKLOADS["vgg11"], 8, 32, self.comm)
        t_tr = relative_throughput(PAPER_WORKLOADS["transformer"], 8, 20, self.comm)
        assert t_vgg < t_tr

    def test_scaling_efficiency_below_one(self):
        spec = PAPER_WORKLOADS["alexnet"]
        assert scaling_efficiency(spec, 16, 128, self.comm) < 1.0

    def test_throughput_curve_keys(self):
        spec = PAPER_WORKLOADS["resnet101"]
        curve = throughput_curve(spec, [1, 2, 4], 32, self.comm)
        assert set(curve) == {1, 2, 4}

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            relative_throughput(PAPER_WORKLOADS["resnet101"], 0, 32, self.comm)


class TestConvergence:
    def test_better_than_directions(self):
        assert better_than(0.9, 0.8, higher_is_better=True)
        assert better_than(80.0, 90.0, higher_is_better=False)
        assert not better_than(0.8, 0.9, higher_is_better=True)

    def test_stops_after_patience_without_improvement(self):
        detector = ConvergenceDetector(patience=2, min_delta=0.01)
        assert not detector.update(0.5)
        assert not detector.update(0.505)   # below min_delta => stale 1
        assert detector.update(0.501)       # stale 2 => stop

    def test_improvement_resets_patience(self):
        detector = ConvergenceDetector(patience=2, min_delta=0.0)
        detector.update(0.5)
        detector.update(0.4)
        detector.update(0.6)
        assert detector.stale_evals == 0
        assert detector.best == 0.6

    def test_perplexity_mode(self):
        detector = ConvergenceDetector(higher_is_better=False, patience=2)
        detector.update(100.0)
        detector.update(90.0)
        assert detector.best == 90.0

    def test_target_stops_immediately(self):
        detector = ConvergenceDetector(target=0.9, patience=10)
        assert detector.update(0.95)

    def test_converged_metric_requires_updates(self):
        with pytest.raises(RuntimeError):
            _ = ConvergenceDetector().converged_metric

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceDetector(patience=0)
        with pytest.raises(ValueError):
            ConvergenceDetector(min_delta=-1.0)
