"""Tests for the service load benchmark and its compare_bench integration."""

import json

from benchmarks.compare_bench import (
    compare,
    load_service_metrics,
    main as compare_main,
    service_throughput_line,
)
from benchmarks.service_load import _percentiles, run_load


def service_file(tmp_path, name="BENCH_service.json", p99_submit=12.0, p99_e2e=80.0):
    payload = {
        "config": {"threads": 4, "submissions_per_thread": 10},
        "load": {
            "total_jobs": 40,
            "completed_jobs": 40,
            "failures": 0,
            "jobs_per_sec": 400.0,
            "submit_latency_ms": {"p50": 5.0, "p99": p99_submit, "mean": 6.0, "max": 15.0},
            "e2e_latency_ms": {"p50": 50.0, "p99": p99_e2e, "mean": 55.0, "max": 90.0},
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestServiceMetrics:
    def test_flattens_latency_percentiles_only(self, tmp_path):
        metrics = load_service_metrics(service_file(tmp_path))
        assert metrics == {
            "submit_latency_ms.p50": 5.0,
            "submit_latency_ms.p99": 12.0,
            "e2e_latency_ms.p50": 50.0,
            "e2e_latency_ms.p99": 80.0,
        }

    def test_throughput_line_is_informational(self, tmp_path):
        line = service_throughput_line(service_file(tmp_path))
        assert "400.0 jobs/s" in line
        assert "40/40" in line


class TestLowerIsBetterComparison:
    def test_latency_growth_beyond_limit_fails(self, tmp_path):
        baseline = load_service_metrics(service_file(tmp_path, "base.json"))
        current = load_service_metrics(
            service_file(tmp_path, "cur.json", p99_e2e=80.0 * 1.5)
        )
        table, failed = compare(baseline, current, 0.25, lower_is_better=True)
        assert failed
        assert "REGRESSION" in table

    def test_latency_improvement_passes(self, tmp_path):
        baseline = load_service_metrics(service_file(tmp_path, "base.json"))
        current = load_service_metrics(
            service_file(tmp_path, "cur.json", p99_submit=6.0, p99_e2e=40.0)
        )
        _, failed = compare(baseline, current, 0.25, lower_is_better=True)
        assert not failed

    def test_growth_within_limit_passes(self, tmp_path):
        baseline = load_service_metrics(service_file(tmp_path, "base.json"))
        current = load_service_metrics(
            service_file(tmp_path, "cur.json", p99_e2e=80.0 * 1.2)
        )
        table, failed = compare(baseline, current, 0.25, lower_is_better=True)
        assert not failed
        assert "ok (within limit)" in table


class TestCompareMain:
    def test_service_flags_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        engine = tmp_path / "engine.json"
        engine.write_text(json.dumps({"current_steps_per_sec": {"bsp": 100.0}}))
        base = service_file(tmp_path, "service_base.json")
        cur = service_file(tmp_path, "service_cur.json")
        code = compare_main([
            str(engine), str(engine),
            "--service-baseline", str(base), "--service-current", str(cur),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Service load" in out and "jobs/s" in out

    def test_regressed_service_run_fails_the_job(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        engine = tmp_path / "engine.json"
        engine.write_text(json.dumps({"current_steps_per_sec": {"bsp": 100.0}}))
        base = service_file(tmp_path, "service_base.json")
        cur = service_file(tmp_path, "service_cur.json", p99_e2e=999.0)
        code = compare_main([
            str(engine), str(engine),
            "--service-baseline", str(base), "--service-current", str(cur),
        ])
        assert code == 1

    def test_missing_current_service_file_fails(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        engine = tmp_path / "engine.json"
        engine.write_text(json.dumps({"current_steps_per_sec": {"bsp": 100.0}}))
        code = compare_main([
            str(engine), str(engine),
            "--service-current", str(tmp_path / "missing.json"),
        ])
        assert code == 1


class TestPercentiles:
    def test_percentiles_of_known_samples(self):
        samples = [float(i) for i in range(1, 101)]
        stats = _percentiles(samples)
        assert stats["p50"] == 50.0 or stats["p50"] == 51.0
        assert stats["p99"] == 99.0 or stats["p99"] == 100.0
        assert stats["max"] == 100.0

    def test_empty_samples(self):
        assert _percentiles([]) == {"p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}


class TestRunLoadTiny:
    def test_tiny_load_run_completes_cleanly(self):
        payload = run_load(threads=2, submissions_per_thread=2, service_workers=2)
        load = payload["load"]
        assert load["failures"] == 0, load["errors"]
        assert load["completed_jobs"] == 4
        assert load["submit_latency_ms"]["p99"] > 0
        assert load["jobs_per_sec"] > 0
