"""Service observability: /v1/metrics exposition, health queue block, and
worker-thread trace isolation in the task manager."""

import threading

import pytest

from repro import telemetry
from repro.service import ExperimentService, QuotaManager, ServiceClient


@pytest.fixture(autouse=True)
def _pristine_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


@pytest.fixture()
def service():
    svc = ExperimentService(
        port=0, workers=2, quotas=QuotaManager(max_active_jobs=None, rate=None)
    )
    svc.start()
    try:
        yield svc
    finally:
        svc.stop()


def _metric_value(text: str, line_prefix: str) -> float:
    for line in text.splitlines():
        if line.startswith(line_prefix):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"{line_prefix!r} not found in:\n{text}")


class TestMetricsEndpoint:
    def test_counters_advance_across_job_lifecycle(self, service):
        client = ServiceClient(service.url, tenant="metrics")
        before = client.metrics()
        job = client.submit(
            "throughput", {"workloads": ["resnet101"], "worker_counts": [1, 2]}
        )
        done = client.wait(job["id"], timeout=30)
        assert done["state"] == "DONE"
        after = client.metrics()

        done_before = (
            _metric_value(before, 'repro_jobs_total{state="DONE"}')
            if 'repro_jobs_total{state="DONE"}' in before
            else 0.0
        )
        assert _metric_value(after, 'repro_jobs_total{state="DONE"}') == done_before + 1
        # Every finished job records run-time and queue-wait observations.
        assert _metric_value(after, "repro_job_run_seconds_count") >= 1
        assert _metric_value(after, "repro_job_queue_wait_seconds_count") >= 1
        # Claim latency is observed on every successful claim.
        assert _metric_value(after, "repro_store_claim_seconds_count") >= 1
        # Gauges reflect the drained queue.
        assert _metric_value(after, "repro_job_queue_depth") == 0
        assert _metric_value(after, "repro_service_workers") == 2

    def test_metrics_is_prometheus_text_not_json(self, service):
        import urllib.request

        with urllib.request.urlopen(service.url + "/v1/metrics", timeout=10) as resp:
            assert resp.status == 200
            content_type = resp.headers.get("Content-Type", "")
            assert content_type.startswith("text/plain")
            body = resp.read().decode("utf-8")
        assert "# TYPE repro_service_workers gauge" in body

    def test_health_reports_queue_block(self, service):
        client = ServiceClient(service.url)
        job = client.submit(
            "throughput", {"workloads": ["resnet101"], "worker_counts": [1]}
        )
        client.wait(job["id"], timeout=30)
        health = client.health()
        queue = health["queue"]
        assert queue["workers"] == 2
        assert queue["depth"] == 0
        assert queue["running"] == 0
        assert queue["states"].get("DONE", 0) >= 1


class TestWorkerThreadIsolation:
    def test_taskmanager_spans_root_in_worker_threads(self, service):
        telemetry.configure(tracing=True)
        telemetry.get_tracer().drain()  # discard setup spans
        client = ServiceClient(service.url)
        with telemetry.span("main.request"):
            job = client.submit(
                "throughput", {"workloads": ["resnet101"], "worker_counts": [1]}
            )
            client.wait(job["id"], timeout=30)
        spans = telemetry.get_tracer().drain()
        jobs = [s for s in spans if s["name"] == "taskmanager.job"]
        assert jobs, f"no taskmanager.job span in {[s['name'] for s in spans]}"
        main_thread = threading.current_thread().name
        for span in jobs:
            # Worker-thread spans are their own trace roots: never parented
            # to the submitting thread's open span.
            assert span["thread"] != main_thread
            assert span["parent_id"] is None
            assert span["attrs"]["action"] == "throughput"
