"""End-to-end HTTP tests: submit → poll → paginate → cancel over real sockets.

The parity test is the PR's acceptance criterion: records fetched through
the HTTP API must be byte-identical (as canonical JSON) to a direct
:func:`repro.scenarios.run_scenario` call with the same overrides.
"""

import json
import threading

import pytest

from repro.api import RunResult
from repro.scenarios import run_scenario
from repro.service import ExperimentService, QuotaManager, ServiceClient, ServiceClientError


@pytest.fixture()
def service():
    svc = ExperimentService(
        port=0, workers=2, quotas=QuotaManager(max_active_jobs=None, rate=None)
    )
    svc.start()
    try:
        yield svc
    finally:
        svc.stop()


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TestEndToEnd:
    def test_submit_poll_paginate_matches_direct_run_scenario(self, service):
        client = ServiceClient(service.url, tenant="e2e")
        job = client.submit("scenario", {"name": "quickstart", "iterations": 30})
        assert job["state"] in ("QUEUED", "RUNNING")
        done = client.wait(job["id"], timeout=180)
        assert done["state"] == "DONE"
        assert done["num_records"] == 2

        # paginate one record at a time through HTTP
        http_records = list(client.iter_records(job["id"], page_size=1))

        # the same run, executed directly in-process
        direct = run_scenario("quickstart", iterations=30).to_dict()

        assert canonical(http_records) == canonical(direct["records"])
        # the served meta carries the same run description
        assert done["meta"]["iterations"] == direct["meta"]["iterations"] == 30

    def test_analytic_throughput_round_trip(self, service):
        client = ServiceClient(service.url)
        job = client.submit(
            "throughput", {"workloads": ["resnet101"], "worker_counts": [1, 2, 4]}
        )
        done = client.wait(job["id"], timeout=30)
        assert done["state"] == "DONE"
        page = client.records(job["id"], limit=2)
        assert page["total"] == 3 and page["count"] == 2
        rest = client.records(job["id"], offset=2)
        workers = [r["params"]["workers"] for r in page["records"] + rest["records"]]
        assert workers == [1, 2, 4]

    def test_cancel_running_job_over_http(self):
        started, proceed = threading.Event(), threading.Event()

        def slow_runner(request, cancel_check=None):
            from repro.scenarios.runner import _check_cancelled

            started.set()
            for _ in range(200):
                if proceed.wait(0.05):
                    pass
                _check_cancelled(cancel_check)
            return RunResult(kind=request.kind, label="slow", records=[])

        svc = ExperimentService(
            port=0,
            workers=1,
            runner=slow_runner,
            quotas=QuotaManager(max_active_jobs=None, rate=None),
        )
        svc.start()
        try:
            client = ServiceClient(svc.url)
            job = client.submit("scenario", {"name": "quickstart"})
            assert started.wait(10)
            cancelled = client.cancel(job["id"])
            assert cancelled["cancel_requested"]
            final = client.wait(job["id"], timeout=30)
            assert final["state"] == "CANCELLED"
        finally:
            proceed.set()
            svc.stop()

    def test_cancel_queued_job_over_http(self, service):
        # stall the single pipeline with a long job? simpler: submit many and
        # cancel one that is still queued (2 workers, so queue 6 quickly)
        client = ServiceClient(service.url)
        jobs = [
            client.submit("throughput", {"workloads": ["resnet101"]})["id"]
            for _ in range(3)
        ]
        # throughput jobs are near-instant; cancelling may conflict if DONE.
        outcomes = set()
        for job_id in jobs:
            try:
                outcomes.add(client.cancel(job_id)["state"])
            except ServiceClientError as exc:
                assert exc.status == 409
                outcomes.add("terminal")
        assert outcomes <= {"CANCELLED", "RUNNING", "terminal"}


class TestHttpErrors:
    def test_validation_errors_are_structured_400s(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit("sweep", {"workload": "resnet101"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"
        assert "grid" in str(excinfo.value)

    def test_unknown_job_is_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("deadbeef")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404_and_bad_method_405(self, service):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(service.url + "/v2/everything")
        assert excinfo.value.code == 404
        request = urllib.request.Request(
            service.url + "/v1/jobs/abc", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 405

    def test_rate_limit_maps_to_429(self):
        svc = ExperimentService(
            port=0, workers=1, quotas=QuotaManager(max_active_jobs=None, rate=0.001, burst=1.0)
        )
        svc.start()
        try:
            client = ServiceClient(svc.url)
            client.submit("throughput", {"workloads": ["resnet101"]})
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit("throughput", {"workloads": ["resnet101"]})
            assert excinfo.value.status == 429
            assert excinfo.value.body["error"]["details"]["retry_after"] > 0
        finally:
            svc.stop()

    def test_describe_and_health_endpoints(self, service):
        client = ServiceClient(service.url)
        desc = client.describe()
        assert "sweep" in desc["actions"]
        assert "quickstart" in desc["scenarios"]
        assert client.health()["status"] == "ok"
