"""Controller-level tests: schemas, admission control, pagination, actions."""

import itertools

import pytest

from repro.api import RunResult
from repro.service import (
    DONE,
    JobStore,
    QuotaManager,
    SCHEMAS,
    ServiceController,
    TaskManager,
    TokenBucket,
    get_action,
    validate_payload,
)
from repro.service.exceptions import (
    BadRequest,
    Conflict,
    NotFound,
    QuotaExceeded,
    RateLimited,
)


def fake_runner(request, cancel_check=None):
    records = [
        {"params": {"i": i}, "label": f"r{i}", "metrics": {"final_loss": 0.1 * i}}
        for i in range(5)
    ]
    return RunResult(kind=request.kind, label="fake", records=records, meta={"ok": True})


def make_controller(*, quotas=None, runner=fake_runner):
    store = JobStore()
    tm = TaskManager(store, runner=runner)
    return ServiceController(store, tm, quotas=quotas or QuotaManager(rate=None)), store, tm


SCENARIO_BODY = {"scenario": {"name": "quickstart"}}


class TestSchemas:
    def test_every_action_has_a_schema(self):
        assert set(SCHEMAS) == {"experiment", "sweep", "comparison", "throughput", "scenario"}
        for schema in SCHEMAS.values():
            assert schema["type"] == "object"
            assert not schema["additionalProperties"]

    def test_schemas_track_the_frozen_dataclasses(self):
        # derived, not hand-maintained: dataclass fields appear as properties
        assert "verify_endpoints" in SCHEMAS["sweep"]["properties"]
        assert "convergence_patience" in SCHEMAS["comparison"]["properties"]
        assert "worker_counts" in SCHEMAS["throughput"]["properties"]
        # the scenario-side 'fixed' spelling is renamed to the façade's 'params'
        assert "params" in SCHEMAS["sweep"]["properties"]
        assert "fixed" not in SCHEMAS["sweep"]["properties"]
        # the service names ad-hoc scenarios itself
        assert "name" not in SCHEMAS["sweep"]["properties"]

    def test_get_action_requires_exactly_one_key(self):
        with pytest.raises(BadRequest):
            get_action({})
        with pytest.raises(BadRequest):
            get_action({"sweep": {}, "scenario": {}})
        with pytest.raises(BadRequest):
            get_action({"frobnicate": {}})
        with pytest.raises(BadRequest):
            get_action({"sweep": "not an object"})

    def test_validate_payload_type_checks(self):
        validate_payload("scenario", {"name": "quickstart", "iterations": 5})
        for bad in (
            {"name": 7},
            {"name": "x", "iterations": "many"},
            {"name": "x", "stacked": 1},
            {"name": "x", "bogus": True},
            {},
        ):
            with pytest.raises(BadRequest):
                validate_payload("scenario", bad)


class TestSubmission:
    def test_submit_validates_then_queues(self):
        controller, store, _ = make_controller()
        out = controller.submit("t1", SCENARIO_BODY)
        job = out["job"]
        assert job["state"] == "QUEUED"
        assert job["action"] == "scenario"
        assert job["request"] == {"kind": "scenario", "scenario": "quickstart"}
        assert store.get(job["id"]).tenant == "t1"

    def test_deep_validation_rejects_at_submit_time(self):
        controller, store, _ = make_controller()
        bad_bodies = [
            {"sweep": {"workload": "nope", "algorithm": "selsync", "grid": {"delta": [0.1]}}},
            {"scenario": {"name": "no-such-scenario"}},
            {"comparison": {"methods": {"a": ["bsp", {}]}, "baseline": "missing"}},
        ]
        for body in bad_bodies:
            with pytest.raises(BadRequest):
                controller.submit("t1", body)
        assert store.list_jobs()[0] == []  # nothing queued

    def test_deprecated_aliases_accepted_with_canonical_persisted(self):
        controller, store, _ = make_controller()
        body = {"experiment": {"workload": "resnet101", "algo": "bsp", "workers": 2}}
        with pytest.warns(DeprecationWarning):
            job = controller.submit("t1", body)["job"]
        assert job["request"]["algorithm"] == "bsp"
        assert job["request"]["num_workers"] == 2

    def test_submit_and_execute_round_trip(self):
        controller, store, tm = make_controller()
        job = controller.submit("t1", SCENARIO_BODY)["job"]
        assert tm.run_pending_once() == 1
        shown = controller.show("t1", job["id"])["job"]
        assert shown["state"] == DONE
        assert shown["num_records"] == 5


class TestTenantIsolation:
    def test_show_and_records_are_tenant_scoped(self):
        controller, _, tm = make_controller()
        job = controller.submit("alice", SCENARIO_BODY)["job"]
        tm.run_pending_once()
        with pytest.raises(NotFound):
            controller.show("bob", job["id"])
        with pytest.raises(NotFound):
            controller.records("bob", job["id"])
        assert controller.show("alice", job["id"])["job"]["id"] == job["id"]

    def test_index_only_lists_own_jobs(self):
        controller, _, _ = make_controller()
        controller.submit("alice", SCENARIO_BODY)
        controller.submit("bob", SCENARIO_BODY)
        alice = controller.index("alice")["jobs"]
        assert len(alice) == 1 and alice[0]["tenant"] == "alice"

    def test_cancel_is_tenant_scoped(self):
        controller, _, _ = make_controller()
        job = controller.submit("alice", SCENARIO_BODY)["job"]
        with pytest.raises(NotFound):
            controller.job_action("bob", job["id"], {"cancel": {}})


class TestPagination:
    def test_marker_pagination_walks_all_jobs(self):
        controller, _, _ = make_controller(quotas=QuotaManager(max_active_jobs=None, rate=None))
        ids = [controller.submit("t", SCENARIO_BODY)["job"]["id"] for _ in range(7)]
        seen, marker = [], None
        while True:
            page = controller.index("t", marker=marker, limit=3)
            seen.extend(job["id"] for job in page["jobs"])
            marker = page.get("next_marker")
            if marker is None:
                break
        assert seen == ids

    def test_record_pagination_covers_all_records_in_order(self):
        controller, _, tm = make_controller()
        job = controller.submit("t", SCENARIO_BODY)["job"]
        tm.run_pending_once()
        first = controller.records("t", job["id"], limit=2)
        assert first["count"] == 2 and first["total"] == 5
        rest = controller.records("t", job["id"], offset=2, limit=50)
        labels = [r["label"] for r in first["records"] + rest["records"]]
        assert labels == [f"r{i}" for i in range(5)]

    def test_pagination_parameter_validation(self):
        controller, _, _ = make_controller()
        job = controller.submit("t", SCENARIO_BODY)["job"]
        with pytest.raises(BadRequest):
            controller.index("t", limit="lots")
        with pytest.raises(BadRequest):
            controller.index("t", limit=0)
        with pytest.raises(BadRequest):
            controller.index("t", state="SLEEPING")
        with pytest.raises(BadRequest):
            controller.records("t", job["id"], offset=-1)


class TestJobActions:
    def test_cancel_action_on_queued_job(self):
        controller, _, _ = make_controller()
        job = controller.submit("t", SCENARIO_BODY)["job"]
        out = controller.job_action("t", job["id"], {"cancel": {}})
        assert out["job"]["state"] == "CANCELLED"

    def test_cancel_terminal_job_conflicts(self):
        controller, _, tm = make_controller()
        job = controller.submit("t", SCENARIO_BODY)["job"]
        tm.run_pending_once()
        with pytest.raises(Conflict):
            controller.job_action("t", job["id"], {"cancel": {}})

    def test_unknown_or_malformed_actions_rejected(self):
        controller, _, _ = make_controller()
        job = controller.submit("t", SCENARIO_BODY)["job"]
        with pytest.raises(BadRequest):
            controller.job_action("t", job["id"], {"explode": {}})
        with pytest.raises(BadRequest):
            controller.job_action("t", job["id"], {"cancel": {}, "also": {}})


class TestQuotasAndRateLimits:
    def test_active_job_quota(self):
        quotas = QuotaManager(max_active_jobs=2, rate=None)
        controller, _, tm = make_controller(quotas=quotas)
        controller.submit("t", SCENARIO_BODY)
        controller.submit("t", SCENARIO_BODY)
        with pytest.raises(QuotaExceeded):
            controller.submit("t", SCENARIO_BODY)
        # other tenants are unaffected
        controller.submit("other", SCENARIO_BODY)
        # finishing jobs frees the quota
        tm.run_pending_once()
        controller.submit("t", SCENARIO_BODY)

    def test_token_bucket_rate_limit_and_refill(self):
        clock = FakeClock()
        quotas = QuotaManager(max_active_jobs=None, rate=1.0, burst=2.0, clock=clock)
        controller, _, _ = make_controller(quotas=quotas)
        controller.submit("t", SCENARIO_BODY)
        controller.submit("t", SCENARIO_BODY)
        with pytest.raises(RateLimited) as excinfo:
            controller.submit("t", SCENARIO_BODY)
        assert excinfo.value.details["retry_after"] > 0
        clock.advance(1.0)  # one token refilled
        controller.submit("t", SCENARIO_BODY)

    def test_buckets_are_per_tenant(self):
        clock = FakeClock()
        quotas = QuotaManager(max_active_jobs=None, rate=1.0, burst=1.0, clock=clock)
        controller, _, _ = make_controller(quotas=quotas)
        controller.submit("a", SCENARIO_BODY)
        controller.submit("b", SCENARIO_BODY)  # b's bucket is untouched by a
        with pytest.raises(RateLimited):
            controller.submit("a", SCENARIO_BODY)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_steady_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(4))
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        grabbed = list(itertools.takewhile(lambda _: bucket.try_acquire(), range(10)))
        assert len(grabbed) == 3

    def test_retry_after_estimate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.retry_after() == 0.0
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            QuotaManager(max_active_jobs=0)


class TestIntrospection:
    def test_describe_lists_actions_schemas_and_scenarios(self):
        controller, _, _ = make_controller()
        desc = controller.describe()
        assert desc["actions"] == sorted(SCHEMAS)
        assert "quickstart" in desc["scenarios"]
        assert desc["quotas"]["rate"] is None
        assert desc["taskmanager"]["workers"] == 2

    def test_health(self):
        controller, _, _ = make_controller()
        assert controller.health()["status"] == "ok"
