"""Job lifecycle state machine: transitions, races, failure capture, restarts."""

import itertools
import threading

import pytest

from repro.api import RunResult
from repro.scenarios.runner import RunCancelled
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    JobStore,
    QUEUED,
    RUNNING,
    TRANSITIONS,
    TaskManager,
    validate_transition,
)
from repro.service.exceptions import Conflict, IllegalTransition, NotFound
from repro.service.store import SCHEMA_VERSION

REQUEST = {"kind": "scenario", "scenario": "quickstart"}


def make_store(path=":memory:"):
    return JobStore(path)


def ok_runner(request, cancel_check=None):
    return RunResult(
        kind=request.kind,
        label="fake",
        records=[{"params": {}, "label": "fake", "metrics": {"final_loss": 0.5}}],
        meta={"fake": True},
    )


class TestStateMachine:
    def test_every_legal_and_illegal_transition(self):
        legal = {(old, new) for old, news in TRANSITIONS.items() for new in news}
        assert legal == {
            (QUEUED, RUNNING),
            (QUEUED, CANCELLED),
            (RUNNING, DONE),
            (RUNNING, FAILED),
            (RUNNING, CANCELLED),
        }
        for old, new in itertools.product(JOB_STATES, JOB_STATES):
            if (old, new) in legal:
                validate_transition(old, new)  # must not raise
            else:
                with pytest.raises(IllegalTransition):
                    validate_transition(old, new)

    def test_unknown_states_rejected(self):
        with pytest.raises(IllegalTransition):
            validate_transition("LIMBO", DONE)
        with pytest.raises(IllegalTransition):
            validate_transition(QUEUED, "LIMBO")

    def test_terminal_states_have_no_exits(self):
        for state in (DONE, FAILED, CANCELLED):
            assert TRANSITIONS[state] == frozenset()


class TestStoreTransitions:
    def test_happy_path_stamps_timestamps(self):
        store = make_store()
        job = store.create("t", "scenario", REQUEST)
        assert job.state == QUEUED and job.created_at > 0
        running = store.transition(job.id, QUEUED, RUNNING)
        assert running.state == RUNNING and running.started_at is not None
        done = store.transition(job.id, RUNNING, DONE)
        assert done.state == DONE and done.finished_at is not None

    def test_transition_requires_current_state(self):
        store = make_store()
        job = store.create("t", "scenario", REQUEST)
        with pytest.raises(IllegalTransition):
            store.transition(job.id, RUNNING, DONE)  # still QUEUED
        assert store.get(job.id).state == QUEUED

    def test_illegal_transition_is_rejected_before_touching_the_db(self):
        store = make_store()
        job = store.create("t", "scenario", REQUEST)
        with pytest.raises(IllegalTransition):
            store.transition(job.id, QUEUED, DONE)
        assert store.get(job.id).state == QUEUED

    def test_transition_on_missing_job_raises_not_found(self):
        store = make_store()
        with pytest.raises(NotFound):
            store.transition("nope", QUEUED, RUNNING)

    def test_claim_next_is_fifo_and_exhausts(self):
        store = make_store()
        first = store.create("t", "scenario", REQUEST)
        second = store.create("t", "scenario", REQUEST)
        assert store.claim_next().id == first.id
        assert store.claim_next().id == second.id
        assert store.claim_next() is None

    def test_concurrent_claims_never_double_claim(self):
        store = make_store()
        ids = {store.create("t", "scenario", REQUEST).id for _ in range(20)}
        claimed, lock = [], threading.Lock()

        def worker():
            while True:
                job = store.claim_next()
                if job is None:
                    return
                with lock:
                    claimed.append(job.id)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == sorted(ids)
        assert len(set(claimed)) == len(claimed)


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self):
        store = make_store()
        job = store.create("t", "scenario", REQUEST)
        cancelled = store.request_cancel(job.id)
        assert cancelled.state == CANCELLED
        assert store.claim_next() is None

    def test_cancel_running_job_only_sets_the_flag(self):
        store = make_store()
        job = store.create("t", "scenario", REQUEST)
        store.claim_next()
        flagged = store.request_cancel(job.id)
        assert flagged.state == RUNNING and flagged.cancel_requested
        assert store.cancel_requested(job.id)

    def test_cancel_terminal_job_conflicts(self):
        store = make_store()
        job = store.create("t", "scenario", REQUEST)
        store.claim_next()
        store.transition(job.id, RUNNING, DONE)
        with pytest.raises(Conflict):
            store.request_cancel(job.id)

    def test_worker_honours_cancel_between_runs(self):
        store = make_store()

        def cancelling_runner(request, cancel_check=None):
            # the façade polls cancel_check between runs; emulate one poll
            if cancel_check():
                raise RunCancelled("cancelled")
            return ok_runner(request)

        tm = TaskManager(store, runner=cancelling_runner)
        job = store.create("t", "scenario", REQUEST)
        claimed = store.claim_next()
        store.request_cancel(job.id)
        final = tm.execute(claimed)
        assert final.state == CANCELLED

    def test_done_wins_the_cancel_race(self):
        """A cancel landing after the worker's last poll is a no-op on state."""
        store = make_store()
        started, proceed = threading.Event(), threading.Event()

        def slow_runner(request, cancel_check=None):
            started.set()
            assert proceed.wait(5)
            return ok_runner(request)  # never re-polls: completes normally

        tm = TaskManager(store, runner=slow_runner)
        job = store.create("t", "scenario", REQUEST)
        claimed = store.claim_next()
        thread = threading.Thread(target=tm.execute, args=(claimed,))
        thread.start()
        assert started.wait(5)
        flagged = store.request_cancel(job.id)  # racing cancel: flag only
        assert flagged.state == RUNNING and flagged.cancel_requested
        proceed.set()
        thread.join(5)
        final = store.get(job.id)
        assert final.state == DONE
        assert final.cancel_requested  # the late flag survives for audit
        assert final.num_records == 1

    def test_cancel_wins_when_worker_polls_in_time(self):
        store = make_store()
        started, proceed = threading.Event(), threading.Event()

        def polling_runner(request, cancel_check=None):
            started.set()
            assert proceed.wait(5)
            if cancel_check():
                raise RunCancelled("cancelled mid-run")
            return ok_runner(request)

        tm = TaskManager(store, runner=polling_runner)
        job = store.create("t", "scenario", REQUEST)
        claimed = store.claim_next()
        thread = threading.Thread(target=tm.execute, args=(claimed,))
        thread.start()
        assert started.wait(5)
        store.request_cancel(job.id)
        proceed.set()
        thread.join(5)
        assert store.get(job.id).state == CANCELLED


class TestFailureCapture:
    def test_worker_exception_becomes_failed_with_error(self):
        store = make_store()

        def broken_runner(request, cancel_check=None):
            raise RuntimeError("the cluster caught fire")

        tm = TaskManager(store, runner=broken_runner)
        store.create("t", "scenario", REQUEST)
        assert tm.run_pending_once() == 1
        job = store.list_jobs()[0][0]
        assert job.state == FAILED
        assert "RuntimeError: the cluster caught fire" in job.error

    def test_invalid_persisted_request_fails_cleanly(self):
        store = make_store()
        tm = TaskManager(store, runner=ok_runner)
        store.create("t", "scenario", {"kind": "definitely-not-a-kind"})
        tm.run_pending_once()
        job = store.list_jobs()[0][0]
        assert job.state == FAILED and "unknown request kind" in job.error

    def test_successful_job_persists_records_then_completes(self):
        store = make_store()
        tm = TaskManager(store, runner=ok_runner)
        job = store.create("t", "scenario", REQUEST)
        assert tm.run_pending_once() == 1
        final = store.get(job.id)
        assert final.state == DONE and final.meta == {"fake": True}
        records, total = store.get_records(job.id)
        assert total == 1 and records[0]["metrics"] == {"final_loss": 0.5}


class TestRestartPersistence:
    def test_queue_survives_a_service_restart(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite3")
        store = make_store(db)
        tm = TaskManager(store, runner=ok_runner)
        done_job = store.create("t", "scenario", REQUEST)
        tm.run_pending_once()
        stranded_job = store.create("t", "scenario", REQUEST)
        waiting_job = store.create("t", "scenario", REQUEST)
        assert store.claim_next().id == stranded_job.id  # FIFO: oldest queued
        store.close()  # simulated crash: the RUNNING job is stranded

        reopened = make_store(db)
        assert reopened.get(done_job.id).state == DONE
        records, total = reopened.get_records(done_job.id)
        assert total == 1 and records[0]["label"] == "fake"
        assert reopened.get(stranded_job.id).state == RUNNING
        assert reopened.recover() == 1
        assert reopened.get(stranded_job.id).state == QUEUED
        assert reopened.get(waiting_job.id).state == QUEUED
        tm2 = TaskManager(reopened, runner=ok_runner)
        assert tm2.run_pending_once() == 2
        states = {job.id: job.state for job in reopened.list_jobs()[0]}
        assert set(states.values()) == {DONE}

    def test_taskmanager_start_recovers_stranded_jobs(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite3")
        store = make_store(db)
        job = store.create("t", "scenario", REQUEST)
        store.claim_next()
        store.close()
        reopened = make_store(db)
        tm = TaskManager(reopened, runner=ok_runner, workers=1)
        tm.start()
        try:
            client_view = None
            for _ in range(100):
                client_view = reopened.get(job.id)
                if client_view.state == DONE:
                    break
                threading.Event().wait(0.05)
            assert client_view.state == DONE
        finally:
            tm.stop()

    def test_schema_version_mismatch_fails_loudly(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite3")
        store = make_store(db)
        store._conn.execute("UPDATE schema_version SET version = ?", (SCHEMA_VERSION + 1,))
        store._conn.commit()
        store.close()
        with pytest.raises(RuntimeError, match="schema version"):
            make_store(db)
