"""Tests for the scenario runner: all three kinds, overrides, endpoint parity."""

import json

import pytest

from repro.scenarios import (
    ComparisonScenario,
    ScenarioError,
    SweepScenario,
    ThroughputScenario,
    run_scenario,
)


def tiny_sweep(**overrides) -> SweepScenario:
    base = dict(
        name="tiny-sweep",
        title="tiny δ sweep",
        workload="resnet101",
        algorithm="selsync",
        grid={"delta": (0.0, 1e9)},
        num_workers=2,
        iterations=6,
        batch_size=8,
    )
    base.update(overrides)
    return SweepScenario(**base)


class TestSweepRunner:
    def test_records_cover_grid_in_order(self):
        report = run_scenario(tiny_sweep())
        assert report.kind == "sweep"
        assert [r.params["delta"] for r in report.records] == [0.0, 1e9]
        for record in report.records:
            assert {"lssr", "best_metric", "final_loss", "sim_time_seconds",
                    "iterations", "communication_bytes"} <= set(record.metrics)
        # raw results are kept for exact assertions
        assert report.results["delta=0.0"].iterations == 6

    def test_overrides_do_not_mutate_scenario(self):
        scenario = tiny_sweep()
        report = run_scenario(scenario, iterations=4, num_workers=3, seed=7)
        assert scenario.iterations == 6 and scenario.num_workers == 2
        assert report.meta["iterations"] == 4
        assert report.meta["num_workers"] == 3
        assert report.meta["seed"] == 7
        assert report.results["delta=0.0"].iterations == 4

    def test_bad_overrides_rejected(self):
        with pytest.raises(ScenarioError, match="iterations"):
            run_scenario(tiny_sweep(), iterations=0)
        with pytest.raises(ScenarioError, match="num_workers"):
            run_scenario(tiny_sweep(), num_workers=0)
        with pytest.raises(ScenarioError, match="seed"):
            run_scenario(tiny_sweep(), seed=-1)

    def test_series_and_table(self):
        report = run_scenario(tiny_sweep())
        lssr = report.series("delta", "lssr")
        assert set(lssr) == {0.0, 1e9}
        table = report.table()
        assert "lssr" in table
        # The 1e9 sentinel renders as the local-SGD extreme it stands for.
        assert "∞ (local SGD)" in table
        assert "1,000,000,000" not in table

    def test_to_dict_is_json_serializable(self):
        report = run_scenario(tiny_sweep())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["name"] == "tiny-sweep"
        assert len(payload["records"]) == 2
        assert "results" not in payload

    def test_registry_name_resolution(self):
        report = run_scenario("fig6-delta-sweep", iterations=4, num_workers=2)
        assert report.name == "fig6-delta-sweep"
        assert len(report.records) == 6


class TestEndpointVerification:
    def test_exact_parity_against_existing_trainers(self):
        scenario = tiny_sweep(
            fixed={"aggregation": "grad", "sync_on_first_step": False},
            verify_endpoints=True,
        )
        report = run_scenario(scenario)
        assert report.endpoints["bsp"]["matches_sweep_endpoint"] is True
        assert report.endpoints["local_sgd"]["matches_sweep_endpoint"] is True
        # The anchors themselves are recorded for the artifact trail.
        assert report.results["anchor/bsp"].lssr == 0.0
        assert report.results["anchor/local_sgd"].lssr == 1.0
        assert report.endpoints["bsp"]["delta"] == 0.0
        assert report.endpoints["local_sgd"]["delta"] == 1e9

    def test_delta_zero_reproduces_bsp_bit_for_bit(self):
        scenario = tiny_sweep(
            fixed={"aggregation": "grad", "sync_on_first_step": False},
            verify_endpoints=True,
        )
        report = run_scenario(scenario)
        sweep0 = report.results["delta=0.0"]
        bsp = report.results["anchor/bsp"]
        assert sweep0.final_loss == bsp.final_loss
        assert sweep0.final_metric == bsp.final_metric
        assert [p.metric for p in sweep0.history] == [p.metric for p in bsp.history]


class TestComparisonRunner:
    def test_records_per_workload_and_method(self):
        scenario = ComparisonScenario(
            name="tiny-comparison",
            title="tiny comparison",
            methods={"bsp": ("bsp", {}), "selsync": ("selsync", {"delta": 0.3})},
            workloads=("resnet101",),
            num_workers=2,
            iterations=6,
            use_convergence=False,
        )
        report = run_scenario(scenario)
        assert report.kind == "comparison"
        keys = {(r.params["workload"], r.params["method"]) for r in report.records}
        assert keys == {("resnet101", "bsp"), ("resnet101", "selsync")}
        assert "Outperform BSP?" in report.table()

    def test_convergence_detector_can_stop_early(self):
        scenario = ComparisonScenario(
            name="tiny-early-stop",
            title="early stop",
            methods={"bsp": ("bsp", {})},
            workloads=("resnet101",),
            num_workers=2,
            iterations=12,
            eval_every=1,
            convergence_patience=1,
            convergence_min_delta=10.0,  # impossible improvement bar
        )
        report = run_scenario(scenario)
        assert report.results["resnet101/bsp"].iterations < 12


class TestThroughputRunner:
    def test_curves_and_override_rejection(self):
        scenario = ThroughputScenario(
            name="tiny-throughput", title="t",
            workloads=("resnet101", "vgg11"), worker_counts=(1, 4),
        )
        report = run_scenario(scenario)
        assert report.kind == "throughput"
        assert len(report.records) == 4
        curve = report.series("workers", "relative_throughput")
        assert curve[1] == 1.0
        assert "workers" in report.table()
        with pytest.raises(ScenarioError, match="analytic"):
            run_scenario(scenario, iterations=10)


@pytest.mark.pool
class TestPooledScenario:
    def test_pooled_sweep_matches_endpoints(self):
        scenario = SweepScenario(
            name="tiny-pooled",
            title="tiny pooled sweep",
            workload="deep_mlp",
            grid={"delta": (0.0, 1e9)},
            fixed={"aggregation": "grad", "sync_on_first_step": False},
            num_workers=4,
            iterations=4,
            batch_size=4,
            pool_workers=2,
            verify_endpoints=True,
        )
        report = run_scenario(scenario)
        assert report.endpoints["bsp"]["matches_sweep_endpoint"] is True
        assert report.endpoints["local_sgd"]["matches_sweep_endpoint"] is True
