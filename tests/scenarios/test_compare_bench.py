"""Tests for the benchmark comparison script's scenario-file support.

The engine-file comparison path is exercised implicitly by CI on every PR;
these tests pin the BENCH_scenarios.json additions: the synthesized
per-scenario sweep rate, the ``stacked_sweep`` steps/sec rows, and the
stacked-speedup markdown rendering.
"""

import json

from benchmarks.compare_bench import (
    compare,
    load_scenario_metrics,
    stacked_speedup_table,
)


def scenario_file(tmp_path, name="BENCH_scenarios.json", sequential=10.0, stacked=30.0):
    payload = {
        "deep-mlp-delta-n64": {
            "name": "deep-mlp-delta-n64",
            "meta": {"iterations": 24, "sweep_wall_seconds": 2.0},
            "records": [{"params": {"delta": d}, "metrics": {}} for d in (0.0, 1e9)],
        },
        "stacked_sweep": {
            "config": {"cpu_count": 8},
            "scenarios": {
                "deep-mlp-delta-n64": {
                    "sequential_seconds": 4.8,
                    "stacked_seconds": 1.6,
                    "steps_per_sec": {"sequential": sequential, "stacked": stacked},
                    "speedup": 3.0,
                    "exact_parity": True,
                }
            },
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestScenarioMetrics:
    def test_collects_stacked_sweep_rates_and_synthesized_sweep_rate(self, tmp_path):
        metrics = load_scenario_metrics(scenario_file(tmp_path))
        key = "stacked_sweep.scenarios.deep-mlp-delta-n64.steps_per_sec"
        assert metrics[f"{key}.sequential"] == 10.0
        assert metrics[f"{key}.stacked"] == 30.0
        # 24 iterations × 2 grid points over 2.0s of sweep wall-clock.
        assert metrics["deep-mlp-delta-n64.sweep_steps_per_sec"] == 24.0

    def test_regression_detected_across_files(self, tmp_path):
        baseline = load_scenario_metrics(scenario_file(tmp_path, "base.json"))
        current = load_scenario_metrics(
            scenario_file(tmp_path, "cur.json", stacked=10.0)
        )
        _, failed = compare(baseline, current, max_regression=0.25)
        assert failed
        _, ok = compare(baseline, baseline, max_regression=0.25)
        assert not ok


class TestSpeedupTable:
    def test_renders_speedup_rows(self, tmp_path):
        table = stacked_speedup_table(scenario_file(tmp_path))
        assert "3.00x" in table
        assert "deep-mlp-delta-n64" in table
        assert "8 cores" in table

    def test_empty_without_stacked_section(self, tmp_path):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"some-scenario": {"records": []}}))
        assert stacked_speedup_table(path) == ""
