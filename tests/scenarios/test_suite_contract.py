"""Unit tests for the scenario-suite gates (without running the heavy suite)."""

import json

import pytest

from benchmarks import scenario_suite


def summary(lssrs, bsp_ok=True, local_ok=True, name="s"):
    deltas = [0.0, 0.1, 1e9][: len(lssrs)]
    return {
        "name": name,
        "records": [
            {"params": {"delta": d}, "metrics": {"lssr": lssr}}
            for d, lssr in zip(deltas, lssrs)
        ],
        "endpoints": {
            "bsp": {"matches_sweep_endpoint": bsp_ok},
            "local_sgd": {"matches_sweep_endpoint": local_ok},
        },
    }


class TestSweepContract:
    def test_passing_sweep(self):
        scenario_suite.check_sweep_contract(summary([0.0, 0.5, 1.0]))

    def test_non_monotone_rejected(self):
        with pytest.raises(AssertionError, match="monotone"):
            scenario_suite.check_sweep_contract(summary([0.0, 1.0, 0.5]))

    def test_nonzero_start_rejected(self):
        with pytest.raises(AssertionError, match="δ=0"):
            scenario_suite.check_sweep_contract(summary([0.1, 0.5, 1.0]))

    def test_partial_local_end_rejected(self):
        with pytest.raises(AssertionError, match="δ=max"):
            scenario_suite.check_sweep_contract(summary([0.0, 0.5, 0.9]))

    def test_endpoint_divergence_rejected(self):
        with pytest.raises(AssertionError, match="BSPTrainer"):
            scenario_suite.check_sweep_contract(summary([0.0, 0.5, 1.0], bsp_ok=False))
        with pytest.raises(AssertionError, match="LocalSGDTrainer"):
            scenario_suite.check_sweep_contract(summary([0.0, 0.5, 1.0], local_ok=False))


class TestSuiteWiring:
    def test_sweep_names_split_by_pool_tag(self):
        plain = scenario_suite._sweep_names(pool=False)
        pooled = scenario_suite._sweep_names(pool=True)
        assert "deep-mlp-delta-n64" in plain
        assert "deep-mlp-delta-n64-pooled" in pooled
        assert not set(plain) & set(pooled)

    def test_merge_keeps_other_sections(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_scenarios.json"
        path.write_text(json.dumps({"existing": {"records": []}}))
        monkeypatch.setattr(scenario_suite, "RESULT_PATH", path)
        scenario_suite.merge_into_result_file({"fresh": {"records": []}})
        merged = json.loads(path.read_text())
        assert set(merged) == {"existing", "fresh"}

    def test_merge_recovers_from_corrupt_file(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_scenarios.json"
        path.write_text("{not json")
        monkeypatch.setattr(scenario_suite, "RESULT_PATH", path)
        scenario_suite.merge_into_result_file({"fresh": {"records": []}})
        assert set(json.loads(path.read_text())) == {"fresh"}
