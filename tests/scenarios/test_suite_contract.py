"""Unit tests for the scenario-suite gates (without running the heavy suite)."""

import json

import pytest

from benchmarks import scenario_suite


def summary(lssrs, bsp_ok=True, local_ok=True, name="s"):
    deltas = [0.0, 0.1, 1e9][: len(lssrs)]
    return {
        "name": name,
        "records": [
            {"params": {"delta": d}, "metrics": {"lssr": lssr}}
            for d, lssr in zip(deltas, lssrs)
        ],
        "endpoints": {
            "bsp": {"matches_sweep_endpoint": bsp_ok},
            "local_sgd": {"matches_sweep_endpoint": local_ok},
        },
    }


class TestSweepContract:
    def test_passing_sweep(self):
        scenario_suite.check_sweep_contract(summary([0.0, 0.5, 1.0]))

    def test_non_monotone_rejected(self):
        with pytest.raises(AssertionError, match="monotone"):
            scenario_suite.check_sweep_contract(summary([0.0, 1.0, 0.5]))

    def test_nonzero_start_rejected(self):
        with pytest.raises(AssertionError, match="δ=0"):
            scenario_suite.check_sweep_contract(summary([0.1, 0.5, 1.0]))

    def test_partial_local_end_rejected(self):
        with pytest.raises(AssertionError, match="δ=max"):
            scenario_suite.check_sweep_contract(summary([0.0, 0.5, 0.9]))

    def test_endpoint_divergence_rejected(self):
        with pytest.raises(AssertionError, match="BSPTrainer"):
            scenario_suite.check_sweep_contract(summary([0.0, 0.5, 1.0], bsp_ok=False))
        with pytest.raises(AssertionError, match="LocalSGDTrainer"):
            scenario_suite.check_sweep_contract(summary([0.0, 0.5, 1.0], local_ok=False))


def contrast_section(speedup=4.0, parity=True, cpu_count=8):
    return {
        "config": {"cpu_count": cpu_count},
        "scenarios": {
            "s": {
                "sequential_seconds": speedup,
                "stacked_seconds": 1.0,
                "speedup": speedup,
                "exact_parity": parity,
            }
        },
    }


class TestStackedContrastGates:
    def test_passing_contrast(self):
        scenario_suite.check_stacked_contrast(contrast_section())

    def test_parity_always_gated(self):
        with pytest.raises(AssertionError, match="diverged"):
            scenario_suite.check_stacked_contrast(contrast_section(parity=False))

    def test_speedup_gate_arms_on_multicore(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: scenario_suite.STACKED_GATE_MIN_CORES)
        with pytest.raises(AssertionError, match="below the"):
            scenario_suite.check_stacked_contrast(contrast_section(speedup=0.8))

    def test_speedup_gate_disarmed_on_single_core(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        scenario_suite.check_stacked_contrast(contrast_section(speedup=0.8))

    def test_records_identical_ignores_wall_seconds(self):
        seq = summary([0.0, 0.5, 1.0])
        stk = json.loads(json.dumps(seq))
        for record in stk["records"]:
            record["metrics"]["wall_seconds"] = 123.0
        assert scenario_suite._records_identical(seq, stk)

    def test_records_identical_detects_metric_drift(self):
        seq = summary([0.0, 0.5, 1.0])
        stk = summary([0.0, 0.6, 1.0])
        assert not scenario_suite._records_identical(seq, stk)

    def test_records_identical_requires_anchor_parity(self):
        seq = summary([0.0, 0.5, 1.0])
        stk = summary([0.0, 0.5, 1.0], local_ok=False)
        assert not scenario_suite._records_identical(seq, stk)


class TestSuiteWiring:
    def test_sweep_names_split_by_pool_tag(self):
        plain = scenario_suite._sweep_names(pool=False)
        pooled = scenario_suite._sweep_names(pool=True)
        assert "deep-mlp-delta-n64" in plain
        assert "deep-mlp-delta-n64-pooled" in pooled
        assert not set(plain) & set(pooled)

    def test_stacked_names_cover_both_workload_families(self):
        names = scenario_suite._stacked_names()
        assert "deep-mlp-delta-n64" in names
        assert "transformer-delta-n64" in names
        # The pooled variant cannot stack (pool and stacking are exclusive).
        assert "deep-mlp-delta-n64-pooled" not in names

    def test_merge_keeps_other_sections(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_scenarios.json"
        path.write_text(json.dumps({"existing": {"records": []}}))
        monkeypatch.setattr(scenario_suite, "RESULT_PATH", path)
        scenario_suite.merge_into_result_file({"fresh": {"records": []}})
        merged = json.loads(path.read_text())
        assert set(merged) == {"existing", "fresh"}

    def test_merge_recovers_from_corrupt_file(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_scenarios.json"
        path.write_text("{not json")
        monkeypatch.setattr(scenario_suite, "RESULT_PATH", path)
        scenario_suite.merge_into_result_file({"fresh": {"records": []}})
        assert set(json.loads(path.read_text())) == {"fresh"}
