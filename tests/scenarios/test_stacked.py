"""Stacked sweep execution at the scenario level: validation and parity.

The contract under test: a ``SweepScenario`` run with ``stacked=True``
produces *bit-identical* float64 records to the sequential runner — same
final loss, same full evaluation history, same LSSR / simulated time /
communication bytes — for SelSync and local SGD, with the BSP and
never-syncing local-SGD endpoint anchors reproduced exactly.  Chunked
stacked execution (``max_stacked_rows``) is bit-identical to unchunked.
"""

import numpy as np
import pytest

from repro.scenarios import ScenarioError, SweepScenario, run_scenario

EXACT_ENDPOINT_FIXED = {"aggregation": "grad", "sync_on_first_step": False}


def delta_scenario(**overrides) -> SweepScenario:
    base = dict(
        name="stacked-parity",
        title="stacked parity δ sweep",
        workload="deep_mlp",
        algorithm="selsync",
        grid={"delta": (0.0, 0.5, 1e9)},
        fixed=dict(EXACT_ENDPOINT_FIXED),
        num_workers=4,
        iterations=6,
        batch_size=4,
        verify_endpoints=True,
    )
    base.update(overrides)
    return SweepScenario(**base)


def stripped_records(report):
    """Record params/metrics without wall_seconds (a runner measurement)."""
    return [
        (
            record.params,
            {k: v for k, v in record.metrics.items() if k != "wall_seconds"},
        )
        for record in report.records
    ]


class TestStackedSpecValidation:
    def test_stacked_scenario_constructs(self):
        scenario = delta_scenario(stacked=True, max_stacked_rows=8)
        assert scenario.stacked and scenario.max_stacked_rows == 8

    def test_non_lockstep_algorithm_rejected(self):
        with pytest.raises(ScenarioError, match="lockstep"):
            delta_scenario(
                algorithm="ssp",
                grid={"staleness": (1, 2)},
                fixed={},
                verify_endpoints=False,
                stacked=True,
            )

    def test_non_policy_grid_key_rejected(self):
        with pytest.raises(ScenarioError, match="cannot\\s+vary across stacked"):
            delta_scenario(
                grid={"participation": (0.5, 1.0)},
                algorithm="selsync",
                verify_endpoints=False,
                stacked=True,
            )

    def test_unbatchable_workload_rejected(self):
        with pytest.raises(ScenarioError, match="batched replica\\s+executor"):
            delta_scenario(workload="resnet101", stacked=True)

    def test_pool_and_stacked_mutually_exclusive(self):
        with pytest.raises(ScenarioError, match="mutually exclusive"):
            delta_scenario(stacked=True, pool_workers=2)

    def test_bad_max_stacked_rows_rejected(self):
        with pytest.raises(ScenarioError, match="max_stacked_rows"):
            delta_scenario(max_stacked_rows=0)


class TestStackedOverrides:
    def test_override_revalidates(self):
        # The scenario itself is valid sequentially; the stacked override
        # must re-run validation and reject it.
        scenario = delta_scenario(
            workload="resnet101", verify_endpoints=False, grid={"delta": (0.0, 1e9)}
        )
        with pytest.raises(ScenarioError, match="batched replica\\s+executor"):
            run_scenario(scenario, stacked=True)

    def test_non_sweep_kind_rejected(self):
        with pytest.raises(ScenarioError, match="sweep scenarios only"):
            run_scenario("fig1a-throughput", stacked=True)

    def test_meta_records_mode(self):
        report = run_scenario(delta_scenario(), stacked=True, max_stacked_rows=6)
        assert report.meta["stacked"] is True
        assert report.meta["max_stacked_rows"] == 6


class TestStackedParity:
    def test_deep_mlp_float64_bit_identical(self):
        scenario = delta_scenario()
        sequential = run_scenario(scenario)
        stacked = run_scenario(scenario, stacked=True)
        assert stripped_records(sequential) == stripped_records(stacked)
        # Full-trajectory equality of the raw results, not just summaries.
        for key, seq_result in sequential.results.items():
            stk_result = stacked.results[key]
            assert seq_result.final_loss == stk_result.final_loss
            assert [(p.step, p.loss, p.metric) for p in seq_result.history] == [
                (p.step, p.loss, p.metric) for p in stk_result.history
            ]
        # δ=0 ≡ BSPTrainer and δ=max ≡ never-syncing LocalSGDTrainer, both
        # computed through the fused stacked pass.
        for anchor in stacked.endpoints.values():
            assert anchor["matches_sweep_endpoint"]

    def test_local_sgd_sync_period_grid_bit_identical(self):
        scenario = delta_scenario(
            algorithm="local_sgd",
            grid={"sync_period": (1, 2, 4)},
            fixed={},
            verify_endpoints=False,
        )
        sequential = run_scenario(scenario)
        stacked = run_scenario(scenario, stacked=True)
        assert stripped_records(sequential) == stripped_records(stacked)

    def test_transformer_float64_bit_identical(self):
        scenario = delta_scenario(
            workload="transformer",
            num_workers=2,
            iterations=4,
            batch_size=2,
            grid={"delta": (0.0, 1e9)},
        )
        sequential = run_scenario(scenario)
        stacked = run_scenario(scenario, stacked=True)
        assert stripped_records(sequential) == stripped_records(stacked)
        for anchor in stacked.endpoints.values():
            assert anchor["matches_sweep_endpoint"]

    def test_float32_parity_within_tolerance(self):
        scenario = delta_scenario(
            dtype="float32", verify_endpoints=False, grid={"delta": (0.0, 0.5, 1e9)}
        )
        sequential = run_scenario(scenario)
        stacked = run_scenario(scenario, stacked=True)
        for seq_rec, stk_rec in zip(sequential.records, stacked.records):
            assert seq_rec.params == stk_rec.params
            np.testing.assert_allclose(
                stk_rec.metrics["final_loss"],
                seq_rec.metrics["final_loss"],
                rtol=1e-3,
            )
            assert stk_rec.metrics["lssr"] == seq_rec.metrics["lssr"]

    def test_chunked_bit_identical_to_unchunked(self):
        scenario = delta_scenario()
        unchunked = run_scenario(scenario, stacked=True)
        # 5 rows does not divide the 12 stacked rows or the 4-row slices:
        # slabs straddle slice boundaries on purpose.
        chunked = run_scenario(scenario, stacked=True, max_stacked_rows=5)
        assert stripped_records(unchunked) == stripped_records(chunked)


class TestWallClockRecording:
    @pytest.mark.parametrize("stacked", [False, True])
    def test_records_and_meta_carry_wall_seconds(self, stacked):
        report = run_scenario(delta_scenario(), stacked=stacked or None)
        assert report.meta["sweep_wall_seconds"] > 0
        for record in report.records:
            assert record.metrics["wall_seconds"] > 0
        for anchor in report.endpoints.values():
            assert anchor["record"]["metrics"]["wall_seconds"] > 0


class TestStackedCli:
    def test_scenario_run_stacked_flag(self, capsys):
        from repro.harness.cli import main

        code = main(
            [
                "scenario",
                "deep-mlp-delta-n64",
                "--stacked",
                "--workers",
                "4",
                "--iterations",
                "4",
                "--max-stacked-rows",
                "8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "exact endpoint parity" in out
        assert "bsp=True" in out and "local_sgd=True" in out
