"""Validation tests for the scenario dataclasses."""

import dataclasses

import pytest

from repro.scenarios.spec import (
    ComparisonScenario,
    ScenarioError,
    SweepScenario,
    ThroughputScenario,
)


def sweep(**overrides) -> SweepScenario:
    base = dict(
        name="test-sweep",
        title="a test sweep",
        workload="resnet101",
        algorithm="selsync",
        grid={"delta": (0.0, 0.5)},
    )
    base.update(overrides)
    return SweepScenario(**base)


class TestSweepScenario:
    def test_valid_scenario_normalizes_grid_to_tuples(self):
        scenario = sweep(grid={"delta": [0.0, 0.5]})
        assert scenario.grid == {"delta": (0.0, 0.5)}
        assert scenario.kind == "sweep"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            sweep().iterations = 1

    def test_unknown_workload(self):
        with pytest.raises(ScenarioError, match="unknown workload"):
            sweep(workload="bert")

    def test_unknown_algorithm(self):
        with pytest.raises(ScenarioError, match="unknown algorithm"):
            sweep(algorithm="gossip")

    def test_empty_grid(self):
        with pytest.raises(ScenarioError, match="grid must not be empty"):
            sweep(grid={})

    def test_empty_grid_entry(self):
        with pytest.raises(ScenarioError, match="no values"):
            sweep(grid={"delta": ()})

    def test_reserved_grid_key(self):
        with pytest.raises(ScenarioError, match="reserved"):
            sweep(grid={"num_workers": (2, 4)})

    def test_reserved_fixed_key(self):
        with pytest.raises(ScenarioError, match="reserved"):
            sweep(fixed={"dtype": "float32"})

    def test_grid_fixed_collision(self):
        with pytest.raises(ScenarioError, match="both"):
            sweep(grid={"delta": (0.0,)}, fixed={"delta": 0.5})

    def test_whitespace_name_rejected(self):
        with pytest.raises(ScenarioError, match="whitespace"):
            sweep(name="bad name")

    @pytest.mark.parametrize("field,value", [
        ("num_workers", 0), ("iterations", 0), ("seed", -1), ("eval_every", 0),
    ])
    def test_bad_run_settings(self, field, value):
        with pytest.raises(ScenarioError):
            sweep(**{field: value})

    def test_verify_endpoints_requires_selsync_delta_grid(self):
        with pytest.raises(ScenarioError, match="selsync"):
            sweep(algorithm="ssp", grid={"staleness": (10, 100)},
                  verify_endpoints=True)

    def test_verify_endpoints_requires_delta_only_grid(self):
        with pytest.raises(ScenarioError, match="exactly 'delta'"):
            sweep(grid={"delta": (0.0, 1.0), "ewma_window": (5, 25)},
                  fixed={"aggregation": "grad", "sync_on_first_step": False},
                  verify_endpoints=True)

    def test_verify_endpoints_requires_zero_delta(self):
        with pytest.raises(ScenarioError, match="BSP endpoint"):
            sweep(grid={"delta": (0.1, 1.0)},
                  fixed={"aggregation": "grad", "sync_on_first_step": False},
                  verify_endpoints=True)

    def test_verify_endpoints_requires_exact_parity_config(self):
        with pytest.raises(ScenarioError, match="aggregation='grad'"):
            sweep(grid={"delta": (0.0, 1e9)}, verify_endpoints=True)

    def test_verify_endpoints_valid(self):
        scenario = sweep(
            grid={"delta": (0.0, 1e9)},
            fixed={"aggregation": "grad", "sync_on_first_step": False},
            verify_endpoints=True,
        )
        assert scenario.verify_endpoints

    def test_resolved_eval_every_scales_with_override(self):
        scenario = sweep(iterations=80)
        assert scenario.resolved_eval_every() == 20
        assert scenario.resolved_eval_every(8) == 2
        assert sweep(eval_every=7).resolved_eval_every(1000) == 7


class TestComparisonScenario:
    def comparison(self, **overrides) -> ComparisonScenario:
        base = dict(
            name="test-comparison",
            title="a test comparison",
            methods={"bsp": ("bsp", {}), "selsync": ("selsync", {"delta": 0.3})},
        )
        base.update(overrides)
        return ComparisonScenario(**base)

    def test_valid(self):
        scenario = self.comparison()
        assert scenario.kind == "comparison"
        assert scenario.baseline == "bsp"

    def test_empty_methods(self):
        with pytest.raises(ScenarioError, match="methods"):
            self.comparison(methods={})

    def test_malformed_method_entry(self):
        with pytest.raises(ScenarioError, match="pair"):
            self.comparison(methods={"bsp": "bsp"})

    def test_unknown_method_algorithm(self):
        with pytest.raises(ScenarioError, match="unknown algorithm"):
            self.comparison(methods={"x": ("gossip", {})})

    def test_reserved_method_kwarg(self):
        with pytest.raises(ScenarioError, match="reserved"):
            self.comparison(methods={"bsp": ("bsp", {"seed": 3})})

    def test_missing_baseline(self):
        with pytest.raises(ScenarioError, match="baseline"):
            self.comparison(methods={"selsync": ("selsync", {})})

    def test_unknown_workload(self):
        with pytest.raises(ScenarioError, match="unknown workload"):
            self.comparison(workloads=("bert",))

    def test_empty_workloads(self):
        with pytest.raises(ScenarioError, match="workloads"):
            self.comparison(workloads=())


class TestThroughputScenario:
    def test_valid(self):
        scenario = ThroughputScenario(
            name="t", title="t", workloads=("resnet101", "vgg11")
        )
        assert scenario.kind == "throughput"
        assert scenario.worker_counts == (1, 2, 4, 8, 16)

    def test_unknown_paper_workload(self):
        # deep_mlp is a harness preset but not a paper-scale cost-model spec.
        with pytest.raises(ScenarioError, match="paper workload"):
            ThroughputScenario(name="t", title="t", workloads=("deep_mlp",))

    def test_bad_worker_counts(self):
        with pytest.raises(ScenarioError, match=">= 1"):
            ThroughputScenario(
                name="t", title="t", workloads=("resnet101",), worker_counts=(0, 4)
            )

    def test_empty_worker_counts(self):
        with pytest.raises(ScenarioError, match="worker_counts"):
            ThroughputScenario(
                name="t", title="t", workloads=("resnet101",), worker_counts=()
            )
