"""Tests for the scenario registry and the built-in catalog."""

import pytest

from repro.scenarios import (
    REGISTRY,
    ScenarioError,
    ScenarioRegistry,
    SweepScenario,
    get_scenario,
    scenario_names,
)


def make_scenario(name="reg-test") -> SweepScenario:
    return SweepScenario(
        name=name, title="t", workload="resnet101", grid={"delta": (0.0,)},
        tags=("custom-tag",),
    )


class TestScenarioRegistry:
    def test_register_get_roundtrip(self):
        registry = ScenarioRegistry()
        scenario = registry.register(make_scenario())
        assert registry.get("reg-test") is scenario
        assert "reg-test" in registry
        assert len(registry) == 1

    def test_duplicate_name_rejected(self):
        registry = ScenarioRegistry()
        registry.register(make_scenario())
        with pytest.raises(ScenarioError, match="already registered"):
            registry.register(make_scenario())

    def test_non_scenario_rejected(self):
        with pytest.raises(ScenarioError, match="dataclass"):
            ScenarioRegistry().register({"name": "dict-not-scenario"})

    def test_unknown_name_lists_available(self):
        registry = ScenarioRegistry()
        registry.register(make_scenario())
        with pytest.raises(ScenarioError, match="reg-test"):
            registry.get("nope")

    def test_names_and_tag_filtering(self):
        registry = ScenarioRegistry()
        registry.register(make_scenario("b-second"))
        registry.register(make_scenario("a-first"))
        assert registry.names() == ["a-first", "b-second"]
        assert registry.names(tag="custom-tag") == ["a-first", "b-second"]
        assert registry.names(tag="missing") == []
        assert [s.name for s in registry.by_tag("custom-tag")] == ["a-first", "b-second"]

    def test_iteration_in_name_order(self):
        registry = ScenarioRegistry()
        registry.register(make_scenario("z"))
        registry.register(make_scenario("a"))
        assert [s.name for s in registry] == ["a", "z"]


class TestCatalog:
    def test_figure_scenarios_registered(self):
        names = scenario_names(tag="figure")
        assert "fig6-delta-sweep" in names
        assert "fig1a-throughput" in names
        assert "table1-comparison" in names
        assert "table1-comparison-full" in names

    def test_paper_scale_suite_covers_all_cluster_sizes(self):
        names = scenario_names(tag="paper-scale")
        for n in (64, 128, 256):
            assert f"deep-mlp-delta-n{n}" in names
            assert f"transformer-delta-n{n}" in names

    def test_paper_scale_sweeps_verify_endpoints(self):
        for name in scenario_names(tag="paper-scale"):
            scenario = get_scenario(name)
            assert scenario.verify_endpoints, name
            assert scenario.fixed["aggregation"] == "grad"
            assert scenario.fixed["sync_on_first_step"] is False

    def test_example_delta_sweeps_cover_every_workload(self):
        from repro.harness.experiment import WORKLOAD_PRESETS

        names = scenario_names(tag="example")
        for workload in WORKLOAD_PRESETS:
            assert f"delta-sweep-{workload}" in names

    def test_pooled_scenario_uses_pool(self):
        scenario = get_scenario("deep-mlp-delta-n64-pooled")
        assert scenario.pool_workers > 0
        assert "pool" in scenario.tags

    def test_global_registry_is_catalog_backed(self):
        assert "fig6-delta-sweep" in scenario_names()
        assert "fig6-delta-sweep" in REGISTRY

    def test_registry_populated_on_package_import(self):
        # Direct REGISTRY access (no get_scenario/scenario_names first) sees
        # the built-ins: the catalog loads with the package.
        import importlib
        import subprocess
        import sys

        importlib.import_module("repro.scenarios")
        code = (
            "from repro.scenarios import REGISTRY; "
            "assert len(REGISTRY) > 0, 'catalog not loaded with the package'"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_builtin_name_collision_fails_at_register_time(self):
        from repro.scenarios import register_scenario

        with pytest.raises(ScenarioError, match="already registered"):
            register_scenario(make_scenario("quickstart"))
