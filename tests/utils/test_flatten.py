"""Tests for parameter-tree flatten/unflatten helpers."""

import numpy as np
import pytest

from repro.utils.flatten import (
    WIRE_DTYPE_BYTES,
    flatten_arrays,
    total_bytes,
    total_size,
    tree_map,
    tree_zip_map,
    unflatten_vector,
)


class TestFlattenUnflatten:
    def test_roundtrip(self):
        tree = {"a": np.arange(6.0).reshape(2, 3), "b": np.array([7.0])}
        vec, spec = flatten_arrays(tree)
        rebuilt = unflatten_vector(vec, spec)
        for name in tree:
            np.testing.assert_array_equal(rebuilt[name], tree[name])

    def test_flatten_preserves_order(self):
        tree = {"w1": np.ones(2), "w2": np.full(3, 2.0)}
        vec, spec = flatten_arrays(tree)
        np.testing.assert_array_equal(vec, [1, 1, 2, 2, 2])
        assert [name for name, _ in spec] == ["w1", "w2"]

    def test_empty_tree(self):
        vec, spec = flatten_arrays({})
        assert vec.size == 0 and spec == []

    def test_unflatten_too_short_vector(self):
        tree = {"a": np.zeros((2, 2))}
        _, spec = flatten_arrays(tree)
        with pytest.raises(ValueError):
            unflatten_vector(np.zeros(3), spec)

    def test_unflatten_too_long_vector(self):
        tree = {"a": np.zeros(2)}
        _, spec = flatten_arrays(tree)
        with pytest.raises(ValueError):
            unflatten_vector(np.zeros(5), spec)

    def test_unflatten_returns_copies(self):
        tree = {"a": np.zeros(3)}
        vec, spec = flatten_arrays(tree)
        rebuilt = unflatten_vector(vec, spec)
        rebuilt["a"][0] = 9.0
        assert vec[0] == 0.0

    def test_empty_tree_roundtrip(self):
        vec, spec = flatten_arrays({})
        assert vec.dtype == np.float64
        assert unflatten_vector(vec, spec) == {}

    def test_scalar_zero_d_parameter_roundtrip(self):
        tree = {"scale": np.array(2.5), "w": np.ones(2)}
        vec, spec = flatten_arrays(tree)
        assert vec.size == 3
        rebuilt = unflatten_vector(vec, spec)
        assert rebuilt["scale"].shape == ()
        assert float(rebuilt["scale"]) == 2.5

    def test_dtype_normalized_to_float64(self):
        tree = {"a": np.ones(3, dtype=np.float32), "b": np.arange(2, dtype=np.int64)}
        vec, spec = flatten_arrays(tree)
        assert vec.dtype == np.float64
        rebuilt = unflatten_vector(vec, spec)
        assert all(arr.dtype == np.float64 for arr in rebuilt.values())
        np.testing.assert_array_equal(rebuilt["a"], np.ones(3))
        np.testing.assert_array_equal(rebuilt["b"], [0.0, 1.0])

    def test_roundtrip_values_bitexact(self):
        rng = np.random.default_rng(0)
        tree = {"w": rng.standard_normal((3, 4)), "b": rng.standard_normal(4)}
        vec, spec = flatten_arrays(tree)
        rebuilt = unflatten_vector(vec, spec)
        for name in tree:
            np.testing.assert_array_equal(rebuilt[name], tree[name])


class TestTreeOps:
    def test_tree_map(self):
        tree = {"a": np.ones(2), "b": np.ones(3)}
        doubled = tree_map(lambda x: 2 * x, tree)
        np.testing.assert_array_equal(doubled["a"], 2.0)

    def test_tree_zip_map(self):
        left = {"a": np.ones(2)}
        right = {"a": np.full(2, 3.0)}
        summed = tree_zip_map(np.add, left, right)
        np.testing.assert_array_equal(summed["a"], 4.0)

    def test_tree_zip_map_key_mismatch(self):
        with pytest.raises(KeyError):
            tree_zip_map(np.add, {"a": np.ones(1)}, {"b": np.ones(1)})

    def test_total_size_and_bytes(self):
        tree = {"a": np.zeros((2, 3)), "b": np.zeros(4)}
        assert total_size(tree) == 10
        assert total_bytes(tree) == 40
        assert total_bytes(tree, dtype_bytes=8) == 80

    def test_wire_dtype_constant_shared(self):
        """One dtype-width constant drives every byte-accounting site."""
        from repro.comm.backend import InProcessBackend
        from repro.compression.base import CompressedPayload

        tree = {"a": np.zeros(10)}
        assert total_bytes(tree) == 10 * WIRE_DTYPE_BYTES
        assert InProcessBackend.DTYPE_BYTES == WIRE_DTYPE_BYTES
        payload = CompressedPayload(data={}, original_size=10, compressed_bytes=1.0)
        assert payload.original_bytes == 10 * WIRE_DTYPE_BYTES
