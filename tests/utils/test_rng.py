"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import (
    SeedSequenceFactory,
    choice_without_replacement,
    derive_worker_seed,
    new_rng,
    spawn_rngs,
)


class TestNewRng:
    def test_same_seed_same_stream(self):
        a = new_rng(7).standard_normal(5)
        b = new_rng(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(3)
        rng = new_rng(seq)
        assert isinstance(rng, np.random.Generator)


class TestSpawnRngs:
    def test_spawned_streams_differ(self):
        rngs = spawn_rngs(0, 4)
        draws = [r.standard_normal(3) for r in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_reproducible_across_calls(self):
        a = [r.standard_normal(2) for r in spawn_rngs(1, 3)]
        b = [r.standard_normal(2) for r in spawn_rngs(1, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count_ok(self):
        assert spawn_rngs(0, 0) == []


class TestSeedSequenceFactory:
    def test_children_are_distinct(self):
        factory = SeedSequenceFactory(0)
        g1, g2 = factory.generator(), factory.generator()
        assert not np.allclose(g1.standard_normal(4), g2.standard_normal(4))

    def test_spawn_counter(self):
        factory = SeedSequenceFactory(0)
        factory.generators(5)
        assert factory.spawned == 5


class TestHelpers:
    def test_derive_worker_seed_stable(self):
        assert derive_worker_seed(42, 3) == derive_worker_seed(42, 3)

    def test_derive_worker_seed_differs_by_worker(self):
        assert derive_worker_seed(42, 0) != derive_worker_seed(42, 1)

    def test_derive_worker_seed_rejects_negative(self):
        with pytest.raises(ValueError):
            derive_worker_seed(42, -1)

    def test_choice_without_replacement_unique(self):
        rng = new_rng(0)
        picked = choice_without_replacement(rng, list(range(10)), 5)
        assert len(set(picked.tolist())) == 5

    def test_choice_without_replacement_too_many(self):
        with pytest.raises(ValueError):
            choice_without_replacement(new_rng(0), [1, 2], 3)
