"""Tests for checkpoint serialization."""

import numpy as np
import pytest

from repro.nn.models import MLP
from repro.utils.serialization import load_checkpoint, load_model, save_checkpoint, save_model


class TestCheckpointRoundtrip:
    def test_state_roundtrip(self, tmp_path):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(4)}
        path = save_checkpoint(tmp_path / "ckpt", state, metadata={"step": 7})
        loaded, meta = load_checkpoint(path)
        for name in state:
            np.testing.assert_array_equal(loaded[name], state[name])
        assert meta["step"] == 7

    def test_npz_suffix_appended(self, tmp_path):
        path = save_checkpoint(tmp_path / "model", {"w": np.zeros(2)})
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x", {"__checkpoint_meta__": np.zeros(1)})

    def test_empty_metadata(self, tmp_path):
        path = save_checkpoint(tmp_path / "x", {"w": np.ones(3)})
        _, meta = load_checkpoint(path)
        assert meta == {}


class TestModelCheckpoint:
    def test_model_roundtrip(self, tmp_path):
        model = MLP((6, 8, 3), rng=np.random.default_rng(0))
        path = save_model(tmp_path / "mlp", model, metadata={"epoch": 2})
        fresh = MLP((6, 8, 3), rng=np.random.default_rng(99))
        meta = load_model(path, fresh)
        assert meta["epoch"] == 2
        assert meta["num_parameters"] == model.num_parameters()
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(fresh.state_dict()[name], value)

    def test_loading_into_mismatched_model_fails(self, tmp_path):
        model = MLP((6, 8, 3), rng=np.random.default_rng(0))
        path = save_model(tmp_path / "mlp", model)
        other = MLP((6, 16, 3), rng=np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_model(path, other)
