"""Tests for timing helpers."""

import time

import pytest

from repro.utils.timers import StepTimer, Timer


class TestTimer:
    def test_context_manager_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005

    def test_manual_start_stop(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        elapsed = t.stop()
        assert elapsed > 0

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestStepTimer:
    def test_accumulates_buckets(self):
        st = StepTimer()
        st.add("compute", 1.0)
        st.add("compute", 2.0)
        st.add("comm", 0.5)
        assert st.total("compute") == 3.0
        assert st.mean("compute") == 1.5
        assert st.buckets() == ["comm", "compute"]

    def test_unknown_bucket_is_zero(self):
        st = StepTimer()
        assert st.total("nothing") == 0.0
        assert st.mean("nothing") == 0.0

    def test_as_dict(self):
        st = StepTimer()
        st.add("x", 1.0)
        assert st.as_dict() == {"x": 1.0}
