"""Tests for the BSP, FedAvg, SSP and local-SGD baseline trainers."""

import numpy as np
import pytest

from tests.conftest import make_small_cluster

from repro.algorithms.bsp import BSPTrainer
from repro.algorithms.fedavg import FedAvgTrainer
from repro.algorithms.localsgd import LocalSGDTrainer
from repro.algorithms.ssp import SSPTrainer


class TestBSP:
    def test_replicas_stay_identical(self):
        cluster = make_small_cluster()
        BSPTrainer(cluster, eval_every=100).run(8)
        assert cluster.replica_divergence() == pytest.approx(0.0, abs=1e-12)

    def test_lssr_is_zero(self):
        cluster = make_small_cluster()
        result = BSPTrainer(cluster, eval_every=100).run(8)
        assert result.lssr == 0.0

    def test_syncs_every_step(self):
        cluster = make_small_cluster()
        BSPTrainer(cluster, eval_every=100).run(6)
        assert cluster.backend.record.calls["allreduce"] == 6

    def test_learns_the_task(self):
        cluster = make_small_cluster(train_samples=512)
        result = BSPTrainer(cluster, eval_every=20).run(80)
        assert result.final_metric > 0.5

    def test_equivalent_to_single_worker_large_batch(self):
        """BSP over N workers with batch b should match 1 worker with batch N*b
        when the data order is aligned — here we only check both learn to the
        same accuracy ballpark (stochastic equivalence)."""
        multi = make_small_cluster(num_workers=4, batch_size=8, seed=11, train_samples=512)
        single = make_small_cluster(num_workers=1, batch_size=32, seed=11, train_samples=512)
        multi_res = BSPTrainer(multi, eval_every=30).run(60)
        single_res = BSPTrainer(single, eval_every=30).run(60)
        assert abs(multi_res.final_metric - single_res.final_metric) < 0.3


class TestLocalSGD:
    def test_sync_period_respected(self):
        cluster = make_small_cluster()
        trainer = LocalSGDTrainer(cluster, sync_period=5, eval_every=100)
        trainer.run(15)
        assert trainer.lssr_tracker.sync_steps == 3
        assert trainer.lssr_tracker.local_steps == 12

    def test_lssr_matches_period(self):
        cluster = make_small_cluster()
        trainer = LocalSGDTrainer(cluster, sync_period=4, eval_every=100)
        result = trainer.run(16)
        assert result.lssr == pytest.approx(0.75)

    def test_replicas_identical_right_after_sync(self):
        cluster = make_small_cluster()
        trainer = LocalSGDTrainer(cluster, sync_period=5, eval_every=100)
        trainer.run(5)
        assert cluster.replica_divergence() == pytest.approx(0.0, abs=1e-12)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            LocalSGDTrainer(make_small_cluster(), sync_period=0)

    def test_describe(self):
        trainer = LocalSGDTrainer(make_small_cluster(), sync_period=7)
        assert trainer.describe() == "local_sgd(H=7)"


class TestFedAvg:
    def test_sync_interval_from_epoch_fraction(self):
        cluster = make_small_cluster(train_samples=256, batch_size=16)
        trainer = FedAvgTrainer(cluster, participation=1.0, sync_factor=0.25, eval_every=100)
        steps_per_epoch = cluster.workers[0].loader.steps_per_epoch
        assert trainer.sync_interval == max(int(round(0.25 * steps_per_epoch)), 1)

    def test_aggregation_rounds_counted(self):
        cluster = make_small_cluster()
        trainer = FedAvgTrainer(cluster, participation=1.0, sync_factor=0.25, eval_every=100)
        trainer.run(trainer.sync_interval * 3)
        assert trainer.aggregation_rounds == 3

    def test_partial_participation_selects_subset(self):
        cluster = make_small_cluster(num_workers=8)
        trainer = FedAvgTrainer(cluster, participation=0.5, sync_factor=1.0, eval_every=100)
        participants = trainer._select_participants()
        assert len(participants) == 4
        assert len(set(participants)) == 4

    def test_high_lssr(self):
        cluster = make_small_cluster()
        trainer = FedAvgTrainer(cluster, participation=1.0, sync_factor=1.0, eval_every=100)
        result = trainer.run(trainer.sync_interval * 2)
        assert result.lssr > 0.5

    def test_global_state_comes_from_ps_after_rounds(self):
        cluster = make_small_cluster()
        trainer = FedAvgTrainer(cluster, participation=1.0, sync_factor=0.25, eval_every=100)
        trainer.run(trainer.sync_interval)
        state = trainer.global_state()
        ps_state = cluster.ps.pull()
        for name in state:
            np.testing.assert_array_equal(state[name], ps_state[name])

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            FedAvgTrainer(make_small_cluster(), participation=0.0)
        with pytest.raises(ValueError):
            FedAvgTrainer(make_small_cluster(), sync_factor=1.5)

    def test_describe(self):
        trainer = FedAvgTrainer(make_small_cluster(), participation=0.5, sync_factor=0.125)
        assert trainer.describe() == "fedavg(C=0.5, E=0.125)"


class TestSSP:
    def test_runs_and_reports(self):
        cluster = make_small_cluster()
        result = SSPTrainer(cluster, staleness=100, eval_every=100).run(10)
        assert result.iterations == 10
        assert np.isfinite(result.final_metric)

    def test_ps_clocks_advance_uniformly_in_lockstep(self):
        cluster = make_small_cluster()
        trainer = SSPTrainer(cluster, staleness=100, eval_every=100)
        trainer.run(6)
        np.testing.assert_array_equal(cluster.ps.worker_clocks, 6)

    def test_staleness_never_exceeds_bound_plus_one(self):
        cluster = make_small_cluster()
        trainer = SSPTrainer(cluster, staleness=2, eval_every=100)
        trainer.run(10)
        for worker in cluster.workers:
            assert cluster.ps.staleness(worker.worker_id) <= 3

    def test_cheaper_per_step_than_bsp(self):
        """SSP avoids the per-step barrier, so simulated time should be lower."""
        bsp_cluster = make_small_cluster(seed=4)
        ssp_cluster = make_small_cluster(seed=4)
        BSPTrainer(bsp_cluster, eval_every=100).run(10)
        SSPTrainer(ssp_cluster, staleness=100, eval_every=100).run(10)
        assert ssp_cluster.clock.elapsed < bsp_cluster.clock.elapsed

    def test_global_state_is_ps_state(self):
        cluster = make_small_cluster()
        trainer = SSPTrainer(cluster, staleness=100, eval_every=100)
        trainer.run(3)
        state = trainer.global_state()
        ps_state = cluster.ps.pull()
        for name in state:
            np.testing.assert_array_equal(state[name], ps_state[name])

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            SSPTrainer(make_small_cluster(), staleness=-1)

    def test_describe(self):
        assert SSPTrainer(make_small_cluster(), staleness=200).describe() == "ssp(s=200)"
