"""Tests for the shared run loop, result records and convergence stopping."""

import numpy as np
import pytest

from tests.conftest import make_small_cluster

from repro.algorithms.base import TrainingResult
from repro.algorithms.bsp import BSPTrainer
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.metrics.convergence import ConvergenceDetector
from repro.optim.schedules import MultiStepDecay


class TestRunLoop:
    def test_history_recorded_at_eval_interval(self):
        cluster = make_small_cluster()
        result = BSPTrainer(cluster, eval_every=5).run(20)
        assert len(result.history) == 4
        assert [p.step for p in result.history] == [5, 10, 15, 20]

    def test_final_step_always_evaluated(self):
        cluster = make_small_cluster()
        result = BSPTrainer(cluster, eval_every=7).run(10)
        assert result.history[-1].step == 10

    def test_history_sim_time_monotone(self):
        cluster = make_small_cluster()
        result = BSPTrainer(cluster, eval_every=3).run(12)
        times = [p.sim_time for p in result.history]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_lr_schedule_applied(self):
        cluster = make_small_cluster()
        schedule = MultiStepDecay(0.1, milestones=[5], gamma=0.1)
        trainer = BSPTrainer(cluster, lr_schedule=schedule, eval_every=100)
        trainer.run(10)
        assert cluster.workers[0].optimizer.lr == pytest.approx(0.01)

    def test_convergence_detector_stops_early(self):
        cluster = make_small_cluster()
        detector = ConvergenceDetector(higher_is_better=True, patience=1, min_delta=2.0)
        result = BSPTrainer(cluster, eval_every=2).run(50, convergence=detector)
        assert result.iterations < 50

    def test_invalid_run_args(self):
        trainer = BSPTrainer(make_small_cluster())
        with pytest.raises(ValueError):
            trainer.run(0)
        with pytest.raises(ValueError):
            BSPTrainer(make_small_cluster(), eval_every=0)

    def test_communication_bytes_reported(self):
        cluster = make_small_cluster()
        result = BSPTrainer(cluster, eval_every=100).run(5)
        assert result.communication_bytes > 0


class TestTrainingResult:
    def _result(self, metric, sim_time, metric_name="accuracy"):
        return TrainingResult(
            algorithm="x", metric_name=metric_name, iterations=10,
            sim_time_seconds=sim_time, final_metric=metric, best_metric=metric,
            final_loss=0.1, lssr=0.5, communication_bytes=0.0,
        )

    def test_speedup_over(self):
        fast = self._result(0.9, 10.0)
        slow = self._result(0.9, 40.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)

    def test_speedup_requires_positive_time(self):
        broken = self._result(0.9, 0.0)
        with pytest.raises(ValueError):
            broken.speedup_over(self._result(0.9, 1.0))

    def test_convergence_difference_accuracy(self):
        better = self._result(0.95, 1.0)
        baseline = self._result(0.90, 1.0)
        assert better.convergence_difference(baseline) == pytest.approx(0.05)

    def test_convergence_difference_perplexity_sign_flipped(self):
        better = self._result(88.0, 1.0, metric_name="perplexity")
        baseline = self._result(90.0, 1.0, metric_name="perplexity")
        assert better.convergence_difference(baseline) == pytest.approx(2.0)

    def test_higher_is_better_flag(self):
        assert self._result(0.9, 1.0).higher_is_better
        assert not self._result(90.0, 1.0, metric_name="perplexity").higher_is_better


class TestGlobalStateDefault:
    def test_default_global_state_is_replica_average(self):
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=1e9), eval_every=100)
        trainer.run(4)
        state = trainer.global_state()
        avg = cluster.average_worker_states()
        for name in state:
            np.testing.assert_allclose(state[name], avg[name])
