"""Tests for the gradient-compression baselines (§II-D)."""

import numpy as np
import pytest

from repro.compression import (
    Compressor,
    FP16Compressor,
    PowerSGDCompressor,
    RandomKCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
    compression_error,
)


def _vector(size=1000, seed=0, scale=1.0):
    return scale * np.random.default_rng(seed).standard_normal(size)


ALL_COMPRESSORS = [
    TopKCompressor(ratio=0.1),
    RandomKCompressor(ratio=0.1, seed=0),
    SignSGDCompressor(),
    TernGradCompressor(seed=0),
    PowerSGDCompressor(rank=2, seed=0),
    FP16Compressor(),
]


class TestCommonContract:
    @pytest.mark.parametrize("compressor", ALL_COMPRESSORS, ids=lambda c: c.name)
    def test_roundtrip_preserves_length(self, compressor):
        vec = _vector()
        out = compressor.roundtrip(vec)
        assert out.shape == vec.shape

    @pytest.mark.parametrize("compressor", ALL_COMPRESSORS, ids=lambda c: c.name)
    def test_compression_saves_bytes(self, compressor):
        payload = compressor.compress(_vector())
        assert payload.compression_ratio > 1.0

    @pytest.mark.parametrize("compressor", ALL_COMPRESSORS, ids=lambda c: c.name)
    def test_rejects_empty_and_nonfinite(self, compressor):
        with pytest.raises(ValueError):
            compressor.compress(np.array([]))
        with pytest.raises(ValueError):
            compressor.compress(np.array([1.0, np.nan]))

    def test_identity_compressor_lossless(self):
        vec = _vector()
        np.testing.assert_array_equal(Compressor().roundtrip(vec), vec)

    def test_compression_error_helper(self):
        vec = _vector()
        assert compression_error(vec, vec) == 0.0
        assert compression_error(vec, np.zeros_like(vec)) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            compression_error(vec, vec[:10])


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        comp = TopKCompressor(ratio=0.01)
        vec = np.zeros(100)
        vec[[3, 50, 99]] = [5.0, -10.0, 1.0]
        out = comp.roundtrip(vec)
        assert out[50] == -10.0

    def test_sparsity_level(self):
        comp = TopKCompressor(ratio=0.05)
        out = comp.roundtrip(_vector(1000))
        assert np.count_nonzero(out) == 50

    def test_ratio_one_is_lossless(self):
        comp = TopKCompressor(ratio=1.0)
        vec = _vector(64)
        np.testing.assert_allclose(comp.roundtrip(vec), vec)

    def test_error_decreases_with_ratio(self):
        vec = _vector(2000)
        errors = [
            compression_error(vec, TopKCompressor(ratio=r).roundtrip(vec))
            for r in (0.01, 0.1, 0.5)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)


class TestRandomK:
    def test_unbiased_in_expectation(self):
        vec = np.ones(200)
        comp = RandomKCompressor(ratio=0.25, seed=0)
        reconstructions = [comp.roundtrip(vec) for _ in range(200)]
        mean = np.mean(reconstructions, axis=0)
        np.testing.assert_allclose(mean.mean(), 1.0, rtol=0.1)

    def test_sparsity(self):
        comp = RandomKCompressor(ratio=0.1, seed=0)
        out = comp.roundtrip(_vector(500))
        assert np.count_nonzero(out) == 50

    def test_no_rescale_option(self):
        comp = RandomKCompressor(ratio=0.5, seed=0, rescale=False)
        vec = np.ones(10)
        out = comp.roundtrip(vec)
        assert set(np.unique(out)).issubset({0.0, 1.0})


class TestSignSGD:
    def test_reconstruction_signs_match(self):
        vec = _vector(500, seed=3)
        out = SignSGDCompressor().roundtrip(vec)
        nonzero = vec != 0
        np.testing.assert_array_equal(np.sign(out[nonzero]), np.sign(vec[nonzero]))

    def test_scale_is_mean_abs(self):
        vec = np.array([1.0, -2.0, 3.0])
        payload = SignSGDCompressor().compress(vec)
        assert payload.data["scale"][0] == pytest.approx(2.0)

    def test_roughly_32x_compression(self):
        payload = SignSGDCompressor().compress(_vector(10_000))
        assert payload.compression_ratio > 25


class TestTernGrad:
    def test_levels_are_ternary(self):
        vec = _vector(500, seed=4)
        comp = TernGradCompressor(seed=0)
        payload = comp.compress(vec)
        assert set(np.unique(payload.data["ternary"])).issubset({-1, 0, 1})

    def test_unbiased_in_expectation(self):
        vec = np.full(50, 0.5)
        comp = TernGradCompressor(seed=0)
        recon = np.mean([comp.roundtrip(vec) for _ in range(300)], axis=0)
        np.testing.assert_allclose(recon.mean(), 0.5, rtol=0.15)

    def test_zero_vector_handled(self):
        out = TernGradCompressor(seed=0).roundtrip(np.zeros(10))
        np.testing.assert_array_equal(out, 0.0)


class TestPowerSGD:
    def test_low_rank_structure_well_approximated(self):
        """A rank-1 'gradient' should be reconstructed almost exactly."""
        u = np.random.default_rng(0).standard_normal(32)
        v = np.random.default_rng(1).standard_normal(32)
        vec = np.outer(u, v).ravel()
        comp = PowerSGDCompressor(rank=2, seed=0)
        comp.roundtrip(vec)          # warm start
        out = comp.roundtrip(vec)
        assert compression_error(vec, out) < 0.05

    def test_compression_ratio_grows_with_size(self):
        small = PowerSGDCompressor(rank=2, seed=0).compress(_vector(256))
        large = PowerSGDCompressor(rank=2, seed=0).compress(_vector(65536))
        assert large.compression_ratio > small.compression_ratio

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            PowerSGDCompressor(rank=0)


class TestFP16:
    def test_small_relative_error(self):
        vec = _vector(1000, scale=0.01)
        out = FP16Compressor().roundtrip(vec)
        assert compression_error(vec, out) < 1e-3

    def test_exactly_2x(self):
        payload = FP16Compressor().compress(_vector(100))
        assert payload.compression_ratio == pytest.approx(2.0)

    def test_clips_out_of_range(self):
        out = FP16Compressor().roundtrip(np.array([1e10, -1e10]))
        assert np.all(np.isfinite(out))
