"""Tests for BSP with gradient compression and error feedback."""

import pytest

from tests.conftest import make_small_cluster

from repro.algorithms.bsp import BSPTrainer
from repro.compression import SignSGDCompressor, TopKCompressor
from repro.compression.trainer import CompressedBSPTrainer


class TestCompressedBSP:
    def test_runs_and_reports_ratio(self):
        cluster = make_small_cluster()
        trainer = CompressedBSPTrainer(cluster, TopKCompressor(ratio=0.1), eval_every=100)
        result = trainer.run(10)
        assert result.extras["mean_compression_ratio"] > 1.0

    def test_replicas_stay_identical(self):
        cluster = make_small_cluster()
        trainer = CompressedBSPTrainer(cluster, SignSGDCompressor(), eval_every=100)
        trainer.run(6)
        assert cluster.replica_divergence() == pytest.approx(0.0, abs=1e-12)

    def test_cheaper_communication_than_plain_bsp(self):
        plain = make_small_cluster(seed=1)
        compressed = make_small_cluster(seed=1)
        BSPTrainer(plain, eval_every=100).run(10)
        CompressedBSPTrainer(compressed, TopKCompressor(ratio=0.01), eval_every=100).run(10)
        assert compressed.clock.elapsed < plain.clock.elapsed

    def test_compressed_sync_not_discounted_again_by_transport_dtype(self):
        # The FP16 compressor already prices the half-precision wire; a
        # float16 transport dtype on the same cluster must not halve the
        # simulated sync time a second time.
        from repro.compression import FP16Compressor

        default_wire = make_small_cluster(seed=2)
        fp16_wire = make_small_cluster(seed=2, transport_dtype="float16")
        CompressedBSPTrainer(default_wire, FP16Compressor(), eval_every=100).run(5)
        CompressedBSPTrainer(fp16_wire, FP16Compressor(), eval_every=100).run(5)
        assert fp16_wire.clock.elapsed == pytest.approx(default_wire.clock.elapsed)

    def test_still_learns_with_error_feedback(self):
        cluster = make_small_cluster(train_samples=512)
        trainer = CompressedBSPTrainer(
            cluster, TopKCompressor(ratio=0.25), eval_every=20, error_feedback=True
        )
        result = trainer.run(80)
        assert result.final_metric > 0.5

    def test_error_feedback_residuals_stored(self):
        cluster = make_small_cluster()
        trainer = CompressedBSPTrainer(cluster, TopKCompressor(ratio=0.05), eval_every=100)
        trainer.run(3)
        assert all(res is not None for res in trainer._residuals)

    def test_no_error_feedback_keeps_residuals_empty(self):
        cluster = make_small_cluster()
        trainer = CompressedBSPTrainer(
            cluster, TopKCompressor(ratio=0.05), eval_every=100, error_feedback=False
        )
        trainer.run(3)
        assert all(res is None for res in trainer._residuals)

    def test_describe_includes_compressor_name(self):
        trainer = CompressedBSPTrainer(make_small_cluster(), SignSGDCompressor())
        assert trainer.describe() == "bsp+signsgd"

    def test_lssr_zero_like_bsp(self):
        cluster = make_small_cluster()
        result = CompressedBSPTrainer(cluster, SignSGDCompressor(), eval_every=100).run(5)
        assert result.lssr == 0.0
