"""End-to-end run-history parity: direct, CLI, and service surfaces.

The PR's acceptance criterion: ``repro scenario history`` and the service's
``GET /v1/history/<scenario>`` must return the SAME trend series for a
scenario run once directly and once through the service — both render
:func:`repro.results.history_payload` over the same store.
"""

import json

import pytest

from repro.api import RunRequest, run as api_run
from repro.harness.cli import main as cli_main
from repro.results import ResultsStore, history_payload
from repro.service import ExperimentService, QuotaManager, ServiceClient, ServiceClientError


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@pytest.fixture()
def results_db(tmp_path):
    return str(tmp_path / "results.sqlite3")


@pytest.fixture()
def service(results_db):
    svc = ExperimentService(
        port=0, workers=2, results_db=results_db,
        quotas=QuotaManager(max_active_jobs=None, rate=None),
    )
    svc.start()
    try:
        yield svc
    finally:
        svc.stop()


class TestDirectAndServiceLandInOneStore:
    def test_same_series_from_cli_and_http(self, service, results_db, tmp_path):
        # run once directly (same record_to sink the task manager uses) ...
        api_run(
            RunRequest(kind="scenario", scenario="quickstart", iterations=20),
            record_to=service.results,
        )
        # ... and once through the service
        client = ServiceClient(service.url, tenant="history")
        job = client.submit("scenario", {"name": "quickstart", "iterations": 20})
        assert client.wait(job["id"], timeout=180)["state"] == "DONE"

        http = client.history("quickstart")
        assert len(http["series"]["lssr"]) == 2
        # deterministic training: both runs produced identical metric values
        values = {point["value"] for point in http["series"]["lssr"]}
        assert len(values) == 1

        json_path = tmp_path / "history.json"
        assert cli_main([
            "scenario", "history", "quickstart",
            "--store", results_db, "--json", str(json_path),
        ]) == 0
        cli_payload = json.loads(json_path.read_text())
        assert canonical(cli_payload) == canonical(http)

        direct = history_payload(service.results, "quickstart")
        assert canonical(direct) == canonical(http)

    def test_history_runs_pagination_and_scenario_index(self, service):
        client = ServiceClient(service.url)
        for _ in range(3):
            job = client.submit("scenario", {"name": "quickstart", "iterations": 20})
            assert client.wait(job["id"], timeout=180)["state"] == "DONE"
        assert client.history_scenarios()["scenarios"] == ["quickstart"]
        page = client.history_runs("quickstart", limit=2)
        assert len(page["runs"]) == 2 and "next_marker" in page
        rest = client.history_runs("quickstart", marker=page["next_marker"])
        assert len(rest["runs"]) == 1 and "next_marker" not in rest
        ids = [run["run_id"] for run in page["runs"] + rest["runs"]]
        assert len(set(ids)) == 3

    def test_metrics_and_last_query_params(self, service):
        client = ServiceClient(service.url)
        for _ in range(2):
            job = client.submit("scenario", {"name": "quickstart", "iterations": 20})
            assert client.wait(job["id"], timeout=180)["state"] == "DONE"
        body = client.history("quickstart", metrics="lssr", last=1)
        assert body["metrics"] == ["lssr"]
        assert len(body["series"]["lssr"]) == 1


class TestHistoryErrors:
    def test_unknown_scenario_is_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceClientError) as err:
            client.history("never-ran")
        assert err.value.status == 404

    def test_bad_last_is_400(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceClientError) as err:
            client.history("quickstart", last="zero")
        assert err.value.status == 400

    def test_disabled_history_is_404(self):
        svc = ExperimentService(port=0, workers=1)
        svc.start()
        try:
            client = ServiceClient(svc.url)
            assert svc.controller.describe()["history_enabled"] is False
            with pytest.raises(ServiceClientError) as err:
                client.history_scenarios()
            assert err.value.status == 404
        finally:
            svc.stop()

    def test_cli_history_missing_store_exits_2(self, tmp_path, capsys):
        rc = cli_main(["scenario", "history",
                       "--store", str(tmp_path / "absent.sqlite3")])
        assert rc == 2
        assert "no results store" in capsys.readouterr().err
