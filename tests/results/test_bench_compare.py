"""The unified benchmark-comparison API and its `repro bench` CLI."""

import json

import pytest

from repro.harness.cli import main as cli_main
from repro.results import ResultsStore
from repro.results.compare import (
    BENCH_KINDS,
    bench_scenario_key,
    compare_store,
    record_bench_file,
)


@pytest.fixture(autouse=True)
def no_step_summary(monkeypatch):
    """Keep test comparisons out of a real CI job summary."""
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)


def engine_file(tmp_path, name, steps_per_sec):
    path = tmp_path / name
    path.write_text(json.dumps(
        {"smoke": {"steps_per_sec": {"bsp": steps_per_sec}}}
    ))
    return path


def service_file(tmp_path, name, p99):
    path = tmp_path / name
    path.write_text(json.dumps(
        {"load": {"submit_latency_ms": {"p50": p99 / 2, "p99": p99},
                  "e2e_latency_ms": {"p50": p99, "p99": p99 * 2},
                  "jobs_per_sec": 5.0, "completed_jobs": 10,
                  "total_jobs": 10, "failures": 0}}
    ))
    return path


class TestCompareStore:
    def test_records_then_assesses_rolling_history(self, tmp_path):
        store = ResultsStore()
        for value in (100.0, 101.0, 99.0, 100.0, 100.0):
            record_bench_file(
                store, "engine", engine_file(tmp_path, f"b{value}.json", value)
            )
        # a single 30% blip: out of band, but not confirmed
        blip = engine_file(tmp_path, "blip.json", 70.0)
        markdown, failed = compare_store(store, "engine", blip)
        assert not failed
        assert "out of band (unconfirmed)" in markdown
        # the second consecutive out-of-band run confirms
        again = engine_file(tmp_path, "again.json", 70.0)
        markdown, failed = compare_store(store, "engine", again)
        assert failed
        assert "CONFIRMED REGRESSION" in markdown

    def test_fresh_store_reports_insufficient_history(self, tmp_path):
        store = ResultsStore()
        markdown, failed = compare_store(
            store, "engine", engine_file(tmp_path, "first.json", 100.0)
        )
        assert not failed
        assert "insufficient history" in markdown

    def test_no_record_leaves_the_store_untouched(self, tmp_path):
        store = ResultsStore()
        record_bench_file(store, "engine", engine_file(tmp_path, "a.json", 100.0))
        compare_store(
            store, "engine", engine_file(tmp_path, "b.json", 90.0), record=False
        )
        runs, _ = store.runs(scenario=bench_scenario_key("engine"))
        assert len(runs) == 1

    def test_service_kind_gates_lower_is_better(self, tmp_path):
        store = ResultsStore()
        for p99 in (10.0, 10.1, 9.9, 10.0, 10.0):
            record_bench_file(
                store, "service", service_file(tmp_path, f"s{p99}.json", p99)
            )
        for i in range(2):
            markdown, failed = compare_store(
                store, "service", service_file(tmp_path, f"bad{i}.json", 20.0)
            )
        assert failed

    def test_unknown_kind_raises(self, tmp_path):
        with pytest.raises(KeyError, match="unknown bench kind"):
            compare_store(ResultsStore(), "nope", engine_file(tmp_path, "x.json", 1.0))
        assert set(BENCH_KINDS) == {"engine", "scenarios", "service"}


class TestBenchCli:
    def test_two_point_compare_passes_and_fails(self, tmp_path, capsys):
        base = engine_file(tmp_path, "base.json", 100.0)
        good = engine_file(tmp_path, "good.json", 95.0)
        bad = engine_file(tmp_path, "bad.json", 50.0)
        assert cli_main(["bench", "compare", "engine", str(base), str(good)]) == 0
        assert cli_main(["bench", "compare", "engine", str(base), str(bad)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_store_only_compare_single_positional_is_current(self, tmp_path, capsys):
        db = str(tmp_path / "bench.sqlite3")
        for value in (100.0, 100.0, 100.0):
            assert cli_main([
                "bench", "compare", "engine",
                str(engine_file(tmp_path, f"v{value}.json", value)),
                "--store", db,
            ]) == 0
        out = capsys.readouterr().out
        assert "rolling baseline" in out
        runs, _ = ResultsStore(db).runs(scenario="bench-engine", limit=10)
        assert len(runs) == 3

    def test_combined_mode_runs_both_gates(self, tmp_path):
        db = str(tmp_path / "bench.sqlite3")
        base = engine_file(tmp_path, "base.json", 100.0)
        cur = engine_file(tmp_path, "cur.json", 99.0)
        assert cli_main([
            "bench", "compare", "engine", str(base), str(cur), "--store", db,
        ]) == 0

    def test_missing_current_fails_missing_baseline_passes(self, tmp_path):
        base = engine_file(tmp_path, "base.json", 100.0)
        assert cli_main([
            "bench", "compare", "engine", str(base), str(tmp_path / "absent.json"),
        ]) == 1
        assert cli_main([
            "bench", "compare", "engine", str(tmp_path / "noexist.json"), str(base),
        ]) == 0

    def test_record_subcommand_appends(self, tmp_path, capsys):
        db = str(tmp_path / "bench.sqlite3")
        path = engine_file(tmp_path, "rows.json", 42.0)
        assert cli_main([
            "bench", "record", "engine", str(path), "--store", db, "--tag", "ci",
        ]) == 0
        assert "recorded engine rows" in capsys.readouterr().out
        runs, _ = ResultsStore(db).runs(scenario="bench-engine", tag="ci")
        assert len(runs) == 1


class TestDeprecatedShim:
    def test_shim_reexports_and_forwards(self, tmp_path, capsys):
        from benchmarks import compare_bench

        for name in ("compare", "load_metrics", "load_scenario_metrics",
                     "stacked_speedup_table", "load_service_metrics",
                     "service_throughput_line"):
            assert getattr(compare_bench, name) is not None
        base = engine_file(tmp_path, "base.json", 100.0)
        with pytest.warns(DeprecationWarning, match="repro bench compare"):
            rc = compare_bench.main([str(base), str(base)])
        assert rc == 0
        assert "baseline vs current" in capsys.readouterr().out
