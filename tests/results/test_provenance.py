"""Run identity: config hashing, git sha resolution, api.run stamping."""

import pytest

from repro.api import RunRequest, run as api_run
from repro.results import ResultsStore, build_provenance, config_hash
from repro.results import provenance as provenance_module
from repro.results.provenance import Provenance, current_git_sha, new_run_id


@pytest.fixture()
def fresh_sha_cache(monkeypatch):
    """Reset the module-level git-sha cache around a test."""
    monkeypatch.setattr(provenance_module, "_git_sha_cache", None)
    yield
    monkeypatch.setattr(provenance_module, "_git_sha_cache", None)


class TestConfigHash:
    def test_key_order_does_not_matter(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_different_configs_hash_differently(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_non_json_values_fall_back_to_str(self):
        assert config_hash({"dtype": float}) == config_hash({"dtype": float})

    def test_hash_is_short_hex(self):
        digest = config_hash({"a": 1})
        assert len(digest) == 16
        int(digest, 16)


class TestGitSha:
    def test_env_override_wins(self, fresh_sha_cache, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "abc123")
        assert current_git_sha() == "abc123"

    def test_cached_after_first_lookup(self, fresh_sha_cache, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "first")
        assert current_git_sha() == "first"
        monkeypatch.setenv("REPRO_GIT_SHA", "second")
        assert current_git_sha() == "first"


class TestProvenance:
    def test_round_trips_through_dict(self):
        prov = build_provenance({"a": 1}, clock=lambda: 5.0)
        assert Provenance.from_dict(prov.to_dict()) == prov
        assert prov.started_at == 5.0

    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()


class TestApiStamping:
    def test_api_run_stamps_provenance_once(self):
        out = api_run(kind="throughput", options={"workloads": ["resnet101"],
                                                  "worker_counts": [1, 2]})
        assert out.run_id and out.config_hash and out.git_sha
        assert out.meta["provenance"]["run_id"] == out.run_id
        payload = out.to_dict()
        assert payload["provenance"]["config_hash"] == out.config_hash

    def test_same_request_same_config_hash_distinct_run_ids(self):
        request = {"kind": "throughput",
                   "options": {"workloads": ["resnet101"], "worker_counts": [1]}}
        a = api_run(RunRequest.from_dict(dict(request)))
        b = api_run(RunRequest.from_dict(dict(request)))
        assert a.config_hash == b.config_hash
        assert a.run_id != b.run_id

    def test_record_to_appends_to_the_store(self):
        store = ResultsStore()
        out = api_run(
            RunRequest(kind="throughput",
                       options={"workloads": ["resnet101"], "worker_counts": [1, 2]}),
            record_to=store,
        )
        run = store.get_run(out.run_id)
        assert run.config_hash == out.config_hash
        assert run.num_records == len(out.records)
        records, total = store.get_records(out.run_id)
        assert total == len(out.records)
        assert records == out.records
