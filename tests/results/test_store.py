"""ResultsStore: schema versioning, appends, pagination, trends.

The store is the repo's perf memory, so these tests pin the durability
contracts: loud failure on a schema-version mismatch, transactional appends
that stay consistent under task-manager-style thread concurrency, and the
Trove-style pagination semantics shared with the job store.
"""

import sqlite3
import threading

import pytest

from repro.results import ResultsStore, SCHEMA_VERSION, build_provenance, open_store


def record(value, label="run", **params):
    return {"params": params, "label": label, "metrics": {"steps_per_sec": value}}


class TestSchemaVersion:
    def test_round_trips_on_disk(self, tmp_path):
        path = str(tmp_path / "results.sqlite3")
        with ResultsStore(path) as store:
            store.append("quickstart", "scenario", [record(10.0)])
        with ResultsStore(path) as store:
            assert store.scenarios() == ["quickstart"]

    def test_mismatched_version_fails_loudly(self, tmp_path):
        path = str(tmp_path / "results.sqlite3")
        ResultsStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE schema_version SET version = ?", (SCHEMA_VERSION + 1,))
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="schema version"):
            ResultsStore(path)

    def test_uses_wal_journal_mode(self, tmp_path):
        store = ResultsStore(str(tmp_path / "results.sqlite3"))
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        store.close()
        assert mode == "wal"


class TestAppend:
    def test_append_stores_provenance_and_records(self):
        store = ResultsStore()
        prov = build_provenance({"iterations": 8})
        run = store.append(
            "quickstart", "scenario", [record(10.0), record(11.0)],
            meta={"iterations": 8}, tags=["nightly"], provenance=prov,
        )
        assert run.run_id == prov.run_id
        assert run.config_hash == prov.config_hash
        assert run.num_records == 2
        assert run.tags == ["nightly"]
        records, total = store.get_records(run.run_id)
        assert total == 2
        assert records[0]["metrics"]["steps_per_sec"] == 10.0

    def test_append_builds_provenance_from_meta_when_absent(self):
        store = ResultsStore(clock=lambda: 123.0)
        a = store.append("s", "scenario", [record(1.0)], meta={"iterations": 8})
        b = store.append("s", "scenario", [record(2.0)], meta={"iterations": 8})
        c = store.append("s", "scenario", [record(3.0)], meta={"iterations": 9})
        assert a.config_hash == b.config_hash != c.config_hash
        assert a.run_id != b.run_id
        assert a.started_at == 123.0

    def test_concurrent_appends_from_worker_threads(self, tmp_path):
        """Task-manager-style concurrency: every append lands exactly once."""
        store = ResultsStore(str(tmp_path / "results.sqlite3"))
        per_thread, threads = 10, 8
        errors = []

        def worker(tid):
            try:
                for i in range(per_thread):
                    store.append(
                        "concurrent", "scenario",
                        [record(float(i), thread=tid)],
                        meta={"thread": tid, "i": i},
                    )
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []
        runs, next_marker = store.runs(scenario="concurrent", limit=per_thread * threads)
        assert next_marker is None
        assert len(runs) == per_thread * threads
        assert len({run.run_id for run in runs}) == per_thread * threads
        # seq ordering is a gapless chronological total order
        assert [run.seq for run in runs] == sorted(run.seq for run in runs)


class TestQueries:
    def make_store(self):
        store = ResultsStore(clock=iter(range(100)).__next__)
        for i in range(5):
            store.append(
                "sweep", "sweep",
                [record(10.0 + i, delta=0.0), record(20.0 + i, delta=1.0)],
                meta={"i": i}, tags=["nightly"] if i % 2 == 0 else ["adhoc"],
            )
        store.append("other", "scenario", [record(1.0)])
        return store

    def test_marker_pagination_walks_every_run_once(self):
        store = self.make_store()
        seen, marker = [], None
        while True:
            page, marker = store.runs(scenario="sweep", limit=2, marker=marker)
            seen.extend(run.run_id for run in page)
            if marker is None:
                break
        assert len(seen) == len(set(seen)) == 5

    def test_tag_filter_composes_with_pagination(self):
        store = self.make_store()
        runs, next_marker = store.runs(scenario="sweep", tag="nightly", limit=10)
        assert next_marker is None
        assert len(runs) == 3
        assert all("nightly" in run.tags for run in runs)

    def test_scenarios_and_metric_names(self):
        store = self.make_store()
        assert store.scenarios() == ["other", "sweep"]
        assert store.metric_names("sweep") == ["steps_per_sec"]

    def test_trend_means_over_records_and_where_restricts(self):
        store = self.make_store()
        points = store.trend("sweep", "steps_per_sec")
        assert [p["value"] for p in points] == [15.0, 16.0, 17.0, 18.0, 19.0]
        at_zero = store.trend("sweep", "steps_per_sec", where={"delta": 0.0})
        assert [p["value"] for p in at_zero] == [10.0, 11.0, 12.0, 13.0, 14.0]
        last_two = store.trend("sweep", "steps_per_sec", last=2)
        assert [p["value"] for p in last_two] == [18.0, 19.0]

    def test_get_records_offset_limit(self):
        store = self.make_store()
        run = store.runs(scenario="sweep", limit=1)[0][0]
        page, total = store.get_records(run.run_id, offset=1, limit=5)
        assert total == 2 and len(page) == 1
        assert page[0]["params"]["delta"] == 1.0

    def test_get_run_unknown_id_raises(self):
        with pytest.raises(KeyError):
            ResultsStore().get_run("nope")


class TestOpenStore:
    def test_path_is_owned_instance_is_not(self, tmp_path):
        handle, owns = open_store(str(tmp_path / "r.sqlite3"))
        assert owns
        handle.close()
        store = ResultsStore()
        same, owns = open_store(store)
        assert same is store and not owns
        store.close()
