"""Rolling-baseline detector math on synthetic trajectories.

The acceptance behaviour: a sustained 30% steps/sec drop must confirm, an
equal-magnitude single-point blip must NOT, and improvements never trip.
"""

import pytest

from repro.results import ResultsStore, assess_series, assess_trend


STEADY = [100.0, 101.0, 99.0, 100.0, 100.5, 99.5, 100.0, 100.0]


class TestAssessSeries:
    def test_sustained_30pct_regression_confirms(self):
        verdict = assess_series(STEADY + [70.0, 70.0], metric="steps_per_sec")
        assert verdict.confirmed
        assert verdict.consecutive >= 2
        assert verdict.delta == pytest.approx(-0.3, abs=0.05)

    def test_single_point_blip_does_not_confirm(self):
        """Equal-magnitude one-off dip: out of band once, never confirmed."""
        verdict = assess_series(STEADY + [70.0], metric="steps_per_sec")
        assert not verdict.confirmed
        assert verdict.consecutive == 1

    def test_blip_followed_by_recovery_resets_the_streak(self):
        verdict = assess_series(STEADY + [70.0, 100.0], metric="steps_per_sec")
        assert not verdict.confirmed
        assert verdict.consecutive == 0

    def test_improvement_never_trips(self):
        verdict = assess_series(STEADY + [150.0, 160.0], metric="steps_per_sec")
        assert not verdict.confirmed
        assert verdict.consecutive == 0
        assert verdict.delta > 0

    def test_lower_is_better_mirrors_direction(self):
        latencies = [10.0, 10.2, 9.9, 10.1, 10.0, 10.0]
        up = assess_series(latencies + [14.0, 14.0], lower_is_better=True)
        assert up.confirmed
        down = assess_series(latencies + [7.0, 7.0], lower_is_better=True)
        assert not down.confirmed

    def test_noise_band_scales_with_history_spread(self):
        """A noisy series tolerates swings a flat series would flag."""
        noisy = [100.0, 140.0, 80.0, 130.0, 90.0, 120.0]
        verdict = assess_series(noisy + [85.0, 85.0])
        assert not verdict.confirmed

    def test_insufficient_history_never_confirms(self):
        for series in ([], [100.0], [100.0, 50.0]):
            verdict = assess_series(series)
            assert verdict.insufficient_history
            assert not verdict.confirmed

    def test_min_consecutive_is_configurable(self):
        verdict = assess_series(STEADY + [70.0], min_consecutive=1)
        assert verdict.confirmed

    def test_to_dict_is_json_ready(self):
        import json

        payload = assess_series(STEADY + [70.0, 70.0]).to_dict()
        json.dumps(payload)
        assert payload["confirmed_regression"] is True
        assert payload["points"] == len(STEADY) + 2


class TestAssessTrend:
    def test_reads_series_from_the_store(self):
        store = ResultsStore(clock=iter(range(100)).__next__)
        for value in STEADY + [70.0, 70.0]:
            store.append(
                "bench-engine", "bench",
                [{"params": {}, "label": "engine",
                  "metrics": {"steps_per_sec": value}}],
            )
        verdict = assess_trend(store, "bench-engine", "steps_per_sec")
        assert verdict.confirmed
        assert verdict.metric == "steps_per_sec"
