"""Tests for SelSyncConfig and parameter/gradient aggregation helpers."""

import numpy as np
import pytest

from repro.core.aggregation import (
    AggregationMode,
    aggregate_gradients,
    aggregate_parameters,
    replica_consistency_error,
)
from repro.core.config import SelSyncConfig


class TestSelSyncConfig:
    def test_defaults(self):
        config = SelSyncConfig()
        assert config.delta == 0.25
        assert config.aggregation == "param"
        assert config.ewma_window == 25
        assert not config.uses_injection

    def test_resolved_alpha_uses_paper_rule(self):
        """EWMA smoothing factor defaults to num_workers / 100 (0.16 for 16)."""
        config = SelSyncConfig()
        assert config.resolved_alpha(16) == pytest.approx(0.16)

    def test_resolved_alpha_clamped(self):
        config = SelSyncConfig()
        assert config.resolved_alpha(0) == pytest.approx(0.01)
        assert config.resolved_alpha(500) == 1.0

    def test_explicit_alpha_wins(self):
        config = SelSyncConfig(ewma_alpha=0.5)
        assert config.resolved_alpha(16) == 0.5

    def test_injection_requires_both_fractions(self):
        with pytest.raises(ValueError):
            SelSyncConfig(injection_alpha=0.5)
        config = SelSyncConfig(injection_alpha=0.5, injection_beta=0.5)
        assert config.uses_injection

    def test_label_formats(self):
        assert "δ=0.3" in SelSyncConfig(delta=0.3).label()
        label = SelSyncConfig(delta=0.3, injection_alpha=0.5, injection_beta=0.5).label()
        assert "α=0.5" in label and "β=0.5" in label

    def test_validation(self):
        with pytest.raises(ValueError):
            SelSyncConfig(delta=-1.0)
        with pytest.raises(ValueError):
            SelSyncConfig(aggregation="hybrid")
        with pytest.raises(ValueError):
            SelSyncConfig(ewma_window=0)
        with pytest.raises(ValueError):
            SelSyncConfig(ewma_alpha=2.0)
        with pytest.raises(ValueError):
            SelSyncConfig(injection_alpha=1.5, injection_beta=0.5)


class TestAggregation:
    def _states(self):
        return [
            {"w": np.full((2, 2), 1.0), "b": np.zeros(2)},
            {"w": np.full((2, 2), 3.0), "b": np.full(2, 4.0)},
        ]

    def test_parameter_average(self):
        avg = aggregate_parameters(self._states())
        np.testing.assert_allclose(avg["w"], 2.0)
        np.testing.assert_allclose(avg["b"], 2.0)

    def test_gradient_average(self):
        avg = aggregate_gradients(self._states())
        np.testing.assert_allclose(avg["w"], 2.0)

    def test_single_replica_is_identity(self):
        state = self._states()[0]
        avg = aggregate_parameters([state])
        for name in state:
            np.testing.assert_array_equal(avg[name], state[name])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_parameters([])

    def test_key_mismatch_rejected(self):
        with pytest.raises(KeyError):
            aggregate_parameters([{"w": np.zeros(2)}, {"v": np.zeros(2)}])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_parameters([{"w": np.zeros(2)}, {"w": np.zeros(3)}])

    def test_consistency_error_zero_for_identical(self):
        state = self._states()[0]
        assert replica_consistency_error([state, state]) == pytest.approx(0.0, abs=1e-12)

    def test_consistency_error_positive_for_diverged(self):
        assert replica_consistency_error(self._states()) > 0.0

    def test_mode_enum_round_trip(self):
        assert AggregationMode("param") is AggregationMode.PARAMETER
        assert AggregationMode("grad") is AggregationMode.GRADIENT

    def test_aggregate_matrix_matches_dict_form(self):
        from repro.engine import ParamSpec
        from repro.core.aggregation import aggregate_matrix

        states = self._states()
        spec = ParamSpec.from_tree(states[0])
        matrix = np.stack([spec.flatten_tree(s) for s in states])
        mean_vec = aggregate_matrix(matrix)
        mean_dict = aggregate_parameters(states)
        np.testing.assert_array_equal(mean_vec, spec.flatten_tree(mean_dict))
        with pytest.raises(ValueError):
            aggregate_matrix(np.zeros(3))

    def test_consistency_error_matrix_form_matches_dict_form(self):
        from repro.engine import ParamSpec

        states = self._states()
        spec = ParamSpec.from_tree(states[0])
        matrix = np.stack([spec.flatten_tree(s) for s in states])
        np.testing.assert_allclose(
            replica_consistency_error(matrix),
            replica_consistency_error(states),
            rtol=1e-12,
        )
