"""Tests for the Δ(gᵢ) gradient-change tracker (§III-A, Eqn. 2)."""

import numpy as np
import pytest

from repro.core.gradient_tracker import GradientChangeTracker, TrackerOverheadProbe


def _grads(scale, size=64, seed=0):
    rng = np.random.default_rng(seed)
    return {"w": scale * rng.standard_normal(size)}


class TestDelta:
    def test_first_update_is_zero(self):
        tracker = GradientChangeTracker()
        assert tracker.update(_grads(1.0)) == 0.0

    def test_identical_gradients_give_zero_delta(self):
        tracker = GradientChangeTracker(alpha=1.0)
        g = _grads(1.0)
        tracker.update(g)
        assert tracker.update(g) == pytest.approx(0.0, abs=1e-12)

    def test_scaling_gradients_changes_delta(self):
        tracker = GradientChangeTracker(alpha=1.0)
        tracker.update(_grads(1.0))
        delta = tracker.update(_grads(10.0))
        assert delta > 1.0  # variance grows by 100x, so relative change is large

    def test_delta_is_relative_not_absolute(self):
        """Scaling all gradients by a constant should give the same Δ sequence."""
        t_small = GradientChangeTracker(alpha=1.0)
        t_large = GradientChangeTracker(alpha=1.0)
        for step in range(5):
            g = _grads(1.0 + 0.1 * step, seed=step)
            t_small.update(g)
            t_large.update({"w": 1000.0 * g["w"]})
        np.testing.assert_allclose(t_small.history, t_large.history, rtol=1e-9)

    def test_delta_always_nonnegative(self):
        tracker = GradientChangeTracker()
        for step in range(20):
            tracker.update(_grads(np.random.default_rng(step).uniform(0.1, 5.0), seed=step))
        assert all(d >= 0 for d in tracker.history)

    def test_smoothing_reduces_noise(self):
        """A heavily smoothed tracker should report smaller per-step changes."""
        noisy = GradientChangeTracker(alpha=1.0)
        smooth = GradientChangeTracker(alpha=0.05)
        for step in range(40):
            g = _grads(np.random.default_rng(step).uniform(0.5, 2.0), seed=step)
            noisy.update(g)
            smooth.update(g)
        assert np.mean(smooth.history[1:]) < np.mean(noisy.history[1:])

    def test_decaying_gradients_produce_decaying_delta(self):
        """As gradients saturate late in training, Δ(gᵢ) flattens (Fig. 5)."""
        tracker = GradientChangeTracker(alpha=0.3)
        scales = np.concatenate([np.linspace(5.0, 1.0, 30), np.full(30, 1.0)])
        for step, s in enumerate(scales):
            tracker.update(_grads(s, seed=step % 3))
        early = np.mean(tracker.history[2:20])
        late = np.mean(tracker.history[-10:])
        assert late < early

    def test_max_delta_tracks_extremum(self):
        tracker = GradientChangeTracker(alpha=1.0)
        tracker.update(_grads(1.0))
        tracker.update(_grads(3.0))
        tracker.update(_grads(3.0))
        assert tracker.max_delta == max(tracker.history)

    def test_statistic_options(self):
        for statistic in ("variance", "second_moment", "norm"):
            tracker = GradientChangeTracker(statistic=statistic)
            tracker.update(_grads(1.0))
            assert tracker.raw_history[0] > 0

    def test_invalid_statistic(self):
        with pytest.raises(ValueError):
            GradientChangeTracker(statistic="median")

    def test_last_delta_before_update_raises(self):
        with pytest.raises(RuntimeError):
            GradientChangeTracker().last_delta

    def test_reset_clears_history(self):
        tracker = GradientChangeTracker()
        tracker.update(_grads(1.0))
        tracker.reset()
        assert tracker.history == [] and tracker.raw_history == []

    def test_history_lengths_match_updates(self):
        tracker = GradientChangeTracker()
        for step in range(7):
            tracker.update(_grads(1.0, seed=step))
        assert len(tracker.history) == 7 == len(tracker.raw_history)


class TestOverheadProbe:
    def test_probe_returns_positive_ms(self):
        probe = TrackerOverheadProbe(parameter_count=10_000, seed=0)
        assert probe.measure_ms(window=25, steps=5) > 0.0

    def test_probe_validation(self):
        with pytest.raises(ValueError):
            TrackerOverheadProbe(parameter_count=0)
        probe = TrackerOverheadProbe(parameter_count=100)
        with pytest.raises(ValueError):
            probe.measure_ms(window=25, steps=0)

    def test_overhead_much_smaller_than_typical_step_time(self):
        """Fig. 8a: tracker overhead is milliseconds, i.e. << 100ms step times."""
        probe = TrackerOverheadProbe(parameter_count=50_000, seed=0)
        assert probe.measure_ms(window=25, steps=10) < 50.0
