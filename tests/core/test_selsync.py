"""Tests for the SelSync trainer (Alg. 1): δ rule, flags protocol, PA vs GA."""

import numpy as np
import pytest

from tests.conftest import make_small_cluster

from repro.algorithms.bsp import BSPTrainer
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer


class TestDeltaExtremes:
    def test_delta_zero_synchronizes_every_step(self):
        """δ = 0 degenerates to fully synchronous training (LSSR = 0)."""
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.0), eval_every=100)
        trainer.run(10)
        assert trainer.sync_steps == 10
        assert trainer.local_steps == 0
        assert trainer.lssr_tracker.value == 0.0

    def test_huge_delta_trains_locally(self):
        """δ above the max observed Δ(gᵢ) degenerates to local SGD (LSSR → 1)."""
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=1e9), eval_every=100)
        trainer.run(10)
        # Only the forced first-step synchronization should have happened.
        assert trainer.sync_steps == 1
        assert trainer.local_steps == 9
        assert trainer.lssr_tracker.value == pytest.approx(0.9)

    def test_intermediate_delta_mixes_modes(self):
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.05), eval_every=100)
        trainer.run(30)
        assert trainer.sync_steps >= 1
        assert trainer.sync_steps + trainer.local_steps == 30

    def test_lssr_decreases_with_delta(self):
        """Sliding δ towards 0 moves training towards BSP (Fig. 6)."""
        lssr = {}
        for delta in (0.0, 0.1, 1e9):
            cluster = make_small_cluster(seed=3)
            trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=delta), eval_every=100)
            trainer.run(25)
            lssr[delta] = trainer.lssr_tracker.value
        assert lssr[0.0] <= lssr[0.1] <= lssr[1e9]


class TestEquivalences:
    def test_delta_zero_matches_bsp_without_momentum(self):
        """With plain SGD, per-step parameter averaging equals gradient averaging.

        SelSync with δ=0 must therefore follow the exact BSP trajectory.
        """
        bsp_cluster = make_small_cluster(momentum=0.0, seed=7)
        sel_cluster = make_small_cluster(momentum=0.0, seed=7)
        bsp = BSPTrainer(bsp_cluster, eval_every=100)
        sel = SelSyncTrainer(sel_cluster, SelSyncConfig(delta=0.0), eval_every=100)
        bsp.run(5)
        sel.run(5)
        bsp_state = bsp.global_state()
        sel_state = sel.global_state()
        for name in bsp_state:
            np.testing.assert_allclose(bsp_state[name], sel_state[name], atol=1e-10)

    def test_pa_sync_leaves_replicas_identical(self):
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.0, aggregation="param"),
                                 eval_every=100)
        trainer.run(3)
        assert cluster.replica_divergence() == pytest.approx(0.0, abs=1e-12)

    def test_ga_replicas_diverge_after_local_steps(self):
        """§III-C: under GA with local steps, replicas drift apart."""
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.2, aggregation="grad"),
                                 eval_every=100)
        trainer.run(20)
        if trainer.local_steps > 0:
            assert cluster.replica_divergence() > 0.0

    def test_pa_and_ga_differ_when_steps_are_local(self):
        pa_cluster = make_small_cluster(seed=5)
        ga_cluster = make_small_cluster(seed=5)
        pa = SelSyncTrainer(pa_cluster, SelSyncConfig(delta=0.15, aggregation="param"),
                            eval_every=100)
        ga = SelSyncTrainer(ga_cluster, SelSyncConfig(delta=0.15, aggregation="grad"),
                            eval_every=100)
        pa.run(20)
        ga.run(20)
        pa_state = pa.global_state()
        ga_state = ga.global_state()
        different = any(
            not np.allclose(pa_state[name], ga_state[name]) for name in pa_state
        )
        # PA and GA only diverge once a *non-forced* synchronization step has
        # interacted with local steps; an all-local run is identical under
        # both modes by construction.
        if pa.sync_steps > 1 and pa.local_steps > 0:
            assert different


class TestGlobalStateCheckpoint:
    """Regression tests for the PA checkpoint-source rule.

    The PS copy is authoritative exactly when the *most recent* step was a
    synchronization (the historical rule required that no local step had
    *ever* happened, so any mixed run silently stopped trusting the PS).
    """

    def test_ps_trusted_when_last_step_synced_after_local_steps(self):
        cluster = make_small_cluster(seed=11)
        trainer = SelSyncTrainer(
            cluster, SelSyncConfig(delta=1e9, aggregation="param"), eval_every=100
        )
        trainer.run(6)  # forced first-step sync, then local steps
        assert trainer.local_steps > 0
        trainer.config.delta = 0.0  # force the next step to synchronize
        trainer.run(1)
        assert trainer._last_step_synced and trainer.local_steps > 0
        # Perturb one replica after the final sync (simulating external
        # drift): the checkpoint must still be the PS state, not the now
        # perturbed replica average.
        cluster.workers[1].param_vector[0] += 123.0
        state = trainer.global_state()
        ps_state = cluster.ps.pull()
        for name in ps_state:
            np.testing.assert_array_equal(state[name], ps_state[name])

    def test_replica_average_when_last_step_local(self):
        cluster = make_small_cluster(seed=3)
        trainer = SelSyncTrainer(
            cluster, SelSyncConfig(delta=1e9, aggregation="param"), eval_every=100
        )
        trainer.run(10)  # forced first-step sync, then all-local
        assert trainer.sync_steps == 1 and trainer.local_steps == 9
        assert not trainer._last_step_synced
        state = trainer.global_state()
        expected = cluster.average_worker_states()
        for name in expected:
            np.testing.assert_array_equal(state[name], expected[name])


class TestMechanics:
    def test_flags_allgather_called_every_step(self):
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.5), eval_every=100)
        trainer.run(12)
        assert cluster.backend.record.calls["allgather_bits"] == 12

    def test_sync_step_indices_recorded(self):
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.0), eval_every=100)
        trainer.run(5)
        assert trainer.sync_step_indices == [0, 1, 2, 3, 4]

    def test_delta_history_length(self):
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.3), eval_every=100)
        trainer.run(8)
        assert len(trainer.delta_history) == 8

    def test_one_tracker_per_worker(self):
        cluster = make_small_cluster(num_workers=5)
        trainer = SelSyncTrainer(cluster, eval_every=100)
        assert len(trainer.trackers) == 5

    def test_simulated_time_lower_than_bsp_when_local(self):
        """Skipping synchronization must reduce simulated wall-clock per step."""
        bsp_cluster = make_small_cluster(seed=2)
        sel_cluster = make_small_cluster(seed=2)
        bsp = BSPTrainer(bsp_cluster, eval_every=100)
        sel = SelSyncTrainer(sel_cluster, SelSyncConfig(delta=1e9), eval_every=100)
        bsp.run(10)
        sel.run(10)
        assert sel_cluster.clock.elapsed < bsp_cluster.clock.elapsed

    def test_describe_and_extras(self):
        cluster = make_small_cluster()
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.3), eval_every=5)
        result = trainer.run(6)
        assert "δ=0.3" in result.algorithm
        assert result.extras["sync_steps"] + result.extras["local_steps"] == 6

    def test_learning_progress(self):
        """SelSync should actually learn the synthetic task."""
        cluster = make_small_cluster(train_samples=512)
        trainer = SelSyncTrainer(cluster, SelSyncConfig(delta=0.1), eval_every=20)
        result = trainer.run(80)
        assert result.final_metric > 0.5

    def test_injection_config_builds_injection(self):
        cluster = make_small_cluster()
        config = SelSyncConfig(delta=0.3, injection_alpha=0.5, injection_beta=0.5)
        trainer = SelSyncTrainer(cluster, config, eval_every=100)
        assert trainer.injection is not None
        trainer.run(5)
        assert trainer.injection.rounds == 5
