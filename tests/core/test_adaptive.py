"""Tests for the adaptive-δ extension."""

import pytest

from tests.conftest import make_small_cluster

from repro.core.adaptive import AdaptiveDeltaController, AdaptiveSelSyncTrainer


class TestController:
    def test_raises_delta_when_syncing_too_often(self):
        ctrl = AdaptiveDeltaController(target_lssr=0.9, initial_delta=0.1, window=5, gain=2.0)
        for _ in range(5):
            ctrl.observe(synchronized=True)
        assert ctrl.delta > 0.1

    def test_lowers_delta_when_always_local(self):
        ctrl = AdaptiveDeltaController(target_lssr=0.5, initial_delta=1.0, window=5, gain=2.0)
        for _ in range(5):
            ctrl.observe(synchronized=False)
        assert ctrl.delta < 1.0

    def test_delta_respects_bounds(self):
        ctrl = AdaptiveDeltaController(target_lssr=0.9, initial_delta=1.0, window=2,
                                       gain=10.0, min_delta=0.01, max_delta=5.0)
        for _ in range(50):
            ctrl.observe(synchronized=True)
        assert ctrl.delta <= 5.0
        for _ in range(100):
            ctrl.observe(synchronized=False)
        assert ctrl.delta >= 0.01

    def test_window_lssr_estimate(self):
        ctrl = AdaptiveDeltaController(window=4)
        for sync in (True, False, False, False):
            ctrl.observe(sync)
        assert ctrl.window_lssr == pytest.approx(0.75)

    def test_history_recorded(self):
        ctrl = AdaptiveDeltaController(window=3)
        for _ in range(6):
            ctrl.observe(True)
        assert len(ctrl.history) == 7  # initial value + one per observation

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDeltaController(target_lssr=1.5)
        with pytest.raises(ValueError):
            AdaptiveDeltaController(initial_delta=0.0)
        with pytest.raises(ValueError):
            AdaptiveDeltaController(gain=1.0)
        with pytest.raises(ValueError):
            AdaptiveDeltaController(min_delta=2.0, max_delta=1.0)


class TestAdaptiveTrainer:
    def test_delta_changes_during_training(self):
        cluster = make_small_cluster()
        controller = AdaptiveDeltaController(target_lssr=0.8, initial_delta=0.001,
                                             window=5, gain=1.5)
        trainer = AdaptiveSelSyncTrainer(cluster, controller=controller, eval_every=100)
        trainer.run(30)
        assert len(set(controller.history)) > 1

    def test_realized_lssr_moves_towards_target(self):
        """Starting from an always-sync δ, the controller should push LSSR up."""
        cluster = make_small_cluster(train_samples=512)
        controller = AdaptiveDeltaController(target_lssr=0.8, initial_delta=1e-4,
                                             window=5, gain=2.0)
        trainer = AdaptiveSelSyncTrainer(cluster, controller=controller, eval_every=100)
        result = trainer.run(60)
        assert result.lssr > 0.3

    def test_describe_and_extras(self):
        cluster = make_small_cluster()
        trainer = AdaptiveSelSyncTrainer(cluster, eval_every=10)
        result = trainer.run(10)
        assert "adaptive" in result.algorithm
        assert "final_delta" in result.extras
        assert result.extras["target_lssr"] == trainer.controller.target_lssr

    def test_default_controller_created(self):
        cluster = make_small_cluster()
        trainer = AdaptiveSelSyncTrainer(cluster, eval_every=10)
        assert trainer.controller is not None
        assert trainer.config.delta == trainer.controller.delta
