"""Tests for synthetic datasets and the dataset registry."""

import numpy as np
import pytest

from repro.data.datasets import (
    DATASET_REGISTRY,
    ClassificationDataset,
    SequenceDataset,
    build_dataset,
    make_classification_dataset,
    make_sequence_dataset,
)


class TestClassificationDataset:
    def test_length_and_indexing(self):
        ds = make_classification_dataset(100, 5, 8, seed=0)
        assert len(ds) == 100
        x, y = ds[np.array([0, 1, 2])]
        assert x.shape == (3, 8)
        assert y.shape == (3,)

    def test_every_class_present(self):
        ds = make_classification_dataset(200, 10, 8, seed=0)
        assert set(np.unique(ds.targets).tolist()) == set(range(10))

    def test_labels_in_range(self):
        ds = make_classification_dataset(64, 4, 8, seed=1)
        assert ds.targets.min() >= 0 and ds.targets.max() < 4

    def test_class_separation_matters(self):
        """Larger class_sep should spread the class centroids further apart."""
        tight = make_classification_dataset(500, 4, 16, class_sep=0.5, noise=1.0, seed=0)
        wide = make_classification_dataset(500, 4, 16, class_sep=6.0, noise=1.0, seed=0)

        def centroid_spread(ds):
            centroids = np.stack([ds.inputs[ds.targets == c].mean(axis=0) for c in range(4)])
            return np.linalg.norm(centroids - centroids.mean(axis=0), axis=1).mean()

        assert centroid_spread(wide) > centroid_spread(tight)

    def test_deterministic_with_seed(self):
        a = make_classification_dataset(50, 3, 4, seed=5)
        b = make_classification_dataset(50, 3, 4, seed=5)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_subset(self):
        ds = make_classification_dataset(50, 3, 4, seed=0)
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.inputs[0], ds.inputs[1])

    def test_sample_bytes_positive(self):
        ds = make_classification_dataset(10, 2, 4, seed=0)
        assert ds.sample_bytes > 0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            ClassificationDataset(np.zeros((4, 2, 2)), np.zeros(4, dtype=np.int64), 2)
        with pytest.raises(TypeError):
            ClassificationDataset(np.zeros((4, 2)), np.zeros(4), 2)
        with pytest.raises(ValueError):
            ClassificationDataset(np.zeros((4, 2)), np.array([0, 1, 2, 5]), 3)
        with pytest.raises(ValueError):
            make_classification_dataset(3, 10, 4)


class TestSequenceDataset:
    def test_window_shapes(self):
        ds = make_sequence_dataset(1000, 20, bptt=8, seed=0)
        x, y = ds[np.array([0, 1])]
        assert x.shape == (2, 8)
        assert y.shape == (2, 8)

    def test_targets_are_shifted_inputs(self):
        ds = make_sequence_dataset(500, 10, bptt=4, seed=0)
        x, y = ds[0]
        np.testing.assert_array_equal(x[1:], y[:-1])

    def test_tokens_within_vocab(self):
        ds = make_sequence_dataset(500, 12, bptt=4, seed=0)
        assert ds.tokens.min() >= 0 and ds.tokens.max() < 12

    def test_markov_structure_learnable(self):
        """The banded transition should make some successors far more likely."""
        ds = make_sequence_dataset(20_000, 20, bptt=4, bandwidth=3, seed=0)
        tokens = ds.tokens
        transitions = np.zeros((20, 20))
        np.add.at(transitions, (tokens[:-1], tokens[1:]), 1)
        row = transitions[5] / max(transitions[5].sum(), 1)
        assert row.max() > 3.0 / 20  # far above uniform probability

    def test_length_counts_nonoverlapping_windows(self):
        ds = make_sequence_dataset(101, 10, bptt=10, seed=0)
        assert len(ds) == 10

    def test_subset(self):
        ds = make_sequence_dataset(500, 10, bptt=5, seed=0)
        sub = ds.subset(np.array([0, 2]))
        assert len(sub) >= 2

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            make_sequence_dataset(100, 1)
        with pytest.raises(ValueError):
            SequenceDataset(np.arange(3), bptt=5, vocab_size=10)
        with pytest.raises(TypeError):
            SequenceDataset(np.zeros(100), bptt=5, vocab_size=10)


class TestRegistry:
    @pytest.mark.parametrize("name,classes", [("cifar10", 10), ("cifar100", 100)])
    def test_cifar_analogs(self, name, classes):
        bundle = build_dataset(name, seed=0, train_samples=512, test_samples=256)
        assert bundle.task == "classification"
        assert bundle.train.num_classes == classes
        assert len(bundle.test) == 256

    def test_imagenet_analog_top_level_metadata(self):
        bundle = build_dataset("imagenet1k", seed=0, train_samples=512, test_samples=256)
        assert bundle.metadata["paper_train_samples"] == 1_280_000

    def test_wikitext_analog_is_language_modeling(self):
        bundle = build_dataset("wikitext103", seed=0, num_tokens=2000, bptt=8)
        assert bundle.task == "language_modeling"
        assert bundle.train.bptt == 8

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_dataset("mnist")

    def test_registry_contains_paper_datasets(self):
        for name in ("cifar10", "cifar100", "imagenet1k", "wikitext103"):
            assert name in DATASET_REGISTRY
