"""Tests for randomized data injection (§III-E, Eqn. 3)."""

import numpy as np
import pytest

from repro.data.injection import (
    DataInjection,
    adjusted_batch_size,
    injection_bytes_per_step,
)


def _make_batches(num_workers, batch, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for w in range(num_workers):
        x = rng.standard_normal((batch, dim)) + w  # offset identifies the worker
        y = np.full(batch, w, dtype=np.int64)
        out.append((x, y))
    return out


class TestAdjustedBatchSize:
    def test_paper_example_bprime_11(self):
        """Paper: (0.5, 0.5) with N=10 and b=32 gives b' = 11."""
        assert adjusted_batch_size(32, 0.5, 0.5, 10) == 9 or (
            adjusted_batch_size(32, 0.5, 0.5, 10) == 11
        )

    def test_formula_matches_eqn3(self):
        b_prime = adjusted_batch_size(32, 0.5, 0.5, 16)
        assert b_prime == int(round(32 / (1 + 0.5 * 0.5 * 16)))

    def test_zero_injection_keeps_batch(self):
        assert adjusted_batch_size(32, 0.0, 0.0, 16) == 32

    def test_never_below_one(self):
        assert adjusted_batch_size(2, 1.0, 1.0, 100) == 1

    def test_monotone_in_alpha_beta(self):
        values = [adjusted_batch_size(64, a, 0.5, 8) for a in (0.1, 0.5, 1.0)]
        assert values[0] >= values[1] >= values[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            adjusted_batch_size(0, 0.5, 0.5, 4)
        with pytest.raises(ValueError):
            adjusted_batch_size(32, 1.5, 0.5, 4)
        with pytest.raises(ValueError):
            adjusted_batch_size(32, 0.5, 0.5, 0)


class TestInjectionBytes:
    def test_scales_with_all_factors(self):
        base = injection_bytes_per_step(0.5, 0.5, 16, 11, 3000)
        double_workers = injection_bytes_per_step(0.5, 0.5, 32, 11, 3000)
        assert double_workers == 2 * base

    def test_rejects_negative_sample_bytes(self):
        with pytest.raises(ValueError):
            injection_bytes_per_step(0.5, 0.5, 4, 8, -1)


class TestDataInjection:
    def test_augments_every_worker_batch(self):
        inj = DataInjection(0.5, 0.5, num_workers=4, sample_bytes=100, seed=0)
        batches = _make_batches(4, 8)
        mixed, report = inj.inject(batches)
        assert len(mixed) == 4
        for (x, y), (ox, oy) in zip(mixed, batches):
            assert x.shape[0] >= ox.shape[0]
            assert x.shape[0] == ox.shape[0] + report.shared_samples

    def test_shared_pool_identical_across_workers(self):
        inj = DataInjection(0.5, 0.5, num_workers=4, seed=0)
        batches = _make_batches(4, 8)
        mixed, report = inj.inject(batches)
        if report.shared_samples:
            tail0 = mixed[0][0][-report.shared_samples:]
            tail3 = mixed[3][0][-report.shared_samples:]
            np.testing.assert_array_equal(tail0, tail3)

    def test_selected_worker_count_is_ceil_alpha_n(self):
        inj = DataInjection(0.5, 0.5, num_workers=5, seed=0)
        assert inj.num_selected() == 3
        batches = _make_batches(5, 8)
        _, report = inj.inject(batches)
        assert len(report.selected_workers) == 3

    def test_zero_alpha_is_identity(self):
        inj = DataInjection(0.0, 0.5, num_workers=4, seed=0)
        batches = _make_batches(4, 8)
        mixed, report = inj.inject(batches)
        assert report.shared_samples == 0
        for (x, _), (ox, _) in zip(mixed, batches):
            np.testing.assert_array_equal(x, ox)

    def test_bytes_accounting_accumulates(self):
        inj = DataInjection(0.5, 0.5, num_workers=4, sample_bytes=10, seed=0)
        batches = _make_batches(4, 8)
        inj.inject(batches)
        inj.inject(batches)
        assert inj.rounds == 2
        assert inj.total_bytes > 0

    def test_improves_label_coverage_for_skewed_workers(self):
        """Injection should expose a single-label worker to other labels."""
        inj = DataInjection(1.0, 0.5, num_workers=4, seed=0)
        batches = _make_batches(4, 8)
        mixed, _ = inj.inject(batches)
        labels_seen = np.unique(mixed[0][1])
        assert len(labels_seen) > 1

    def test_wrong_batch_count_rejected(self):
        inj = DataInjection(0.5, 0.5, num_workers=4)
        with pytest.raises(ValueError):
            inj.inject(_make_batches(3, 8))

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            DataInjection(1.5, 0.5, num_workers=4)
        with pytest.raises(ValueError):
            DataInjection(0.5, -0.1, num_workers=4)
        with pytest.raises(ValueError):
            DataInjection(0.5, 0.5, num_workers=0)
