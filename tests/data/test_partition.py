"""Tests for DefDP and SelDP partitioning (Fig. 7 semantics)."""

import numpy as np
import pytest

from repro.data.partition import (
    DefaultPartitioner,
    SelSyncPartitioner,
    measure_partition_overhead,
    partition_layout,
)


class TestDefaultPartitioner:
    def test_partitions_are_disjoint(self):
        result = DefaultPartitioner(seed=0).partition(100, 4)
        all_indices = np.concatenate(result.worker_indices)
        assert len(all_indices) == 100
        assert len(np.unique(all_indices)) == 100

    def test_each_worker_gets_one_chunk(self):
        result = DefaultPartitioner(seed=0).partition(100, 4)
        layout = partition_layout(result)
        assert layout == {0: [0], 1: [1], 2: [2], 3: [3]}

    def test_sizes_nearly_equal(self):
        result = DefaultPartitioner(seed=0).partition(103, 4)
        sizes = [len(idx) for idx in result.worker_indices]
        assert max(sizes) - min(sizes) <= 1

    def test_shuffle_false_keeps_contiguous_chunks(self):
        result = DefaultPartitioner(shuffle=False).partition(12, 3)
        np.testing.assert_array_equal(result.worker_indices[0], np.arange(0, 4))

    def test_deterministic_given_seed(self):
        a = DefaultPartitioner(seed=3).partition(50, 5)
        b = DefaultPartitioner(seed=3).partition(50, 5)
        for x, y in zip(a.worker_indices, b.worker_indices):
            np.testing.assert_array_equal(x, y)

    def test_validation(self):
        with pytest.raises(ValueError):
            DefaultPartitioner().partition(3, 5)
        with pytest.raises(ValueError):
            DefaultPartitioner().partition(10, 0)

    def test_shuffle_each_epoch_flag(self):
        assert DefaultPartitioner.shuffle_each_epoch is True


class TestSelSyncPartitioner:
    def test_every_worker_sees_whole_dataset(self):
        """SelDP: each worker's index order is a permutation of the full dataset."""
        result = SelSyncPartitioner(seed=0).partition(120, 4)
        for idx in result.worker_indices:
            assert len(idx) == 120
            assert len(np.unique(idx)) == 120

    def test_circular_queue_rotation(self):
        result = SelSyncPartitioner(seed=0).partition(100, 4)
        layout = partition_layout(result)
        assert layout[0] == [0, 1, 2, 3]
        assert layout[1] == [1, 2, 3, 0]
        assert layout[2] == [2, 3, 0, 1]
        assert layout[3] == [3, 0, 1, 2]

    def test_first_chunks_are_distinct_across_workers(self):
        """On a synchronous first step, workers process different chunks."""
        result = SelSyncPartitioner(seed=0).partition(100, 4)
        chunk_len = 25
        heads = [set(idx[:chunk_len].tolist()) for idx in result.worker_indices]
        for i in range(4):
            for j in range(i + 1, 4):
                assert heads[i].isdisjoint(heads[j])

    def test_shuffle_each_epoch_disabled(self):
        assert SelSyncPartitioner.shuffle_each_epoch is False

    def test_deterministic_given_seed(self):
        a = SelSyncPartitioner(seed=9).partition(60, 3)
        b = SelSyncPartitioner(seed=9).partition(60, 3)
        for x, y in zip(a.worker_indices, b.worker_indices):
            np.testing.assert_array_equal(x, y)

    def test_single_worker_degenerates_to_full_pass(self):
        result = SelSyncPartitioner(seed=0).partition(10, 1)
        assert len(result.worker_indices) == 1
        assert len(result.worker_indices[0]) == 10


class TestOverheadMeasurement:
    def test_build_seconds_recorded(self):
        result = SelSyncPartitioner(seed=0).partition(1000, 8)
        assert result.build_seconds >= 0.0

    def test_measure_partition_overhead_positive(self):
        overhead = measure_partition_overhead(SelSyncPartitioner(seed=0), 2000, 8, repeats=2)
        assert overhead >= 0.0

    def test_measure_partition_overhead_validates_repeats(self):
        with pytest.raises(ValueError):
            measure_partition_overhead(DefaultPartitioner(), 100, 4, repeats=0)

    def test_seldp_not_cheaper_than_defdp_on_large_inputs(self):
        """Fig. 8b: SelDP costs at least as much preprocessing as DefDP."""
        n = 200_000
        def_t = measure_partition_overhead(DefaultPartitioner(seed=0), n, 16, repeats=2)
        sel_t = measure_partition_overhead(SelSyncPartitioner(seed=0), n, 16, repeats=2)
        assert sel_t >= def_t * 0.5  # generous: SelDP should not be dramatically cheaper
