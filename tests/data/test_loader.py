"""Tests for DataLoader and BatchIterator."""

import numpy as np
import pytest

from repro.data.datasets import make_classification_dataset
from repro.data.loader import BatchIterator, DataLoader


@pytest.fixture
def dataset():
    return make_classification_dataset(100, 4, 8, seed=0)


class TestBatchIterator:
    def test_drop_last_counts(self, dataset):
        it = BatchIterator(dataset, np.arange(100), batch_size=32, drop_last=True)
        assert len(it) == 3

    def test_keep_last_counts(self, dataset):
        it = BatchIterator(dataset, np.arange(100), batch_size=32, drop_last=False)
        assert len(it) == 4

    def test_batches_cover_requested_indices(self, dataset):
        it = BatchIterator(dataset, np.arange(64), batch_size=16)
        total = sum(x.shape[0] for x, _ in it)
        assert total == 64

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            BatchIterator(dataset, np.arange(10), batch_size=0)


class TestDataLoader:
    def test_next_batch_shapes(self, dataset):
        loader = DataLoader(dataset, batch_size=16, seed=0)
        x, y = loader.next_batch()
        assert x.shape == (16, 8)
        assert y.shape == (16,)

    def test_steps_per_epoch(self, dataset):
        loader = DataLoader(dataset, batch_size=32, seed=0)
        assert loader.steps_per_epoch == 3

    def test_epoch_wraps_and_counts(self, dataset):
        loader = DataLoader(dataset, batch_size=32, seed=0)
        for _ in range(4):
            loader.next_batch()
        assert loader.epoch == 1

    def test_epoch_progress_monotone(self, dataset):
        loader = DataLoader(dataset, batch_size=32, seed=0)
        values = []
        for _ in range(6):
            values.append(loader.epoch_progress)
            loader.next_batch()
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_shuffle_changes_order_between_epochs(self, dataset):
        loader = DataLoader(dataset, batch_size=50, shuffle_each_epoch=True, seed=0)
        first_epoch = [loader.next_batch()[1].copy() for _ in range(2)]
        second_epoch = [loader.next_batch()[1].copy() for _ in range(2)]
        assert not all(
            np.array_equal(a, b) for a, b in zip(first_epoch, second_epoch)
        )

    def test_no_shuffle_repeats_order(self, dataset):
        loader = DataLoader(dataset, batch_size=50, shuffle_each_epoch=False, seed=0)
        first_epoch = [loader.next_batch()[1].copy() for _ in range(2)]
        second_epoch = [loader.next_batch()[1].copy() for _ in range(2)]
        assert all(np.array_equal(a, b) for a, b in zip(first_epoch, second_epoch))

    def test_respects_partition_indices(self, dataset):
        indices = np.arange(10)
        loader = DataLoader(dataset, indices=indices, batch_size=5,
                            shuffle_each_epoch=False, seed=0)
        _, y = loader.next_batch()
        np.testing.assert_array_equal(y, dataset.targets[:5])

    def test_partition_smaller_than_batch_rejected(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, indices=np.arange(4), batch_size=8)

    def test_empty_indices_rejected(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, indices=np.array([], dtype=np.int64), batch_size=1)

    def test_iterator_protocol(self, dataset):
        loader = DataLoader(dataset, batch_size=16, seed=0)
        batches = []
        for i, batch in enumerate(loader):
            batches.append(batch)
            if i == 2:
                break
        assert len(batches) == 3
