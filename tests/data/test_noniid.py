"""Tests for non-IID partitioning (label skew and Dirichlet)."""

import numpy as np
import pytest

from repro.data.datasets import make_classification_dataset
from repro.data.noniid import LabelSkewPartitioner, dirichlet_partition, label_distribution


@pytest.fixture
def cifar10_like():
    return make_classification_dataset(1000, 10, 8, seed=0)


@pytest.fixture
def cifar100_like():
    return make_classification_dataset(3000, 100, 8, seed=0)


class TestLabelSkew:
    def test_one_label_per_worker_matches_paper_cifar10_split(self, cifar10_like):
        """Paper: non-IID CIFAR-10 over 10 workers with 1 label per worker."""
        part = LabelSkewPartitioner(cifar10_like.targets, labels_per_worker=1, seed=0)
        result = part.partition(len(cifar10_like), 10)
        for idx in result.worker_indices:
            labels = np.unique(cifar10_like.targets[idx])
            assert len(labels) == 1

    def test_all_classes_covered_across_workers(self, cifar10_like):
        part = LabelSkewPartitioner(cifar10_like.targets, labels_per_worker=1, seed=0)
        result = part.partition(len(cifar10_like), 10)
        seen = set()
        for idx in result.worker_indices:
            seen.update(np.unique(cifar10_like.targets[idx]).tolist())
        assert seen == set(range(10))

    def test_ten_labels_per_worker_cifar100(self, cifar100_like):
        """Paper: non-IID CIFAR-100 over 10 workers with 10 labels per worker."""
        part = LabelSkewPartitioner(cifar100_like.targets, labels_per_worker=10, seed=0)
        result = part.partition(len(cifar100_like), 10)
        for idx in result.worker_indices:
            labels = np.unique(cifar100_like.targets[idx])
            assert 1 <= len(labels) <= 10

    def test_partitions_nonempty(self, cifar10_like):
        part = LabelSkewPartitioner(cifar10_like.targets, labels_per_worker=2, seed=0)
        result = part.partition(len(cifar10_like), 5)
        assert all(len(idx) > 0 for idx in result.worker_indices)

    def test_size_mismatch_rejected(self, cifar10_like):
        part = LabelSkewPartitioner(cifar10_like.targets, labels_per_worker=1)
        with pytest.raises(ValueError):
            part.partition(123, 10)

    def test_invalid_args(self, cifar10_like):
        with pytest.raises(ValueError):
            LabelSkewPartitioner(cifar10_like.targets, labels_per_worker=0)
        with pytest.raises(ValueError):
            LabelSkewPartitioner(np.zeros((3, 3), dtype=np.int64), labels_per_worker=1)


class TestDirichlet:
    def test_all_samples_assigned(self, cifar10_like):
        parts = dirichlet_partition(cifar10_like.targets, num_workers=5, alpha=0.5, seed=0)
        total = sum(len(p) for p in parts)
        assert total == len(cifar10_like)

    def test_small_alpha_is_more_skewed(self, cifar10_like):
        def mean_skew(alpha):
            parts = dirichlet_partition(cifar10_like.targets, 5, alpha=alpha, seed=0)
            skews = []
            for idx in parts:
                if len(idx) == 0:
                    continue
                dist = label_distribution(cifar10_like.targets, idx, 10)
                skews.append(dist.max())
            return np.mean(skews)

        assert mean_skew(0.05) > mean_skew(10.0)

    def test_invalid_args(self, cifar10_like):
        with pytest.raises(ValueError):
            dirichlet_partition(cifar10_like.targets, 0)
        with pytest.raises(ValueError):
            dirichlet_partition(cifar10_like.targets, 4, alpha=0.0)


class TestLabelDistribution:
    def test_distribution_sums_to_one(self, cifar10_like):
        dist = label_distribution(cifar10_like.targets, np.arange(100), 10)
        np.testing.assert_allclose(dist.sum(), 1.0)

    def test_empty_indices_all_zero(self, cifar10_like):
        dist = label_distribution(cifar10_like.targets, np.array([], dtype=np.int64), 10)
        assert np.all(dist == 0.0)
