"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import FP16Compressor, SignSGDCompressor, TernGradCompressor, TopKCompressor
from repro.data.injection import adjusted_batch_size
from repro.data.partition import DefaultPartitioner, SelSyncPartitioner
from repro.metrics.lssr import communication_reduction, lssr
from repro.nn.losses import cross_entropy_with_logits, softmax
from repro.stats.ewma import EWMA
from repro.utils.flatten import flatten_arrays, unflatten_vector


finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestFlattenProperties:
    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)), min_size=1, max_size=5
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_flatten_unflatten_roundtrip(self, shapes, seed):
        rng = np.random.default_rng(seed)
        tree = {f"p{i}": rng.standard_normal(shape) for i, shape in enumerate(shapes)}
        vec, spec = flatten_arrays(tree)
        rebuilt = unflatten_vector(vec, spec)
        assert vec.size == sum(int(np.prod(s)) for s in shapes)
        for name in tree:
            np.testing.assert_array_equal(rebuilt[name], tree[name])


class TestEWMAProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=100
        ),
        alpha=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_smoothed_value_bounded_by_observations(self, values, alpha):
        ewma = EWMA(alpha=alpha, window=25)
        for v in values:
            ewma.update(v)
            assert min(values) - 1e-9 <= ewma.value <= max(values) + 1e-9


class TestPartitionProperties:
    @given(
        dataset_size=st.integers(8, 500),
        num_workers=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_defdp_is_a_partition(self, dataset_size, num_workers, seed):
        if dataset_size < num_workers:
            dataset_size = num_workers
        result = DefaultPartitioner(seed=seed).partition(dataset_size, num_workers)
        combined = np.sort(np.concatenate(result.worker_indices))
        np.testing.assert_array_equal(combined, np.arange(dataset_size))

    @given(
        dataset_size=st.integers(8, 500),
        num_workers=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_seldp_is_a_permutation_for_every_rank(self, dataset_size, num_workers, seed):
        if dataset_size < num_workers:
            dataset_size = num_workers
        result = SelSyncPartitioner(seed=seed).partition(dataset_size, num_workers)
        for idx in result.worker_indices:
            np.testing.assert_array_equal(np.sort(idx), np.arange(dataset_size))


class TestInjectionProperties:
    @given(
        batch=st.integers(1, 512),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        beta=st.floats(min_value=0.0, max_value=1.0),
        workers=st.integers(1, 64),
    )
    @settings(max_examples=80, deadline=None)
    def test_bprime_bounded_and_monotone(self, batch, alpha, beta, workers):
        b_prime = adjusted_batch_size(batch, alpha, beta, workers)
        assert 1 <= b_prime <= batch
        # Effective batch after injection stays within ~1 sample of the target.
        effective = b_prime * (1 + alpha * beta * workers)
        assert effective >= batch - (1 + alpha * beta * workers)


class TestLSSRProperties:
    @given(local=st.integers(0, 10_000), sync=st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_lssr_in_unit_interval(self, local, sync):
        value = lssr(local, sync)
        assert 0.0 <= value <= 1.0
        if value < 1.0:
            assert communication_reduction(value) >= 1.0


class TestSoftmaxProperties:
    @given(
        logits=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 8), st.integers(2, 10)),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_a_distribution(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)

    @given(
        logits=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
            elements=st.floats(min_value=-20, max_value=20, allow_nan=False),
        ),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_nonnegative_and_grad_sums_to_zero(self, logits, seed):
        rng = np.random.default_rng(seed)
        targets = rng.integers(0, logits.shape[-1], size=logits.shape[0])
        loss, grad = cross_entropy_with_logits(logits, targets)
        assert loss >= 0.0
        np.testing.assert_allclose(grad.sum(axis=-1), 0.0, atol=1e-9)


class TestCompressorProperties:
    @given(
        vector=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(4, 256),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_signsgd_preserves_signs(self, vector):
        out = SignSGDCompressor().roundtrip(vector)
        nonzero = vector != 0
        assert np.all(np.sign(out[nonzero]) == np.sign(vector[nonzero]))

    @given(
        vector=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(10, 300),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        ratio=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_error_never_exceeds_norm(self, vector, ratio):
        comp = TopKCompressor(ratio=ratio)
        out = comp.roundtrip(vector)
        assert np.linalg.norm(vector - out) <= np.linalg.norm(vector) + 1e-9
        # Top-k keeps actual entries, so reconstruction magnitudes never exceed originals.
        assert np.all(np.abs(out) <= np.abs(vector) + 1e-12)

    @given(
        vector=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(4, 200),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_terngrad_bounded_by_max_magnitude(self, vector):
        out = TernGradCompressor(seed=0).roundtrip(vector)
        assert np.all(np.abs(out) <= np.max(np.abs(vector)) + 1e-9)

    @given(
        vector=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(4, 200),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fp16_relative_error_small(self, vector):
        out = FP16Compressor().roundtrip(vector)
        np.testing.assert_allclose(out, vector, rtol=2e-3, atol=1e-6)
