"""Observability layer: spans, a metrics registry, and phase profiling.

This package is the repo-wide telemetry facade.  Hot paths call the
module-level helpers unconditionally; both subsystems default *off* and
pay a near-zero fast path when disabled:

* :func:`span` — returns :data:`NULL_SPAN` (an allocation-free singleton)
  while tracing is off, or a real :class:`~repro.telemetry.trace.Span`
  parented to the calling thread's current span while it is on.
* :func:`count` / :func:`observe` / :func:`gauge` — forward to the
  process-global :class:`~repro.telemetry.metrics.MetricsRegistry` only
  while metrics are on.

Activation:

* ``REPRO_TRACE_FILE=/path/trace.jsonl`` in the environment enables
  tracing at import and appends finished spans to that JSONL sink
  (flushed at interpreter exit, on :func:`flush`, and when the buffer
  grows past the flush threshold).
* ``ClusterConfig(telemetry="/path/trace.jsonl")`` does the same per
  cluster (see :mod:`repro.cluster.cluster`), flushing on ``close()``.
* ``REPRO_METRICS=1`` enables the metrics registry at import; the
  experiment service enables it at construction so ``GET /v1/metrics``
  advances without turning on hot-loop tracing.

Per-phase totals accumulate on span end; :func:`phase_snapshot` /
:func:`phase_delta` bracket a run to attach a phases block to
``ScenarioRecord``/``RunResult`` without re-reading the trace file.
"""

from __future__ import annotations

import atexit
import os
from typing import Any, Dict, Optional

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.trace import NULL_SPAN, Span, Tracer, summarize_trace

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "configure",
    "reset",
    "tracing_enabled",
    "metrics_enabled",
    "span",
    "count",
    "observe",
    "gauge",
    "get_tracer",
    "get_metrics",
    "phase_snapshot",
    "phase_delta",
    "flush",
    "summarize_trace",
]

_UNSET = object()

_TRACING = False
_METRICS = False
_tracer = Tracer()
_metrics = MetricsRegistry()


def tracing_enabled() -> bool:
    """True when spans are being recorded."""
    return _TRACING


def metrics_enabled() -> bool:
    """True when the metrics registry is recording."""
    return _METRICS


def span(name: str) -> Any:
    """Open a (potential) span.  The disabled path returns a shared no-op."""
    if not _TRACING:
        return NULL_SPAN
    return _tracer.span(name)


def count(name: str, value: float = 1.0, **labels: Any) -> None:
    """Increment a counter if metrics are on (no-op otherwise)."""
    if _METRICS:
        _metrics.counter(name).inc(value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation if metrics are on."""
    if _METRICS:
        _metrics.histogram(name).observe(value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge if metrics are on."""
    if _METRICS:
        _metrics.gauge(name).set(value, **labels)


def get_tracer() -> Tracer:
    return _tracer


def get_metrics() -> MetricsRegistry:
    return _metrics


def configure(
    *,
    tracing: Optional[bool] = None,
    metrics: Optional[bool] = None,
    trace_file: Any = _UNSET,
) -> None:
    """Flip telemetry state; omitted arguments leave their aspect alone.

    Passing ``trace_file=<path>`` attaches the JSONL sink and, unless
    ``tracing`` is given explicitly, also turns tracing on;
    ``trace_file=None`` detaches the sink (in-memory tracing).
    """
    global _TRACING, _METRICS
    if trace_file is not _UNSET:
        _tracer.set_sink(trace_file)
        if tracing is None and trace_file is not None:
            tracing = True
    if tracing is not None:
        _TRACING = bool(tracing)
    if metrics is not None:
        _METRICS = bool(metrics)


def reset() -> None:
    """Return to the pristine disabled state (test isolation helper).

    Discards buffered spans, phase totals, and every metric family; does
    *not* flush — call :func:`flush` first to keep pending spans.
    """
    global _TRACING, _METRICS, _tracer, _metrics
    _TRACING = False
    _METRICS = False
    _tracer = Tracer()
    _metrics = MetricsRegistry()


def phase_snapshot() -> Dict[str, float]:
    """Cumulative seconds per span name so far."""
    return _tracer.phase_totals()


def phase_delta(before: Dict[str, float]) -> Dict[str, float]:
    """Per-phase seconds accumulated since ``before`` (a prior snapshot)."""
    now = _tracer.phase_totals()
    delta = {}
    for name, total in now.items():
        spent = total - before.get(name, 0.0)
        if spent > 0.0:
            delta[name] = spent
    return delta


def flush() -> int:
    """Flush buffered spans to the sink (if any); returns spans written."""
    return _tracer.flush()


def _configure_from_env() -> None:
    trace_file = os.environ.get("REPRO_TRACE_FILE")
    if trace_file:
        configure(tracing=True, trace_file=trace_file)
    if os.environ.get("REPRO_METRICS", "").strip() not in ("", "0", "false"):
        configure(metrics=True)


_configure_from_env()
atexit.register(flush)
