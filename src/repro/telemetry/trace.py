"""Span tracer: nested, thread- and process-aware timing spans.

A :class:`Span` records a name, ``trace_id``/``span_id``/``parent_id``
lineage, a wall-clock ``start`` (``time.time``), a monotonic ``duration``
(``time.perf_counter`` delta), the pid/thread that ran it, and optional
attributes.  Spans nest through a per-thread stack kept by the
:class:`Tracer`, so ``with span(...)`` blocks opened inside another span
automatically parent to it — including across :class:`TaskManager` worker
threads, which each get their own stack.

Process-awareness comes in two parts: span ids embed the pid (so ids stay
unique across ``ReplicaPool`` children), and :meth:`Tracer.adopt` grafts
serialized child-process spans into the parent trace, reparenting child
roots under the pipe round-trip span that produced them.

The disabled fast path is :data:`NULL_SPAN` — a slotted singleton whose
``__enter__``/``__exit__``/``set`` do nothing and allocate nothing, so hot
loops can keep their ``with telemetry.span(...)`` blocks unconditionally.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["NULL_SPAN", "Span", "Tracer", "summarize_trace"]

#: Finished spans buffered in memory before an automatic sink flush.
FLUSH_THRESHOLD = 10_000


class _NullSpan:
    """The disabled fast path: a do-nothing span singleton.

    ``__slots__ = ()`` and the module-level singleton guarantee the no-op
    path allocates nothing per call — ``telemetry.span(...)`` returns this
    exact object every time tracing is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed region.  Use as a context manager; reuse is not supported."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attrs",
        "_tracer",
        "_t0",
        "_thread",
    )

    def __init__(self, tracer: "Tracer", name: str):
        self.name = name
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.start = 0.0
        self.duration = 0.0
        self.attrs: Optional[Dict[str, Any]] = None
        self._tracer = tracer
        self._t0 = 0.0
        self._thread = ""

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (lazily allocating the dict)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack, self._thread = tracer._state()
        self.span_id = tracer._next_span_id()
        if stack:
            top = stack[-1]
            self.trace_id = top.trace_id
            self.parent_id = top.span_id
        else:
            self.trace_id = tracer._next_trace_id()
            self.parent_id = None
        stack.append(self)
        # One clock read per enter: the wall-clock start is reconstructed
        # from the tracer's epoch anchor instead of a second time.time() call.
        self._t0 = time.perf_counter()
        self.start = tracer._epoch + self._t0
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.duration = time.perf_counter() - self._t0
        stack, _ = self._tracer._state()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - misnested exit, still recover
            stack.remove(self)
        self._tracer._finish(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self._tracer._pid,
            "thread": self._thread,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """Collects finished spans, keeps per-phase totals, writes a JSONL sink."""

    def __init__(self, sink_path: Optional[str] = None):
        self._local = threading.local()
        self._lock = threading.Lock()
        # Mixed Span objects (hot path defers dict building) and adopted dicts.
        self._buffer: List[Any] = []
        self._phase_totals: Dict[str, float] = {}
        self._sink_path = sink_path
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        # Per-process/per-tracer constants so the hot path never re-queries
        # them: a pool child builds its own Tracer after fork/spawn, so the
        # cached pid is always the reporting process's pid.
        self._pid = os.getpid()
        self._id_prefix = "%x-" % self._pid
        self._trace_prefix = "t%x-" % self._pid
        self._epoch = time.time() - time.perf_counter()

    # -- span lifecycle ------------------------------------------------------ #
    def span(self, name: str) -> Span:
        return Span(self, name)

    def _state(self) -> tuple:
        local = self._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
            local.thread = threading.current_thread().name
        return stack, local.thread

    def _next_span_id(self) -> str:
        return self._id_prefix + "%x" % next(self._span_ids)

    def _next_trace_id(self) -> str:
        return self._trace_prefix + "%x" % next(self._trace_ids)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span)
            self._phase_totals[span.name] = (
                self._phase_totals.get(span.name, 0.0) + span.duration
            )
            overflow = (
                self._sink_path is not None and len(self._buffer) >= FLUSH_THRESHOLD
            )
        if overflow:
            self.flush()

    # -- cross-process merge ------------------------------------------------- #
    def adopt(
        self, spans: Iterable[Dict[str, Any]], parent: Optional[Span] = None
    ) -> None:
        """Graft serialized child-process spans into this trace.

        Every adopted span joins ``parent``'s trace; child *roots* (spans
        whose parent is not among the adopted batch) are reparented under
        ``parent`` itself, so a pool child's step timings hang off the pipe
        round-trip span that requested them.
        """
        spans = [dict(span) for span in spans]
        local_ids = {span["span_id"] for span in spans}
        with self._lock:
            for span in spans:
                if parent is not None:
                    span["trace_id"] = parent.trace_id
                    if span.get("parent_id") not in local_ids:
                        span["parent_id"] = parent.span_id
                self._buffer.append(span)
                self._phase_totals[span["name"]] = self._phase_totals.get(
                    span["name"], 0.0
                ) + span.get("duration", 0.0)

    # -- inspection ---------------------------------------------------------- #
    def phase_totals(self) -> Dict[str, float]:
        """Cumulative seconds per span name (cheap snapshot for records)."""
        with self._lock:
            return dict(self._phase_totals)

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the in-memory buffer (child→parent transport)."""
        with self._lock:
            spans, self._buffer = self._buffer, []
        return [s.to_dict() if isinstance(s, Span) else s for s in spans]

    # -- sink ---------------------------------------------------------------- #
    def set_sink(self, path: Optional[str]) -> None:
        self._sink_path = path

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path

    def flush(self) -> int:
        """Append buffered spans to the JSONL sink; returns spans written.

        Without a sink path the buffer is left in place (in-memory mode,
        used by tests and the overhead benchmark).
        """
        if self._sink_path is None:
            return 0
        with self._lock:
            spans, self._buffer = self._buffer, []
        if not spans:
            return 0
        with open(self._sink_path, "a", encoding="utf-8") as sink:
            for span in spans:
                record = span.to_dict() if isinstance(span, Span) else span
                sink.write(json.dumps(record) + "\n")
        return len(spans)


def summarize_trace(path: str) -> Dict[str, Any]:
    """Aggregate a JSONL trace file into per-phase time-share rows.

    Returns ``{"wall_seconds", "span_count", "phases": {name: {count,
    total_seconds, mean_seconds, share}}}`` where ``share`` is the phase's
    fraction of the trace wall (first span start → last span end).  Nested
    phases each count their own inclusive time, so shares can sum past 1.
    """
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    if not spans:
        return {"wall_seconds": 0.0, "span_count": 0, "phases": {}}
    first = min(span["start"] for span in spans)
    last = max(span["start"] + span.get("duration", 0.0) for span in spans)
    wall = max(last - first, 0.0)
    phases: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        entry = phases.setdefault(span["name"], {"count": 0, "total_seconds": 0.0})
        entry["count"] += 1
        entry["total_seconds"] += span.get("duration", 0.0)
    for entry in phases.values():
        entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
        entry["share"] = entry["total_seconds"] / wall if wall > 0 else 0.0
    return {"wall_seconds": wall, "span_count": len(spans), "phases": phases}
