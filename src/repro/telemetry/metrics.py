"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Families are created lazily by name through :class:`MetricsRegistry` and
carry labeled series (``name{worker="3"}``-style), rendered in the
Prometheus text exposition format by :meth:`MetricsRegistry.render` — the
body of the service's ``GET /v1/metrics`` endpoint.

Histograms use fixed buckets (latency-oriented defaults) so observation is
O(log buckets) with no per-sample storage; :meth:`Histogram.quantile`
linearly interpolates p50/p95/p99 from the cumulative bucket counts.

All mutation happens under a per-family lock — cheap enough for the
per-step counters this repo records, and required for correctness under
the TaskManager's worker threads.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


class _Family:
    """Base for one named metric family holding labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, Any] = {}

    def label_keys(self) -> Iterable[LabelKey]:
        with self._lock:
            return list(self._series)


class Counter(_Family):
    """Monotonically increasing per-label totals."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._series.values())

    def render(self) -> Iterable[str]:
        with self._lock:
            items = sorted(self._series.items())
        for key, value in items:
            yield f"{self.name}{_render_labels(key)} {value:g}"


class Gauge(_Family):
    """Last-write-wins instantaneous values."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def render(self) -> Iterable[str]:
        with self._lock:
            items = sorted(self._series.items())
        for key, value in items:
            yield f"{self.name}{_render_labels(key)} {value:g}"


class Histogram(_Family):
    """Fixed-bucket distribution with interpolated quantiles."""

    kind = "histogram"

    #: Latency-oriented defaults (seconds), sub-millisecond to half a minute.
    DEFAULT_BUCKETS = (
        0.001,
        0.0025,
        0.005,
        0.01,
        0.025,
        0.05,
        0.1,
        0.25,
        0.5,
        1.0,
        2.5,
        5.0,
        10.0,
        30.0,
    )

    def __init__(self, name: str, help: str = "", buckets: Optional[Iterable[float]] = None):
        super().__init__(name, help)
        bounds = tuple(sorted(buckets)) if buckets is not None else self.DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                # counts has one extra slot for the +Inf bucket.
                state = self._series[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            state["counts"][bisect_left(self.buckets, value)] += 1
            state["sum"] += value
            state["count"] += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state["count"] if state else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state["sum"] if state else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        """Linearly interpolated quantile (0 < q <= 1) from bucket counts.

        Values in the +Inf bucket clamp to the largest finite bound — with
        fixed buckets that is the honest upper estimate available.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            state = self._series.get(_label_key(labels))
            counts = list(state["counts"]) if state else None
            total = state["count"] if state else 0
        if not counts or total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lower = self.buckets[index - 1] if index > 0 else 0.0
            if index >= len(self.buckets):  # +Inf bucket: clamp
                return self.buckets[-1]
            upper = self.buckets[index]
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.buckets[-1]  # pragma: no cover - exhausted by loop above

    def render(self) -> Iterable[str]:
        with self._lock:
            items = sorted(
                (key, list(state["counts"]), state["sum"], state["count"])
                for key, state in self._series.items()
            )
        for key, counts, total_sum, total_count in items:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = _render_labels(key, ("le", f"{bound:g}"))
                yield f"{self.name}_bucket{labels} {cumulative}"
            cumulative += counts[-1]
            yield f"{self.name}_bucket{_render_labels(key, ('le', '+Inf'))} {cumulative}"
            yield f"{self.name}_sum{_render_labels(key)} {total_sum:g}"
            yield f"{self.name}_count{_render_labels(key)} {total_count}"


class MetricsRegistry:
    """Name-keyed family store with Prometheus text rendering."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get(self, name: str, cls: type, help: str, **kwargs: Any) -> Any:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = cls(name, help=help, **kwargs)
            elif not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {cls.kind}"
                )
            return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Iterable[float]] = None
    ) -> Histogram:
        return self._get(name, Histogram, help, buckets=buckets)

    def families(self) -> Dict[str, _Family]:
        with self._lock:
            return dict(self._families)

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for name in sorted(self.families()):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")
