"""Shared trainer interface, evaluation loop and result records.

Every algorithm (BSP, FedAvg, SSP, local SGD, SelSync, compressed BSP)
implements :meth:`BaseTrainer.train_step`, which advances the whole cluster
by one global iteration and charges the simulated clock.  :meth:`run` drives
the step loop, evaluates periodically, applies the convergence stopping rule
used for Table I, and assembles a :class:`TrainingResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.cluster.cluster import SimulatedCluster
from repro.metrics.convergence import ConvergenceDetector
from repro.metrics.evaluation import EvalResult
from repro.metrics.lssr import LSSRTracker
from repro.optim.schedules import LRSchedule


@dataclass
class EvalPoint:
    """One evaluation checkpoint along a training run."""

    step: int
    sim_time: float
    metric: float
    loss: float
    epoch: float


@dataclass
class TrainingResult:
    """Summary of one training run (one row of Table I)."""

    algorithm: str
    metric_name: str
    iterations: int
    sim_time_seconds: float
    final_metric: float
    best_metric: float
    final_loss: float
    lssr: float
    communication_bytes: float
    history: List[EvalPoint] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def higher_is_better(self) -> bool:
        """Metric polarity: accuracy-style metrics rise, perplexity falls."""
        return self.metric_name != "perplexity"

    def speedup_over(self, baseline: "TrainingResult") -> float:
        """Wall-clock speedup of this run relative to ``baseline`` (e.g. BSP)."""
        if self.sim_time_seconds <= 0:
            raise ValueError("cannot compute a speedup for a zero-duration run")
        return baseline.sim_time_seconds / self.sim_time_seconds

    def convergence_difference(self, baseline: "TrainingResult") -> float:
        """Final-metric difference vs a baseline, signed so positive = better."""
        diff = self.best_metric - baseline.best_metric
        return diff if self.higher_is_better else -diff


class BaseTrainer:
    """Common run loop for all distributed training algorithms."""

    name = "base"

    def __init__(
        self,
        cluster: SimulatedCluster,
        lr_schedule: Optional[LRSchedule] = None,
        eval_every: int = 50,
    ) -> None:
        if eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {eval_every}")
        self.cluster = cluster
        self.lr_schedule = lr_schedule
        self.eval_every = int(eval_every)
        self.lssr_tracker = LSSRTracker()
        self.global_step = 0
        self.history: List[EvalPoint] = []
        self._last_eval: Optional[EvalResult] = None
        self.fault_controller = None

    # ------------------------------------------------------------------ #
    # hooks for subclasses
    # ------------------------------------------------------------------ #
    def train_step(self) -> Dict[str, float]:
        """Advance the cluster by one global iteration; returns step info."""
        raise NotImplementedError

    def global_state(self) -> Dict[str, np.ndarray]:
        """Model state evaluated at checkpoints (default: replica average)."""
        return self.cluster.average_worker_states()

    # ------------------------------------------------------------------ #
    # fault injection (repro.faults)
    # ------------------------------------------------------------------ #
    def attach_fault_controller(self, controller) -> None:
        """Arm a :class:`~repro.faults.controller.FaultController`.

        The controller's ``before_step(step)`` runs at the start of every
        global step, applying scheduled crash / rejoin / straggler events
        before the step computes.
        """
        self.fault_controller = controller

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #
    def trainer_state(self) -> Dict:
        """Algorithm-level state for :meth:`checkpoint`; subclasses extend."""
        return {
            "global_step": self.global_step,
            "history": list(self.history),
            "lssr_local": self.lssr_tracker.local_steps,
            "lssr_sync": self.lssr_tracker.sync_steps,
            "last_eval": self._last_eval,
        }

    def load_trainer_state(self, state: Dict) -> None:
        """Restore the state captured by :meth:`trainer_state`."""
        self.global_step = state["global_step"]
        self.history = list(state["history"])
        self.lssr_tracker.local_steps = state["lssr_local"]
        self.lssr_tracker.sync_steps = state["lssr_sync"]
        self._last_eval = state["last_eval"]

    def checkpoint(self) -> Dict:
        """Snapshot the cluster plus this trainer's algorithm state."""
        return {"cluster": self.cluster.checkpoint(), "trainer": self.trainer_state()}

    def restore(self, ckpt: Dict) -> None:
        """Restore a :meth:`checkpoint` — continuation is bit-identical."""
        self.cluster.restore(ckpt["cluster"])
        self.load_trainer_state(ckpt["trainer"])

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def current_lr(self) -> Optional[float]:
        """Learning rate at the current step (``None`` = optimizer default)."""
        if self.lr_schedule is None:
            return None
        return self.lr_schedule(self.global_step)

    def mean_epoch_progress(self) -> float:
        """Average fraction of the training set seen across workers."""
        return float(np.mean([w.epoch_progress for w in self.cluster.workers]))

    def evaluate(self) -> EvalResult:
        """Evaluate :meth:`global_state` on the held-out test set."""
        result = self.cluster.evaluate_state(self.global_state())
        self._last_eval = result
        return result

    def _record_eval(self, result: EvalResult) -> EvalPoint:
        point = EvalPoint(
            step=self.global_step,
            sim_time=self.cluster.clock.elapsed,
            metric=result.metric,
            loss=result.loss,
            epoch=self.mean_epoch_progress(),
        )
        self.history.append(point)
        return point

    # ------------------------------------------------------------------ #
    # the run loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        max_iterations: int,
        convergence: Optional[ConvergenceDetector] = None,
        eval_every: Optional[int] = None,
    ) -> TrainingResult:
        """Train for up to ``max_iterations`` global steps.

        If a :class:`ConvergenceDetector` is supplied the run stops early
        once the test metric plateaus (the Table-I stopping rule).
        """
        stepper = self.run_stepwise(
            max_iterations, convergence=convergence, eval_every=eval_every
        )
        while True:
            try:
                next(stepper)
            except StopIteration as stop:
                return stop.value

    def run_stepwise(
        self,
        max_iterations: int,
        convergence: Optional[ConvergenceDetector] = None,
        eval_every: Optional[int] = None,
    ):
        """Generator form of :meth:`run`: yields the step number after every
        global step, then returns the :class:`TrainingResult` (raised as
        ``StopIteration.value``).

        :meth:`run` simply drains this generator, so the two are identical
        run for run.  The stepwise form exists so a driver can interleave
        several trainers one global step at a time — the stacked sweep
        executor (:mod:`repro.engine.sweep_exec`) advances S trainers in
        lockstep over one fused ``(S·N, D)`` gradient computation.

        Note the usual generator caveat: argument validation only fires on
        the first ``next()``, not at call time.
        """
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        eval_every = eval_every or self.eval_every
        best_metric: Optional[float] = None
        higher_is_better = True
        final_result: Optional[EvalResult] = None

        for _ in range(max_iterations):
            if self.fault_controller is not None:
                self.fault_controller.before_step(self.global_step)
            with telemetry.span("trainer.step"):
                self.train_step()
            self.global_step += 1
            self.cluster.global_step = self.global_step
            converged = False
            should_eval = (
                self.global_step % eval_every == 0 or self.global_step == max_iterations
            )
            if should_eval:
                with telemetry.span("trainer.eval"):
                    result = self.evaluate()
                final_result = result
                higher_is_better = result.metric_name != "perplexity"
                self._record_eval(result)
                if best_metric is None:
                    best_metric = result.metric
                elif higher_is_better:
                    best_metric = max(best_metric, result.metric)
                else:
                    best_metric = min(best_metric, result.metric)
                converged = convergence is not None and convergence.update(
                    result.metric, self.global_step
                )
            yield self.global_step
            if converged:
                break

        if final_result is None:
            with telemetry.span("trainer.eval"):
                final_result = self.evaluate()
            self._record_eval(final_result)
            best_metric = final_result.metric

        # Communication accounting covers both transport paths: collective
        # calls through the backend (BSP all-reduce, flags all-gather) and
        # parameter-server pushes (SelSync / FedAvg / local-SGD sync rounds,
        # SSP async updates).
        comm_bytes = (
            self.cluster.backend.record.total_bytes
            + self.cluster.ps.total_pushed_bytes
        )
        return TrainingResult(
            algorithm=self.describe(),
            metric_name=final_result.metric_name,
            iterations=self.global_step,
            sim_time_seconds=self.cluster.clock.elapsed,
            final_metric=final_result.metric,
            best_metric=float(best_metric),
            final_loss=final_result.loss,
            lssr=self.lssr_tracker.value,
            communication_bytes=comm_bytes,
            history=list(self.history),
            extras=self.result_extras(),
        )

    # ------------------------------------------------------------------ #
    # descriptions
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Human-readable label used in result records and report tables."""
        return self.name

    def result_extras(self) -> Dict[str, float]:
        """Algorithm-specific numbers merged into the result record."""
        return {}
