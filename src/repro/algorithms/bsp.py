"""Bulk-synchronous parallel (BSP) training (§II-A).

Every iteration all workers compute gradients on their own mini-batch, the
gradients are averaged (through the PS in the paper's deployment) and every
worker applies the same averaged update, so all replicas stay identical.
BSP is the accuracy reference and the speedup baseline for Table I.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer
from repro.cluster.cluster import SimulatedCluster
from repro.optim.schedules import LRSchedule


class BSPTrainer(BaseTrainer):
    """Aggregate gradients and synchronize on every single step (LSSR = 0)."""

    name = "bsp"

    def __init__(
        self,
        cluster: SimulatedCluster,
        lr_schedule: Optional[LRSchedule] = None,
        eval_every: int = 50,
    ) -> None:
        super().__init__(cluster, lr_schedule=lr_schedule, eval_every=eval_every)

    def train_step(self) -> Dict[str, float]:
        cluster = self.cluster
        lr = self.current_lr()
        batches = cluster.next_batches()
        losses = cluster.compute_gradients_all(batches)
        cluster.charge_compute_step()

        # Gradients already live as rows of the (N, D) worker matrix, so the
        # all-reduce is one fused mean over it (the active rows only, under
        # an elastic fault mask).
        averaged = cluster.backend.allreduce_matrix(cluster.active_grads, op="mean")
        cluster.charge_sync()
        cluster.apply_local_updates(lr=lr, grads=averaged)
        # Keep the PS state in line with the (identical) replicas so the
        # global checkpoint matches what a PS deployment would serve.
        cluster.ps.set_state(cluster.primary_worker.param_vector)
        self.lssr_tracker.record_sync()
        return {"loss": float(np.mean(losses)), "synchronized": 1.0}

    def global_state(self):
        return self.cluster.primary_worker.get_state()
