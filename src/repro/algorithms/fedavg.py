"""Federated Averaging, FedAvg(C, E) (§II-B).

Workers train locally; every ``E``-th fraction of an epoch a fraction ``C``
of the workers is selected, their parameters are averaged into the global
model, and the global model is broadcast back to *all* workers (the next
round starts from the aggregated state).  The paper evaluates (C, E) in
{1, 0.5} x {0.25, 0.125}, i.e. aggregation 4 or 8 times per epoch from all
or half of the workers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer
from repro.cluster.cluster import SimulatedCluster
from repro.optim.schedules import LRSchedule
from repro.utils.rng import new_rng


class FedAvgTrainer(BaseTrainer):
    """FedAvg with participation fraction C and synchronization factor E."""

    name = "fedavg"

    def __init__(
        self,
        cluster: SimulatedCluster,
        participation: float = 1.0,
        sync_factor: float = 0.25,
        lr_schedule: Optional[LRSchedule] = None,
        eval_every: int = 50,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(cluster, lr_schedule=lr_schedule, eval_every=eval_every)
        if not 0.0 < participation <= 1.0:
            raise ValueError(f"participation C must be in (0, 1], got {participation}")
        if not 0.0 < sync_factor <= 1.0:
            raise ValueError(f"sync_factor E must be in (0, 1], got {sync_factor}")
        self.participation = float(participation)
        self.sync_factor = float(sync_factor)
        # E is a fraction of an epoch: synchronize every E * steps_per_epoch
        # local iterations (uniformly spaced aggregation points).
        steps_per_epoch = max(cluster.workers[0].loader.steps_per_epoch, 1)
        self.sync_interval = max(int(round(self.sync_factor * steps_per_epoch)), 1)
        self._rng = new_rng(seed if seed is not None else cluster.config.seed + 101)
        self.aggregation_rounds = 0

    def describe(self) -> str:
        """Label including participation and sync factor."""
        return f"fedavg(C={self.participation}, E={self.sync_factor})"

    def result_extras(self) -> Dict[str, float]:
        return {
            "participation": self.participation,
            "sync_factor": self.sync_factor,
            "sync_interval_steps": float(self.sync_interval),
            "aggregation_rounds": float(self.aggregation_rounds),
        }

    def _select_participants(self) -> List[int]:
        n = self.cluster.num_workers
        k = max(int(round(self.participation * n)), 1)
        chosen = self._rng.choice(n, size=k, replace=False)
        return sorted(int(c) for c in chosen)

    def train_step(self) -> Dict[str, float]:
        cluster = self.cluster
        lr = self.current_lr()
        batches = [worker.next_batch() for worker in cluster.workers]
        losses = cluster.compute_gradients_all(batches)
        cluster.apply_local_updates(lr=lr)
        cluster.charge_compute_step()

        synchronize = (self.global_step + 1) % self.sync_interval == 0
        if synchronize:
            participants = self._select_participants()
            # Row-select the participating replicas from the worker matrix;
            # full participation pushes the matrix itself (no copy).
            if len(participants) == cluster.num_workers:
                rows = cluster.matrix.params
            else:
                rows = cluster.matrix.params[participants]
            new_global = cluster.ps.push_matrix_parameters(rows)
            cluster.broadcast_state(new_global)
            cluster.charge_sync()
            self.aggregation_rounds += 1
            self.lssr_tracker.record_sync()
        else:
            self.lssr_tracker.record_local()
        return {"loss": float(np.mean(losses)), "synchronized": float(synchronize)}

    def global_state(self):
        """Evaluate the PS global model (what FedAvg serves between rounds)."""
        if self.aggregation_rounds > 0:
            return self.cluster.ps.pull()
        return self.cluster.average_worker_states()
