"""Stale-synchronous parallel (SSP) training (§II-C).

Workers train asynchronously against the global model on the parameter
server: after every local step a worker pushes its parameter *delta* to the
PS (non-blocking) and pulls the current global state, which may already
contain other workers' updates (this is where staleness enters).  A worker
that runs more than ``staleness`` iterations ahead of the slowest worker is
blocked until the slow worker catches up.

In the lockstep simulator asynchrony is modelled by processing workers in a
round-robin order inside each global step: a worker computes its gradient
against the state it last pulled, applies it, pushes the delta and pulls the
newer global state.  Per-worker simulated clocks advance independently
(compute plus a small non-blocking transfer cost) and the staleness bound is
enforced against the per-worker iteration counters maintained by the PS.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer
from repro.cluster.cluster import SimulatedCluster
from repro.optim.schedules import LRSchedule


class SSPTrainer(BaseTrainer):
    """Asynchronous PS training with a bounded staleness window."""

    name = "ssp"

    def __init__(
        self,
        cluster: SimulatedCluster,
        staleness: int = 100,
        lr_schedule: Optional[LRSchedule] = None,
        eval_every: int = 50,
    ) -> None:
        super().__init__(cluster, lr_schedule=lr_schedule, eval_every=eval_every)
        if staleness < 0:
            raise ValueError(f"staleness must be non-negative, got {staleness}")
        self.staleness = int(staleness)
        self.blocked_steps = 0
        # Each worker starts from the PS state (pullFromPS).  Pulled states
        # are kept as flat vectors so the per-step delta push is one fused
        # subtraction on the worker's parameter row.
        initial = cluster.ps.pull_vector()
        cluster.broadcast_state(initial)
        self._last_pulled = [initial for _ in range(cluster.num_workers)]

    def describe(self) -> str:
        """Label including the staleness bound, e.g. ``ssp(s=100)``."""
        return f"ssp(s={self.staleness})"

    def result_extras(self) -> Dict[str, float]:
        return {"staleness": float(self.staleness), "blocked_steps": float(self.blocked_steps)}

    def trainer_state(self) -> Dict:
        state = super().trainer_state()
        state["last_pulled"] = [vec.copy() for vec in self._last_pulled]
        state["blocked_steps"] = self.blocked_steps
        return state

    def load_trainer_state(self, state: Dict) -> None:
        super().load_trainer_state(state)
        self._last_pulled = [vec.copy() for vec in state["last_pulled"]]
        self.blocked_steps = state["blocked_steps"]

    def train_step(self) -> Dict[str, float]:
        cluster = self.cluster
        lr = self.current_lr()
        speeds = cluster.speed_model.speed_factors(cluster.num_workers, self.global_step)
        losses = []
        for worker, speed in zip(cluster.workers, speeds):
            # Staleness bound: a worker too far ahead waits for the slowest
            # worker; waiting is charged as a barrier against its clock.
            if cluster.ps.staleness(worker.worker_id) > self.staleness:
                self.blocked_steps += 1
                slowest = float(cluster.clock.worker_time.max())
                wait = max(slowest - cluster.clock.worker_elapsed(worker.worker_id), 0.0)
                if wait > 0:
                    cluster.clock.advance_worker(worker.worker_id, wait, bucket="other")

            reference = self._last_pulled[worker.worker_id]
            # Routed through the cluster so a replica pool can run the
            # forward/backward in the worker's own process (the shared
            # parameter row is already current; the gradient row receives
            # the result).  Batch sampling stays here, on the loader.
            loss = cluster.compute_gradients_worker(worker)
            worker.apply_update(lr=lr)
            delta = worker.state_delta_vector(reference)
            new_global = cluster.ps.async_apply_delta_vector(worker.worker_id, delta)
            worker.set_state(new_global)
            self._last_pulled[worker.worker_id] = new_global
            losses.append(loss)

            compute_s = cluster.compute_model.step_seconds(cluster.batch_size, speed)
            push_pull_s = cluster.comm_model.ssp_push_pull_seconds(
                cluster.workload_spec.model_bytes
            )
            cluster.clock.advance_worker(worker.worker_id, compute_s, bucket="compute")
            cluster.clock.advance_worker(
                worker.worker_id, push_pull_s, bucket="communication"
            )
        # SSP has no explicit averaging, so LSSR is undefined; every step is
        # counted as asynchronous progress (reported as LSSR "n/a" upstream).
        return {"loss": float(np.mean(losses)), "synchronized": 0.0}

    def global_state(self):
        return self.cluster.ps.pull()
