"""Distributed training algorithms sharing one trainer interface.

* :class:`BSPTrainer` — bulk-synchronous parallel (aggregate every step),
* :class:`FedAvgTrainer` — federated averaging with participation fraction C
  and per-epoch synchronization factor E,
* :class:`SSPTrainer` — stale-synchronous parallel with staleness bound s,
* :class:`LocalSGDTrainer` — fixed-period local SGD (synchronize every H steps),
* :class:`SelSyncTrainer` — the paper's contribution (defined in
  :mod:`repro.core.selsync`, re-exported lazily here to avoid an import
  cycle),
* :class:`CompressedBSPTrainer` — BSP with a pluggable gradient compressor
  (defined in :mod:`repro.compression.trainer`, also re-exported lazily).
"""

from repro.algorithms.base import BaseTrainer, TrainingResult, EvalPoint
from repro.algorithms.bsp import BSPTrainer
from repro.algorithms.fedavg import FedAvgTrainer
from repro.algorithms.ssp import SSPTrainer
from repro.algorithms.localsgd import LocalSGDTrainer

__all__ = [
    "BaseTrainer",
    "TrainingResult",
    "EvalPoint",
    "BSPTrainer",
    "FedAvgTrainer",
    "SSPTrainer",
    "LocalSGDTrainer",
    "SelSyncTrainer",
    "CompressedBSPTrainer",
]


def __getattr__(name: str):
    # SelSyncTrainer and CompressedBSPTrainer subclass BaseTrainer, so their
    # modules import this package; resolving them lazily breaks the cycle
    # while keeping `from repro.algorithms import SelSyncTrainer` working.
    if name == "SelSyncTrainer":
        from repro.core.selsync import SelSyncTrainer

        return SelSyncTrainer
    if name == "CompressedBSPTrainer":
        from repro.compression.trainer import CompressedBSPTrainer

        return CompressedBSPTrainer
    raise AttributeError(f"module 'repro.algorithms' has no attribute {name!r}")
