"""Fixed-period local SGD: synchronize parameters every H local steps.

Not evaluated under its own name in the paper, but it is the degenerate
behaviour SelSync approaches for large δ and the natural ablation between
BSP (H = 1) and pure local training (H = ∞); used by the δ-sweep bench.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer
from repro.cluster.cluster import SimulatedCluster
from repro.optim.schedules import LRSchedule


class LocalSGDTrainer(BaseTrainer):
    """Workers train locally and average parameters every ``sync_period`` steps."""

    name = "local_sgd"

    def __init__(
        self,
        cluster: SimulatedCluster,
        sync_period: int = 10,
        lr_schedule: Optional[LRSchedule] = None,
        eval_every: int = 50,
    ) -> None:
        super().__init__(cluster, lr_schedule=lr_schedule, eval_every=eval_every)
        if sync_period < 1:
            raise ValueError(f"sync_period must be >= 1, got {sync_period}")
        self.sync_period = int(sync_period)

    def describe(self) -> str:
        """Label including the sync period, e.g. ``local_sgd(H=10)``."""
        return f"local_sgd(H={self.sync_period})"

    def train_step(self) -> Dict[str, float]:
        cluster = self.cluster
        lr = self.current_lr()
        batches = cluster.next_batches()
        losses = cluster.compute_gradients_all(batches)
        cluster.apply_local_updates(lr=lr)
        cluster.charge_compute_step()

        synchronize = (self.global_step + 1) % self.sync_period == 0
        if synchronize:
            new_global = cluster.ps.push_matrix_parameters(cluster.active_params)
            cluster.broadcast_state(new_global)
            cluster.charge_sync()
            self.lssr_tracker.record_sync()
        else:
            self.lssr_tracker.record_local()
        return {"loss": float(np.mean(losses)), "synchronized": float(synchronize)}

    def result_extras(self) -> Dict[str, float]:
        return {"sync_period": float(self.sync_period)}
