"""repro: reproduction of "Accelerating Distributed ML Training via Selective
Synchronization" (SelSync, IEEE CLUSTER 2023) on a pure-NumPy simulated cluster.

Top-level convenience re-exports cover the most common entry points; see the
subpackages for the full API:

* :mod:`repro.core`        — SelSync itself (Δ(gᵢ) tracker, δ rule, trainer)
* :mod:`repro.algorithms`  — BSP, FedAvg, SSP, local SGD baselines
* :mod:`repro.compression` — gradient-compression baselines
* :mod:`repro.nn`          — NumPy neural-network substrate
* :mod:`repro.optim`       — optimizers and LR schedules
* :mod:`repro.data`        — synthetic datasets, SelDP/DefDP, data injection
* :mod:`repro.comm`        — simulated PS / collectives / cost models
* :mod:`repro.cluster`     — simulated workers, clocks, compute models
* :mod:`repro.engine`      — flat-buffer execution engine (FlatBuffer, WorkerMatrix)
* :mod:`repro.parallel`    — shared-memory multiprocessing replica pool
* :mod:`repro.stats`       — EWMA, KDE, Hessian eigenvalue estimation
* :mod:`repro.metrics`     — accuracy/perplexity, LSSR, throughput, convergence
* :mod:`repro.harness`     — workload presets, experiment runner, reporting
* :mod:`repro.scenarios`   — declarative scenario registry and runner
"""

from repro.core import SelSyncConfig, SelSyncTrainer, GradientChangeTracker
from repro.engine import FlatBuffer, ParamSpec, WorkerMatrix
from repro.algorithms import (
    BSPTrainer,
    FedAvgTrainer,
    SSPTrainer,
    LocalSGDTrainer,
    TrainingResult,
)
from repro.harness import build_workload, build_cluster, make_trainer, run_experiment
from repro.scenarios import get_scenario, run_scenario, scenario_names

__version__ = "0.1.0"

__all__ = [
    "SelSyncConfig",
    "SelSyncTrainer",
    "GradientChangeTracker",
    "FlatBuffer",
    "ParamSpec",
    "WorkerMatrix",
    "BSPTrainer",
    "FedAvgTrainer",
    "SSPTrainer",
    "LocalSGDTrainer",
    "TrainingResult",
    "build_workload",
    "build_cluster",
    "make_trainer",
    "run_experiment",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "__version__",
]
