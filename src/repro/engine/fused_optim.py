"""Fused whole-cluster optimizer updates.

When every worker runs the same optimizer family with identical
hyperparameters (the lockstep simulator's normal configuration), the N
per-worker flat updates collapse further into a handful of ``(N, D)``
matrix operations: the velocity buffers of all workers are rows of one
matrix, exactly like the parameter and gradient buffers.

Per-worker optimizers stay fully functional — their state is *re-bound*
onto the fused rows, so mixing fused steps (the trainers' hot path) with
individual ``optimizer.step()`` calls (SSP's sequential path, tests) keeps
one consistent state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.engine.worker_matrix import WorkerMatrix


class FusedSGDUpdate:
    """All workers' SGD steps as a few fused ``(N, D)`` matrix operations."""

    def __init__(self, workers: Sequence[object], matrix: WorkerMatrix) -> None:
        self._workers = list(workers)
        self._optimizers = [w.optimizer for w in workers]
        self._matrix = matrix
        ref = self._optimizers[0]
        self.momentum = ref.momentum
        self.weight_decay = ref.weight_decay
        self.nesterov = ref.nesterov
        if self.momentum:
            self.velocity = np.zeros_like(matrix.params)
            for row, opt in zip(self.velocity, self._optimizers):
                opt.rebind_velocity(row)
        else:
            self.velocity = None

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, workers: Sequence[object], matrix: WorkerMatrix
    ) -> Optional["FusedSGDUpdate"]:
        """Build a fused updater, or None when workers aren't uniform SGD."""
        from repro.optim.sgd import SGD

        optimizers = [getattr(w, "optimizer", None) for w in workers]
        if not optimizers or any(type(o) is not SGD for o in optimizers):
            return None
        ref = optimizers[0]
        for opt in optimizers[1:]:
            if (
                opt.momentum != ref.momentum
                or opt.weight_decay != ref.weight_decay
                or opt.nesterov != ref.nesterov
            ):
                return None
        if any(o._trainable_mask is not None for o in optimizers):
            return None
        return cls(workers, matrix)

    # ------------------------------------------------------------------ #
    def apply(
        self,
        lr: Optional[float] = None,
        grads: Optional[np.ndarray] = None,
    ) -> bool:
        """One optimizer step for every worker.

        ``grads=None`` uses each worker's own gradient row; a flat ``(D,)``
        vector applies the same (aggregated) gradient to every replica.
        Returns False when the fused step cannot run (diverged per-worker
        learning rates) and the caller must fall back to the loop.
        """
        optimizers = self._optimizers
        if lr is not None:
            for opt in optimizers:
                opt.set_lr(lr)
        lr_value = optimizers[0].lr
        if any(opt.lr != lr_value for opt in optimizers[1:]):
            return False

        params = self._matrix.params
        if grads is None:
            grad_rows: np.ndarray = self._matrix.grads
        else:
            grad_rows = np.asarray(grads, dtype=self._matrix.dtype).reshape(1, -1)
        if self.weight_decay:
            grad_rows = grad_rows + self.weight_decay * params
        if self.momentum:
            buf = self.velocity
            buf *= self.momentum
            buf += grad_rows
            if self.nesterov:
                step_dir: Union[np.ndarray, float] = grad_rows + self.momentum * buf
            else:
                step_dir = buf
        else:
            step_dir = grad_rows
        params -= lr_value * step_dir

        for opt in optimizers:
            opt._step_count += 1
        for worker in self._workers:
            worker.steps_taken += 1
        return True


class FusedAdamUpdate:
    """All workers' Adam steps as a few fused ``(N, D)`` matrix operations.

    The first/second moment buffers of every worker are rows of two ``(N, D)``
    matrices (the exact analog of :class:`FusedSGDUpdate`'s velocity matrix);
    each per-worker :class:`~repro.optim.adam.Adam` is re-bound onto its rows,
    so fused steps and individual ``optimizer.step()`` calls (SSP's sequential
    path, tests) share one consistent state.  The arithmetic mirrors
    ``Adam._update_flat`` operation for operation, so a fused step is
    bit-identical to the per-worker loop.
    """

    def __init__(self, workers: Sequence[object], matrix: WorkerMatrix) -> None:
        self._workers = list(workers)
        self._optimizers = [w.optimizer for w in workers]
        self._matrix = matrix
        ref = self._optimizers[0]
        self.beta1 = ref.beta1
        self.beta2 = ref.beta2
        self.eps = ref.eps
        self.weight_decay = ref.weight_decay
        self.m = np.zeros_like(matrix.params)
        self.v = np.zeros_like(matrix.params)
        for m_row, v_row, opt in zip(self.m, self.v, self._optimizers):
            opt.rebind_moments(m_row, v_row)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, workers: Sequence[object], matrix: WorkerMatrix
    ) -> Optional["FusedAdamUpdate"]:
        """Build a fused updater, or None when workers aren't uniform Adam."""
        from repro.optim.adam import Adam

        optimizers = [getattr(w, "optimizer", None) for w in workers]
        if not optimizers or any(type(o) is not Adam for o in optimizers):
            return None
        ref = optimizers[0]
        for opt in optimizers[1:]:
            if (
                opt.beta1 != ref.beta1
                or opt.beta2 != ref.beta2
                or opt.eps != ref.eps
                or opt.weight_decay != ref.weight_decay
            ):
                return None
        if any(o._trainable_mask is not None for o in optimizers):
            return None
        return cls(workers, matrix)

    # ------------------------------------------------------------------ #
    def apply(
        self,
        lr: Optional[float] = None,
        grads: Optional[np.ndarray] = None,
    ) -> bool:
        """One Adam step for every worker (see :meth:`FusedSGDUpdate.apply`).

        Returns False when the fused step cannot run (diverged per-worker
        learning rates or bias-correction timesteps, e.g. after SSP stepped
        workers individually) and the caller must fall back to the loop.
        """
        optimizers = self._optimizers
        if lr is not None:
            for opt in optimizers:
                opt.set_lr(lr)
        lr_value = optimizers[0].lr
        if any(opt.lr != lr_value for opt in optimizers[1:]):
            return False
        t_value = optimizers[0]._t
        if any(opt._t != t_value for opt in optimizers[1:]):
            return False

        params = self._matrix.params
        if grads is None:
            grad_rows: np.ndarray = self._matrix.grads
        else:
            grad_rows = np.asarray(grads, dtype=self._matrix.dtype).reshape(1, -1)
        t = t_value + 1
        for opt in optimizers:
            opt._t = t
        if self.weight_decay:
            grad_rows = grad_rows + self.weight_decay * params
        m, v = self.m, self.v
        m *= self.beta1
        m += (1.0 - self.beta1) * grad_rows
        v *= self.beta2
        v += (1.0 - self.beta2) * grad_rows**2
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        params -= lr_value * m_hat / (np.sqrt(v_hat) + self.eps)

        for opt in optimizers:
            opt._step_count += 1
        for worker in self._workers:
            worker.steps_taken += 1
        return True


def build_fused_update(workers: Sequence[object], matrix: WorkerMatrix):
    """Fused whole-cluster updater for a uniform worker set, or None.

    Tries each fused optimizer family in turn; trainers treat the result
    uniformly through its ``apply(lr=..., grads=...) -> bool`` interface.
    """
    fused = FusedSGDUpdate.build(workers, matrix)
    if fused is None:
        fused = FusedAdamUpdate.build(workers, matrix)
    return fused
