"""Fused whole-cluster optimizer updates.

When every worker runs the same optimizer family with identical
hyperparameters (the lockstep simulator's normal configuration), the N
per-worker flat updates collapse further into a handful of ``(N, D)``
matrix operations: the velocity buffers of all workers are rows of one
matrix, exactly like the parameter and gradient buffers.

Per-worker optimizers stay fully functional — their state is *re-bound*
onto the fused rows, so mixing fused steps (the trainers' hot path) with
individual ``optimizer.step()`` calls (SSP's sequential path, tests) keeps
one consistent state.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.engine.worker_matrix import WorkerMatrix


class FusedSGDUpdate:
    """All workers' SGD steps as a few fused ``(N, D)`` matrix operations."""

    def __init__(self, workers: Sequence[object], matrix: WorkerMatrix) -> None:
        self._workers = list(workers)
        self._optimizers = [w.optimizer for w in workers]
        self._matrix = matrix
        ref = self._optimizers[0]
        self.momentum = ref.momentum
        self.weight_decay = ref.weight_decay
        self.nesterov = ref.nesterov
        if self.momentum:
            self.velocity = np.zeros_like(matrix.params)
            for row, opt in zip(self.velocity, self._optimizers):
                opt.rebind_velocity(row)
        else:
            self.velocity = None

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, workers: Sequence[object], matrix: WorkerMatrix
    ) -> Optional["FusedSGDUpdate"]:
        """Build a fused updater, or None when workers aren't uniform SGD."""
        from repro.optim.sgd import SGD

        optimizers = [getattr(w, "optimizer", None) for w in workers]
        if not optimizers or any(type(o) is not SGD for o in optimizers):
            return None
        ref = optimizers[0]
        for opt in optimizers[1:]:
            if (
                opt.momentum != ref.momentum
                or opt.weight_decay != ref.weight_decay
                or opt.nesterov != ref.nesterov
            ):
                return None
        if any(o._trainable_mask is not None for o in optimizers):
            return None
        return cls(workers, matrix)

    # ------------------------------------------------------------------ #
    def apply(
        self,
        lr: Optional[float] = None,
        grads: Optional[np.ndarray] = None,
    ) -> bool:
        """One optimizer step for every worker.

        ``grads=None`` uses each worker's own gradient row; a flat ``(D,)``
        vector applies the same (aggregated) gradient to every replica.
        Returns False when the fused step cannot run (diverged per-worker
        learning rates) and the caller must fall back to the loop.
        """
        optimizers = self._optimizers
        if lr is not None:
            for opt in optimizers:
                opt.set_lr(lr)
        lr_value = optimizers[0].lr
        if any(opt.lr != lr_value for opt in optimizers[1:]):
            return False

        params = self._matrix.params
        if grads is None:
            grad_rows: np.ndarray = self._matrix.grads
        else:
            grad_rows = np.asarray(grads, dtype=np.float64).reshape(1, -1)
        if self.weight_decay:
            grad_rows = grad_rows + self.weight_decay * params
        if self.momentum:
            buf = self.velocity
            buf *= self.momentum
            buf += grad_rows
            if self.nesterov:
                step_dir: Union[np.ndarray, float] = grad_rows + self.momentum * buf
            else:
                step_dir = buf
        else:
            step_dir = grad_rows
        params -= lr_value * step_dir

        for opt in optimizers:
            opt._step_count += 1
        for worker in self._workers:
            worker.steps_taken += 1
        return True
