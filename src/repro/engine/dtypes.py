"""Compute-dtype registry for the flat-buffer engine.

The engine (and everything built on top of it: the worker matrix, the fused
optimizers, the parameter server) is parameterized by one *compute dtype*.
``float64`` is the default — it is what the seed simulator used and what the
bit-identity regression tests pin — while ``float32`` is the opt-in mode that
matches the numerical regime of the clusters the paper actually measures
(half the memory traffic, roughly 2x the effective SIMD width).

This module is the **single owner** of the dtype → wire-bytes mapping.  The
communication cost models, the in-process backend, the parameter server and
the compression layer all charge bytes through :func:`wire_dtype_bytes`, so a
new transport mode (float16, quantized) only needs a new entry here for the
simulated clock to stay consistent with the buffers everywhere.

Transport convention: distributed frameworks ship tensors as float32 on the
wire regardless of the training dtype, so both supported compute dtypes map
to 4 wire bytes per element; narrower future compute dtypes would ship at
their native width (the wire is never wider than the compute dtype).

Separately from the *compute* dtype, a **transport dtype** can override what
the wire actually carries: ``float16`` models mixed-precision communication
(GradientFlow-style half-precision payloads, the same 2-byte elements the
FP16 compressor ships), ``float32`` is the canonical default, and
``float64`` prices an uncompressed double-precision wire.  The transport
dtype only affects byte accounting — the simulated clock and the backend's
communication records — never the arithmetic, so wire-time experiments can
price half-precision payloads without changing the compute dtype.
"""

from __future__ import annotations

from typing import Union

import numpy as np

DTypeLike = Union[str, type, np.dtype, None]

#: The engine's default compute dtype (the seed's numerical regime).
DEFAULT_DTYPE = np.dtype(np.float64)

#: Transport element width of the canonical float32 wire format.
WIRE_DTYPE_BYTES = 4

#: Compute dtype -> bytes per element on the simulated wire.  Tensors are
#: shipped as float32 regardless of compute dtype (never wider than either).
_WIRE_BYTES = {
    np.dtype(np.float32): 4,
    np.dtype(np.float64): 4,
}

#: Compute dtypes the engine accepts.
SUPPORTED_DTYPES = tuple(sorted(_WIRE_BYTES, key=lambda d: d.itemsize))

#: The canonical wire format (what frameworks ship absent an override).
DEFAULT_TRANSPORT_DTYPE = np.dtype(np.float32)

#: Transport dtype -> bytes per element actually carried on the wire.
#: ``float16`` is the half-precision payload the compression layer's FP16
#: format models; it is a *transport* mode only and stays rejected as a
#: compute dtype.
_TRANSPORT_BYTES = {
    np.dtype(np.float16): 2,
    np.dtype(np.float32): 4,
    np.dtype(np.float64): 8,
}

#: Transport dtypes the simulated wire accepts.
TRANSPORT_DTYPES = tuple(sorted(_TRANSPORT_BYTES, key=lambda d: d.itemsize))


def resolve_dtype(dtype: DTypeLike = None) -> np.dtype:
    """Normalize a dtype-like value (``None`` -> :data:`DEFAULT_DTYPE`).

    Accepts ``None``, strings (``"float32"``), NumPy scalar types and
    ``np.dtype`` instances; anything outside :data:`SUPPORTED_DTYPES` raises.
    """
    if dtype is None:
        return DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _WIRE_BYTES:
        supported = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise TypeError(
            f"unsupported engine compute dtype {resolved.name!r}; "
            f"supported: {supported}"
        )
    return resolved


def wire_dtype_bytes(dtype: DTypeLike = None) -> int:
    """Bytes one element of ``dtype`` occupies on the simulated wire."""
    return _WIRE_BYTES[resolve_dtype(dtype)]


def resolve_transport_dtype(dtype: DTypeLike = None) -> np.dtype:
    """Normalize a transport dtype (``None`` -> :data:`DEFAULT_TRANSPORT_DTYPE`).

    Unlike :func:`resolve_dtype` this accepts ``float16`` — the wire may be
    narrower than any compute dtype the engine runs.
    """
    if dtype is None:
        return DEFAULT_TRANSPORT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _TRANSPORT_BYTES:
        supported = ", ".join(d.name for d in TRANSPORT_DTYPES)
        raise TypeError(
            f"unsupported transport dtype {resolved.name!r}; supported: {supported}"
        )
    return resolved


def transport_dtype_bytes(dtype: DTypeLike = None) -> int:
    """Bytes one element of the given *transport* dtype carries on the wire."""
    return _TRANSPORT_BYTES[resolve_transport_dtype(dtype)]


def transport_scale(dtype: DTypeLike = None) -> float:
    """Wire-volume scale of a transport dtype relative to the float32 default.

    ``float16`` -> 0.5, ``float32`` -> 1.0, ``float64`` -> 2.0.  Cost models
    multiply their float32-denominated ``model_bytes`` by this factor so one
    transport switch re-prices every collective consistently.
    """
    return transport_dtype_bytes(dtype) / float(WIRE_DTYPE_BYTES)


def dtype_name(dtype: DTypeLike = None) -> str:
    """Canonical short name (``"float32"`` / ``"float64"``) for reports."""
    return resolve_dtype(dtype).name


def as_compute_array(value, dtype: DTypeLike = None) -> np.ndarray:
    """Coerce ``value`` to an array of the given compute dtype (no-copy when possible)."""
    return np.asarray(value, dtype=resolve_dtype(dtype))


def machine_epsilon(dtype: DTypeLike = None) -> float:
    """``np.finfo`` epsilon of the compute dtype (used by tolerance docs/tests)."""
    return float(np.finfo(resolve_dtype(dtype)).eps)


__all__ = [
    "DEFAULT_DTYPE",
    "DEFAULT_TRANSPORT_DTYPE",
    "SUPPORTED_DTYPES",
    "TRANSPORT_DTYPES",
    "WIRE_DTYPE_BYTES",
    "as_compute_array",
    "dtype_name",
    "machine_epsilon",
    "resolve_dtype",
    "resolve_transport_dtype",
    "transport_dtype_bytes",
    "transport_scale",
    "wire_dtype_bytes",
]
