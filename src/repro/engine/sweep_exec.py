"""Grid-stacked sweep execution: all S grid points as one (S·N, D) matrix.

A δ-sweep runs the *same* workload — same model architecture, same seeds,
same data order, same batch shapes — S times, varying only the
synchronization policy (δ threshold, aggregation mode, sync period).  The
sequential :func:`repro.harness.sweep.grid_sweep` therefore re-does S
identical forward/backward passes per global step.  Because every layer of
the :class:`~repro.engine.replica_exec.BatchedReplicaExecutor` treats the
replica (leading) axis purely batch-wise, rows are computationally
independent: stacking the S per-point ``(N, D)`` worker matrices into one
``(S·N, D)`` matrix and running *one* fused pass per step produces
bit-identical per-row results while amortizing all per-layer framework
overhead across the whole grid.

:class:`StackedSweepMatrix` owns that stacked storage.  Each grid point's
:class:`~repro.cluster.cluster.StackedSliceCluster` adopts an N-row slice of
it (the donated-storage path introduced for the shared-memory replica pool),
so aggregation, Δ(gᵢ) tracking, fused optimizer state and parameter-server
pushes all stay per-slice — each block evolves exactly as its sequential run
would.  Only the gradient computation is coordinated: the first slice to
request a global step triggers the fused pass for every row; the remaining
slices read their cached row ranges.

Memory safety: ``max_stacked_rows`` splits the S·N rows into independent
slabs, each driven by its own chunk executor.  Chunk boundaries need not
align to slice boundaries — rows are independent, so chunked execution is
bit-identical to unchunked.

Not supported (validated up front with actionable errors):

* model families outside the batched executor (use the sequential sweep);
* transformers with *active* dropout — shared-stream mask blocks are laid
  out per cluster, not per stacked row (the paper-scale transformer preset
  trains with ``dropout=0.0``);
* the multiprocessing replica pool (``pool_workers > 0``) — sharding the
  stacked matrix across pool processes is a planned follow-on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.engine.replica_exec import BatchedReplicaExecutor
from repro.engine.worker_matrix import WorkerMatrix

__all__ = ["StackedSweepMatrix"]


class StackedSweepMatrix:
    """S stacked replica blocks of N workers each, as one (S·N, D) matrix.

    Lifecycle (driven by :func:`repro.harness.sweep.run_sweep_stacked`):

    1. construct with the grid size S and cluster size N;
    2. each slice cluster calls :meth:`slice_storage` during its own
       construction — the first call allocates the stacked storage (the flat
       layout D is only known once a reference model exists);
    3. :meth:`build_executors` builds one chunk executor per
       ``max_stacked_rows`` slab;
    4. every global step, each slice's ``compute_gradients_all`` calls
       :meth:`gradients_for_slice`; the first caller of a step triggers the
       fused pass for all rows, later callers read their cached ranges.

    The lockstep contract: all S slices must request gradients exactly once
    per global step (the interleaved :meth:`~repro.algorithms.base.
    BaseTrainer.run_stepwise` driver guarantees this); a slice running ahead
    raises rather than silently reading stale rows.
    """

    def __init__(
        self,
        num_slices: int,
        num_workers: int,
        max_stacked_rows: Optional[int] = None,
        verify_batches: bool = False,
    ) -> None:
        if num_slices < 1:
            raise ValueError(f"num_slices must be >= 1, got {num_slices}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_stacked_rows is not None and max_stacked_rows < 1:
            raise ValueError(
                f"max_stacked_rows must be >= 1 or None, got {max_stacked_rows}"
            )
        self.num_slices = int(num_slices)
        self.num_workers = int(num_workers)
        self.total_rows = self.num_slices * self.num_workers
        self.max_stacked_rows = None if max_stacked_rows is None else int(max_stacked_rows)
        self.verify_batches = bool(verify_batches)
        self.spec = None
        self.params: Optional[np.ndarray] = None
        self.grads: Optional[np.ndarray] = None
        self._claimed = [False] * self.num_slices
        self._executors: List[Tuple[int, int, BatchedReplicaExecutor]] = []
        self._losses = np.zeros(self.total_rows)
        self._norms = np.zeros(self.total_rows)
        self._slice_steps = [0] * self.num_slices
        self._computed_step = 0
        self._step_block: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._step_block_mask: Optional[np.ndarray] = None
        self._slice_masks: List[Optional[np.ndarray]] = [None] * self.num_slices

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #
    def slice_storage(self, slice_index: int, spec) -> Tuple[np.ndarray, np.ndarray]:
        """Donated (N, D) param/grad row views for one grid slice.

        The first call allocates the full (S·N, D) storage from ``spec``;
        later calls must present the same layout (every grid point shares
        one model architecture by construction).  Each slice may claim its
        rows only once.
        """
        if not 0 <= slice_index < self.num_slices:
            raise ValueError(
                f"slice_index {slice_index} out of range [0, {self.num_slices})"
            )
        if self.spec is None:
            self.spec = spec
            self.params = np.zeros((self.total_rows, spec.total_size), dtype=spec.dtype)
            self.grads = np.zeros_like(self.params)
        elif (
            spec.total_size != self.spec.total_size
            or np.dtype(spec.dtype) != np.dtype(self.spec.dtype)
        ):
            raise ValueError(
                "all stacked slices must share one flat layout; got "
                f"D={spec.total_size} dtype={np.dtype(spec.dtype)} vs "
                f"D={self.spec.total_size} dtype={np.dtype(self.spec.dtype)}"
            )
        if self._claimed[slice_index]:
            raise ValueError(f"slice {slice_index} already claimed its rows")
        self._claimed[slice_index] = True
        lo = slice_index * self.num_workers
        hi = lo + self.num_workers
        return self.params[lo:hi], self.grads[lo:hi]

    # ------------------------------------------------------------------ #
    # executors
    # ------------------------------------------------------------------ #
    def build_executors(self, module) -> None:
        """Build one chunk executor per ``max_stacked_rows`` slab of rows.

        ``module`` is any slice's already-adopted replica — the executor
        reads only its architecture; the parameter views come from this
        matrix's chunk sub-matrices.  Raises if the model family is not
        batchable (the caller should use the sequential sweep) or trains
        with active dropout (shared-stream masks are per-cluster blocks
        that do not tile across stacked slices).
        """
        from repro.engine.dropout_stream import module_has_active_dropout

        if self.spec is None or not all(self._claimed):
            missing = [i for i, claimed in enumerate(self._claimed) if not claimed]
            raise RuntimeError(
                f"cannot build executors before every slice claimed its rows "
                f"(missing slices: {missing})"
            )
        if module_has_active_dropout(module):
            raise ValueError(
                "stacked sweep execution does not support models with active "
                "dropout (shared dropout mask blocks are laid out per cluster, "
                "not per stacked row); train with dropout=0.0 or run the "
                "sequential sweep"
            )
        self._executors = []
        chunk = self.max_stacked_rows or self.total_rows
        for lo in range(0, self.total_rows, chunk):
            hi = min(lo + chunk, self.total_rows)
            sub = WorkerMatrix(
                hi - lo, self.spec, params=self.params[lo:hi], grads=self.grads[lo:hi]
            )
            executor = BatchedReplicaExecutor.build(sub, module)
            if executor is None:
                raise ValueError(
                    f"model family {type(module).__name__!r} is not supported by "
                    "the batched replica executor; stacked sweeps require a "
                    "batchable model (MLP / ConvNet / TransformerLM) — run the "
                    "sequential sweep instead"
                )
            self._executors.append((lo, hi, executor))

    # ------------------------------------------------------------------ #
    # elastic per-slice masks (repro.faults)
    # ------------------------------------------------------------------ #
    def set_slice_mask(self, slice_index: int, mask) -> None:
        """Mark rows of one slice as crashed (``False`` = inactive).

        ``None`` (or an all-``True`` mask) clears the slice's mask.  Masked
        rows still ride along in the fused pass — batched matmul shapes stay
        fixed — but their gradient rows are zeroed and their losses / norms
        reported as 0 when the slice reads its step, so nothing from a
        crashed row reaches the slice's aggregation.  Set the mask before
        the slice requests the step it should apply to.
        """
        if not 0 <= slice_index < self.num_slices:
            raise ValueError(
                f"slice_index {slice_index} out of range [0, {self.num_slices})"
            )
        if mask is None:
            self._slice_masks[slice_index] = None
            return
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_workers,):
            raise ValueError(
                f"mask must have shape ({self.num_workers},), got {mask.shape}"
            )
        if mask.all():
            self._slice_masks[slice_index] = None
            return
        if not mask.any():
            raise ValueError(
                f"slice {slice_index} mask would deactivate every worker"
            )
        self._slice_masks[slice_index] = mask.copy()

    def _apply_slice_mask(self, slice_index: int) -> None:
        """Zero a masked slice's crashed rows after the fused pass."""
        mask = self._slice_masks[slice_index]
        if mask is None:
            return
        rows = slice_index * self.num_workers + np.flatnonzero(~mask)
        self.grads[rows] = 0.0
        self._losses[rows] = 0.0
        self._norms[rows] = 0.0

    def _fill_masked_batches(self, slice_index: int, batches) -> List:
        """Substitute a placeholder batch at this slice's crashed slots."""
        mask = self._slice_masks[slice_index]
        if mask is None:
            return list(batches)
        placeholder = batches[int(np.flatnonzero(mask)[0])]
        if placeholder is None:
            raise ValueError(
                f"slice {slice_index} presented no batch for its first active "
                "worker; crashed slots may be None but active slots must not be"
            )
        return [b if b is not None else placeholder for b in batches]

    # ------------------------------------------------------------------ #
    # the fused step
    # ------------------------------------------------------------------ #
    def gradients_for_slice(
        self, slice_index: int, batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-worker (losses, grad-norms) for one slice at its next step.

        The first slice requesting a new global step triggers the fused
        computation for *all* rows, tiling its batch block across the S
        slices — valid because every slice's loaders are seeded identically,
        so all slices consume the same batch sequence (``verify_batches``
        asserts this, at the cost of an extra comparison per call).
        """
        if not self._executors:
            raise RuntimeError("build_executors must run before the first step")
        if len(batches) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} worker batches, got {len(batches)}"
            )
        batches = self._fill_masked_batches(slice_index, batches)
        self._slice_steps[slice_index] += 1
        step = self._slice_steps[slice_index]
        if step == self._computed_step + 1:
            with telemetry.span("stacked.fused_step") as fused:
                fused.set("slices", self.num_slices)
                self._compute(batches, trigger_mask=self._slice_masks[slice_index])
            self._computed_step = step
            if telemetry.metrics_enabled():
                telemetry.count("repro_stacked_slice_reads_total", kind="fused")
        elif step != self._computed_step:
            raise RuntimeError(
                f"stacked slices fell out of lockstep: slice {slice_index} "
                f"requested step {step} but step {self._computed_step} is current"
            )
        else:
            if telemetry.metrics_enabled():
                telemetry.count("repro_stacked_slice_reads_total", kind="cached")
            if self.verify_batches:
                self._check_batches(slice_index, batches)
        self._apply_slice_mask(slice_index)
        lo = slice_index * self.num_workers
        hi = lo + self.num_workers
        return self._losses[lo:hi], self._norms[lo:hi]

    def _stack_block(
        self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One (N, batch, ...) input/target block, cast like the executor."""
        executor = self._executors[0][2]
        if executor.token_input:
            x = np.stack([np.asarray(b[0]) for b in batches])
        else:
            x = np.stack(
                [np.asarray(b[0], dtype=np.dtype(self.spec.dtype)) for b in batches]
            )
        targets = np.stack([np.asarray(b[1]) for b in batches])
        return x, targets

    def _compute(
        self,
        batches: Sequence[Tuple[np.ndarray, np.ndarray]],
        trigger_mask: Optional[np.ndarray] = None,
    ) -> None:
        x, targets = self._stack_block(batches)
        # Tile the N-worker block S times along the replica axis: row r of
        # the stacked pass sees batches[r % N], i.e. every slice sees the
        # identical batch sequence its sequential run would.
        reps = (self.num_slices,) + (1,) * (x.ndim - 1)
        x_full = np.tile(x, reps)
        t_full = np.tile(targets, (self.num_slices,) + (1,) * (targets.ndim - 1))
        for lo, hi, executor in self._executors:
            losses = executor.step_stacked(x_full[lo:hi], t_full[lo:hi])
            if losses is None:
                raise RuntimeError(
                    "fused stacked step rejected the batch block "
                    f"(shape {x_full.shape}, dtype {x_full.dtype}); the lockstep "
                    "contract guarantees uniform shapes, so this indicates a bug"
                )
            self._losses[lo:hi] = losses
        # One fused norm reduction over all S·N gradient rows — identical
        # per row to each slice executor's own grad_norms().
        g = self.grads
        self._norms[:] = np.sqrt(np.einsum("ij,ij->i", g, g))
        self._step_block = (x, targets) if self.verify_batches else None
        self._step_block_mask = trigger_mask if self.verify_batches else None

    def _check_batches(
        self, slice_index: int, batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        x, targets = self._stack_block(batches)
        ref_x, ref_t = self._step_block
        # Crashed slots hold placeholder batches, which legitimately differ
        # across slices with different fault masks — compare only the slots
        # both the triggering slice and this slice had active.
        both = np.ones(self.num_workers, dtype=bool)
        if self._step_block_mask is not None:
            both &= self._step_block_mask
        mask = self._slice_masks[slice_index]
        if mask is not None:
            both &= mask
        if not (
            np.array_equal(x[both], ref_x[both])
            and np.array_equal(targets[both], ref_t[both])
        ):
            raise RuntimeError(
                f"slice {slice_index} presented different batches than the "
                f"slice that computed step {self._computed_step}; stacked "
                "sweeps require identically seeded loaders across grid points"
            )
