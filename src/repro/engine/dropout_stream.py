"""Shared per-step dropout RNG stream for batched / multi-process execution.

Per-layer ``Dropout`` modules normally draw masks from private per-worker
generators, which makes their trajectories impossible to reproduce from the
batched :class:`~repro.engine.replica_exec.BatchedReplicaExecutor` (one
``(N, ...)`` mask block per layer) or from a replica-pool child process (its
own address space).  :class:`SharedDropoutStream` removes the private state:
every replica-row mask is a pure function of ``(stream seed, step tick,
layer id, worker row)``, so

* the batched executor stacks the rows it covers (all of them, or a pool
  child's group slice) while per-worker layers draw exactly their own row —
  bit-identical paths, and a per-worker consumer (SSP's round-robin
  stepping) never pays for the whole cluster's masks;
* a pool child reconstructs the stream from the seed alone and derives the
  exact masks the parent (or any other child) would, with zero IPC.

The cluster advances the stream once per gradient computation
(``SimulatedCluster._next_dropout_tick``); draws are cached per step.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np


class SharedDropoutStream:
    """Deterministic per-(step, layer) dropout mask blocks for all replicas."""

    def __init__(self, seed: int, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        # SeedSequence entropy must be non-negative.
        self.seed = int(seed) % (2**63)
        self.num_workers = int(num_workers)
        self._step: int = -1
        self._blocks: Dict[tuple, np.ndarray] = {}

    def set_step(self, step: int) -> None:
        """Enter step ``step``; a new step invalidates every cached block."""
        step = int(step)
        if step != self._step:
            self._step = step
            self._blocks.clear()

    @property
    def step(self) -> int:
        """The current step tick (``-1`` until :meth:`set_step` is called)."""
        return self._step

    def worker_mask(
        self, layer_id: int, local_shape: Tuple[int, ...], p: float, worker_slot: int
    ) -> np.ndarray:
        """Inverted-dropout mask of ``local_shape`` for one replica.

        Masks are derived **per row** — a pure function of ``(seed, step,
        layer_id, worker_slot)`` — so a per-worker consumer (e.g. SSP's
        round-robin stepping) draws exactly one replica's mask, never the
        whole cluster block, while :meth:`mask_block` stacks the identical
        rows for the batched executor.  Draws are cached until the next
        :meth:`set_step`.
        """
        if self._step < 0:
            raise RuntimeError(
                "SharedDropoutStream.set_step() must be called before drawing masks"
            )
        key = (int(layer_id), tuple(int(d) for d in local_shape), float(p), int(worker_slot))
        mask = self._blocks.get(key)
        if mask is None:
            keep = 1.0 - key[2]
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, self._step, key[0], key[3]])
            )
            mask = (rng.random(key[1]) < keep) / keep
            self._blocks[key] = mask
        return mask

    def mask_block(
        self,
        layer_id: int,
        local_shape: Tuple[int, ...],
        p: float,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> np.ndarray:
        """Stacked per-row masks for replica rows ``[lo, hi)``.

        Row ``i`` of the result equals ``worker_mask(..., worker_slot=lo+i)``
        exactly, which is what keeps the batched executor (full block or a
        pool child's group slice) bit-identical to the per-worker path.
        Defaults to all ``num_workers`` rows; cached until the next
        :meth:`set_step`.
        """
        hi = self.num_workers if hi is None else int(hi)
        lo = int(lo)
        key = ("block", int(layer_id), tuple(int(d) for d in local_shape), float(p), lo, hi)
        block = self._blocks.get(key)
        if block is None:
            block = np.stack(
                [self.worker_mask(layer_id, local_shape, p, row) for row in range(lo, hi)]
            )
            self._blocks[key] = block
        return block


def attach_shared_dropout(module, stream: SharedDropoutStream, worker_slot: int) -> int:
    """Route every ``Dropout`` in ``module`` through ``stream``.

    Layers are numbered in ``named_modules()`` traversal order, which is
    identical for every replica of one architecture — the numbering is the
    cross-process contract that lets a pool child rebuild the same stream
    wiring from nothing but the seed.  Returns the number of attached layers.
    """
    from repro.nn.layers import Dropout

    if not 0 <= worker_slot < stream.num_workers:
        raise ValueError(
            f"worker_slot {worker_slot} out of range for {stream.num_workers} workers"
        )
    layer_id = 0
    for _, sub in module.named_modules():
        if isinstance(sub, Dropout):
            sub.use_shared_stream(stream, layer_id=layer_id, worker_slot=worker_slot)
            layer_id += 1
    return layer_id


def module_has_active_dropout(module) -> bool:
    """True if any ``Dropout`` submodule has ``p > 0``."""
    from repro.nn.layers import Dropout

    return any(isinstance(sub, Dropout) and sub.p > 0.0 for _, sub in module.named_modules())
