"""Contiguous flat-buffer storage with zero-copy named views.

The execution engine stores every quantity that used to live in a dict of
named arrays (parameters, gradients, optimizer moments, the parameter-server
state) as **one preallocated contiguous vector** of the engine's compute
dtype (:mod:`repro.engine.dtypes`; ``float64`` by default, ``float32`` in
the reduced-precision mode).  Named access is preserved through
:class:`FlatBuffer` views: each named tensor is a ``reshape`` of a slice of
the underlying vector, so mutating a view mutates the vector and vice versa
— no copies on the hot path.

:class:`ParamSpec` is the layout descriptor (name, shape, offset, size per
entry) plus the storage dtype.  It is deliberately independent of
:mod:`repro.nn` so the engine can describe any ordered tree of arrays;
``from_module`` only relies on the ``named_parameters()`` duck type.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.dtypes import DTypeLike, resolve_dtype


class ParamSpec:
    """Immutable layout of named tensors inside one flat vector."""

    __slots__ = ("entries", "total_size", "dtype", "_index")

    def __init__(
        self,
        shapes: Sequence[Tuple[str, Tuple[int, ...]]],
        dtype: DTypeLike = None,
    ) -> None:
        entries: List[Tuple[str, Tuple[int, ...], int, int]] = []
        offset = 0
        seen = set()
        for name, shape in shapes:
            if name in seen:
                raise ValueError(f"duplicate name {name!r} in spec")
            seen.add(name)
            shape = tuple(int(d) for d in shape)
            size = int(np.prod(shape)) if shape else 1
            entries.append((name, shape, offset, size))
            offset += size
        self.entries = tuple(entries)
        self.total_size = offset
        self.dtype = resolve_dtype(dtype)
        self._index = {name: i for i, (name, _, _, _) in enumerate(entries)}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_module(cls, module, dtype: DTypeLike = None) -> "ParamSpec":
        """Layout matching ``module.named_parameters()`` order."""
        return cls(
            [(name, p.data.shape) for name, p in module.named_parameters().items()],
            dtype=dtype,
        )

    @classmethod
    def from_tree(cls, tree: Mapping[str, np.ndarray], dtype: DTypeLike = None) -> "ParamSpec":
        return cls(
            [(name, np.asarray(arr).shape) for name, arr in tree.items()], dtype=dtype
        )

    def with_dtype(self, dtype: DTypeLike) -> "ParamSpec":
        """Same layout on a different storage dtype (used by dtype conversion)."""
        resolved = resolve_dtype(dtype)
        if resolved == self.dtype:
            return self
        return ParamSpec([(name, shape) for name, shape, _, _ in self.entries], dtype=resolved)

    def to_flatten_spec(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """The ``[(name, shape), ...]`` format used by :mod:`repro.utils.flatten`."""
        return [(name, shape) for name, shape, _, _ in self.entries]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def names(self) -> List[str]:
        """Tensor names in layout order."""
        return [name for name, _, _, _ in self.entries]

    def shape_of(self, name: str) -> Tuple[int, ...]:
        """Original tensor shape of ``name``."""
        return self.entries[self._index[name]][1]

    def slice_of(self, name: str) -> slice:
        """Column slice ``[offset, offset + size)`` of ``name`` in a flat vector."""
        _, _, offset, size = self.entries[self._index[name]]
        return slice(offset, offset + size)

    def __iter__(self) -> Iterator[Tuple[str, Tuple[int, ...], int, int]]:
        return iter(self.entries)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ParamSpec)
            and self.entries == other.entries
            and self.dtype == other.dtype
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParamSpec({len(self.entries)} tensors, D={self.total_size}, "
            f"dtype={self.dtype.name})"
        )

    # ------------------------------------------------------------------ #
    # vector <-> tree conversion
    # ------------------------------------------------------------------ #
    def allocate(self) -> np.ndarray:
        """Fresh zero vector of ``total_size`` in the spec's dtype."""
        return np.zeros(self.total_size, dtype=self.dtype)

    def views(self, vector: np.ndarray) -> "OrderedDict[str, np.ndarray]":
        """Zero-copy named views into ``vector`` (must match this layout)."""
        vector = self._check_vector(vector)
        out: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, shape, offset, size in self.entries:
            out[name] = vector[offset : offset + size].reshape(shape)
        return out

    def flatten_tree(
        self, tree: Mapping[str, np.ndarray], out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Write a named-array mapping into a flat vector (validates layout)."""
        if out is None:
            out = self.allocate()
        else:
            out = self._check_vector(out)
        for name, shape, offset, size in self.entries:
            if name not in tree:
                raise KeyError(f"tree is missing tensor {name!r}")
            arr = np.asarray(tree[name], dtype=self.dtype)
            if arr.shape != shape:
                raise ValueError(
                    f"tensor {name!r} has shape {arr.shape}, layout expects {shape}"
                )
            out[offset : offset + size] = arr.reshape(-1)
        return out

    def unflatten(self, vector: np.ndarray, copy: bool = True) -> Dict[str, np.ndarray]:
        """Rebuild the named mapping; ``copy=False`` returns live views."""
        if copy:
            vector = np.array(vector, dtype=self.dtype).ravel()
            if vector.size != self.total_size:
                raise ValueError(
                    f"vector length {vector.size} does not match layout D={self.total_size}"
                )
        return dict(self.views(vector))

    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        if not isinstance(vector, np.ndarray):
            raise TypeError("flat storage must be a numpy array")
        if vector.ndim != 1 or vector.size != self.total_size:
            raise ValueError(
                f"flat vector must be 1-D of length {self.total_size}, "
                f"got shape {vector.shape}"
            )
        if vector.dtype != self.dtype:
            raise TypeError(
                f"flat vector must be {self.dtype.name}, got {vector.dtype}"
            )
        if not vector.flags["C_CONTIGUOUS"]:
            raise ValueError("flat vector must be contiguous to support zero-copy views")
        return vector


class FlatBuffer:
    """One contiguous vector plus its zero-copy named views.

    The vector dtype is the spec's compute dtype.  The vector may be freshly
    allocated or *donated* (e.g. a row of the cluster-level
    :class:`~repro.engine.worker_matrix.WorkerMatrix`), which is how
    per-worker buffers become rows of the ``(N, D)`` matrix without any
    copies at step time.
    """

    __slots__ = ("spec", "vector", "views")

    def __init__(self, spec: ParamSpec, vector: Optional[np.ndarray] = None) -> None:
        self.spec = spec
        if vector is None:
            vector = spec.allocate()
        self.vector = spec._check_vector(vector)
        self.views: "OrderedDict[str, np.ndarray]" = spec.views(self.vector)

    @classmethod
    def from_tree(cls, tree: Mapping[str, np.ndarray], dtype: DTypeLike = None) -> "FlatBuffer":
        spec = ParamSpec.from_tree(tree, dtype=dtype)
        buf = cls(spec)
        spec.flatten_tree(tree, out=buf.vector)
        return buf

    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str) -> np.ndarray:
        return self.views[name]

    def __contains__(self, name: str) -> bool:
        return name in self.views

    @property
    def size(self) -> int:
        """Total number of scalars in the buffer (= ``spec.total_size``)."""
        return self.spec.total_size

    @property
    def dtype(self) -> np.dtype:
        """The buffer's compute dtype (owned by the spec)."""
        return self.spec.dtype

    def as_dict(self, copy: bool = False) -> Dict[str, np.ndarray]:
        """Named tensors; ``copy=True`` snapshots via one contiguous memcpy."""
        if not copy:
            return dict(self.views)
        return self.spec.unflatten(self.vector.copy(), copy=False)

    def load_vector(self, vector: np.ndarray) -> None:
        """Overwrite the whole buffer from another flat vector (one memcpy).

        Cross-dtype loads cast into the buffer's compute dtype.
        """
        vector = np.asarray(vector, dtype=self.spec.dtype).ravel()
        if vector.size != self.spec.total_size:
            raise ValueError(
                f"vector length {vector.size} does not match buffer D={self.spec.total_size}"
            )
        self.vector[:] = vector

    def load_tree(self, tree: Mapping[str, np.ndarray]) -> None:
        """Copy a named tensor dict into the flat vector, layout order."""
        self.spec.flatten_tree(tree, out=self.vector)

    def fill(self, value: float = 0.0) -> None:
        """Set every entry (and therefore every view) to ``value``."""
        self.vector.fill(value)

    def copy_vector(self) -> np.ndarray:
        """Detached copy of the flat vector (a cold-path snapshot)."""
        return self.vector.copy()

    def rebind(self, vector: np.ndarray, preserve: bool = True) -> None:
        """Move this buffer onto new storage (e.g. a worker-matrix row).

        With ``preserve=True`` the current contents are copied into the new
        storage first.  Existing external views of the *old* storage become
        stale; callers owning such views must re-request them.
        """
        vector = self.spec._check_vector(vector)
        if preserve and vector is not self.vector:
            vector[:] = self.vector
        self.vector = vector
        self.views = self.spec.views(vector)
