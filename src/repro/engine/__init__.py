"""Flat-buffer execution engine.

Contiguous parameter/gradient storage (:class:`FlatBuffer`), layout
descriptors (:class:`ParamSpec`), the cluster-level ``(N, D)``
:class:`WorkerMatrix` that turns aggregation, tracking, broadcast and
consistency checks into single vectorized NumPy operations, fused
whole-cluster optimizer updates (:class:`FusedSGDUpdate`,
:class:`FusedAdamUpdate`) and the compute-dtype registry
(:mod:`repro.engine.dtypes`).
"""

from repro.engine.dtypes import (
    DEFAULT_DTYPE,
    DEFAULT_TRANSPORT_DTYPE,
    SUPPORTED_DTYPES,
    TRANSPORT_DTYPES,
    WIRE_DTYPE_BYTES,
    dtype_name,
    resolve_dtype,
    resolve_transport_dtype,
    transport_dtype_bytes,
    transport_scale,
    wire_dtype_bytes,
)
from repro.engine.dropout_stream import (
    SharedDropoutStream,
    attach_shared_dropout,
    module_has_active_dropout,
)
from repro.engine.flat_buffer import FlatBuffer, ParamSpec
from repro.engine.fused_optim import FusedAdamUpdate, FusedSGDUpdate, build_fused_update
from repro.engine.replica_exec import BatchedReplicaExecutor
from repro.engine.sweep_exec import StackedSweepMatrix
from repro.engine.worker_matrix import WorkerMatrix

__all__ = [
    "BatchedReplicaExecutor",
    "DEFAULT_DTYPE",
    "DEFAULT_TRANSPORT_DTYPE",
    "FlatBuffer",
    "FusedAdamUpdate",
    "FusedSGDUpdate",
    "ParamSpec",
    "SUPPORTED_DTYPES",
    "SharedDropoutStream",
    "StackedSweepMatrix",
    "TRANSPORT_DTYPES",
    "WIRE_DTYPE_BYTES",
    "WorkerMatrix",
    "attach_shared_dropout",
    "build_fused_update",
    "module_has_active_dropout",
    "dtype_name",
    "resolve_dtype",
    "resolve_transport_dtype",
    "transport_dtype_bytes",
    "transport_scale",
    "wire_dtype_bytes",
]
