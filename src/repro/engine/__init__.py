"""Flat-buffer execution engine.

Contiguous parameter/gradient storage (:class:`FlatBuffer`), layout
descriptors (:class:`ParamSpec`) and the cluster-level ``(N, D)``
:class:`WorkerMatrix` that turns aggregation, tracking, broadcast and
consistency checks into single vectorized NumPy operations.
"""

from repro.engine.flat_buffer import FlatBuffer, ParamSpec
from repro.engine.fused_optim import FusedSGDUpdate
from repro.engine.replica_exec import BatchedReplicaExecutor
from repro.engine.worker_matrix import WorkerMatrix

__all__ = [
    "BatchedReplicaExecutor",
    "FlatBuffer",
    "FusedSGDUpdate",
    "ParamSpec",
    "WorkerMatrix",
]
