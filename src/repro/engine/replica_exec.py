"""Vectorized multi-replica execution over the worker matrix.

Because every replica's parameters are rows of one ``(N, D)`` matrix with an
identical layout, the per-layer weights of *all* workers are zero-copy
``(N, ...)`` views into that matrix.  :class:`BatchedReplicaExecutor`
exploits this to run the forward pass, loss and backward pass of the entire
cluster as batched NumPy calls — one fused call per layer instead of one
Python call per layer *per worker* — writing gradients straight into the
gradient matrix rows.

Three model families are supported:

* the **MLP family** (chains of Linear / ReLU / Tanh on a classification
  head), which covers the simulator's hot benchmarks,
* the **conv family** (:class:`~repro.nn.models.convnet.ConvNet`: Conv2d /
  ReLU / MaxPool2d / GlobalAvgPool2d features plus a Linear head), the
  non-MLP workload used to measure dtype-mode speedups on spatially
  structured inputs, and
* the **transformer family**
  (:class:`~repro.nn.models.transformer.TransformerLM`: embedding +
  positional encoding, pre-norm encoder blocks with multi-head causal
  self-attention and a ReLU feed-forward, final norm and LM head).  Token
  batches flow as ``(N, batch, seq)`` integer blocks; every contraction —
  projections, attention scores, softmax backward — runs once for all
  replicas via ``(N, ...)`` einsum/GEMM calls over the weight views.

All arithmetic runs in the worker matrix's compute dtype (float64 default,
float32 in the reduced-precision mode).  Clusters with unsupported models
fall back to the per-worker loop transparently.  Transformers with active
dropout batch when their layers draw from a
:class:`~repro.engine.dropout_stream.SharedDropoutStream` (one deterministic
``(N, ...)`` mask block per step and layer); dropout on private per-layer
RNG streams still falls back.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.engine.worker_matrix import WorkerMatrix


class _BatchedLinear:
    """All workers' copies of one Linear layer as (N, out, in) views.

    Accepts ``(N, batch, in)`` blocks (the MLP / conv-head case) and
    ``(N, batch, seq, in)`` sequence blocks (the transformer case).  The
    4-D path folds the sequence axis into the batch axis — one
    ``(batch*seq, in) @ (in, out)`` GEMM per replica, exactly the collapsed
    GEMM the per-worker ``Linear`` issues — keeping the two paths
    bit-identical in float64.
    """

    def __init__(
        self,
        weight: np.ndarray,
        weight_grad: np.ndarray,
        bias: Optional[np.ndarray],
        bias_grad: Optional[np.ndarray],
    ) -> None:
        self.weight = weight          # (N, out, in) view into params matrix
        self.weight_grad = weight_grad
        self.bias = bias              # (N, out) view or None
        self.bias_grad = bias_grad
        self._x: Optional[np.ndarray] = None
        self._seq_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 4:
            self._seq_shape = x.shape[:3]
            x = np.ascontiguousarray(x).reshape(x.shape[0], -1, x.shape[-1])
        else:
            self._seq_shape = None
        self._x = x
        out = np.matmul(x, self.weight.transpose(0, 2, 1))
        if self.bias is not None:
            out += self.bias[:, None, :]
        if self._seq_shape is not None:
            return out.reshape(self._seq_shape + (out.shape[-1],))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if grad_out.ndim == 4:
            grad_out = np.ascontiguousarray(grad_out).reshape(
                grad_out.shape[0], -1, grad_out.shape[-1]
            )
        # Accumulate-from-zero semantics: one batched write per tensor.
        np.matmul(grad_out.transpose(0, 2, 1), self._x, out=self.weight_grad)
        if self.bias_grad is not None:
            self.bias_grad[...] = grad_out.sum(axis=1)
        grad_in = np.matmul(grad_out, self.weight)
        if self._seq_shape is not None:
            return grad_in.reshape(self._seq_shape + (grad_in.shape[-1],))
        return grad_in


class _BatchedReLU:
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, x.dtype.type(0))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, grad_out.dtype.type(0))


class _BatchedTanh:
    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._out**2)


class _BatchedConv2d:
    """All workers' copies of one Conv2d layer batched over the replica axis.

    Inputs flow as ``(N, B, C, H, W)`` blocks.  The im2col patches of all
    replicas are extracted in one pass over the collapsed ``(N*B, ...)``
    volume (the patch geometry is weight independent), then the per-replica
    convolutions reduce to one batched matmul against the ``(N, out_c, ckk)``
    weight views — exactly the _BatchedLinear trick lifted to patches.
    """

    def __init__(
        self,
        w_flat: np.ndarray,
        w_flat_grad: np.ndarray,
        bias: Optional[np.ndarray],
        bias_grad: Optional[np.ndarray],
        kernel_size: int,
        stride: int,
        padding: int,
    ) -> None:
        self.w_flat = w_flat            # (N, out_c, C*k*k) view into params matrix
        self.w_flat_grad = w_flat_grad
        self.bias = bias                # (N, out_c) view or None
        self.bias_grad = bias_grad
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        from repro.nn.layers import _im2col

        n, b = x.shape[:2]
        k = self.kernel_size
        flat = np.ascontiguousarray(x).reshape((n * b,) + x.shape[2:])
        cols, out_h, out_w = _im2col(flat, k, k, self.stride, self.padding)
        self._cols = cols.reshape(n, b * out_h * out_w, -1)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        out = np.matmul(self._cols, self.w_flat.transpose(0, 2, 1))
        if self.bias is not None:
            out += self.bias[:, None, :]
        out_c = self.w_flat.shape[1]
        return out.reshape(n, b, out_h, out_w, out_c).transpose(0, 1, 4, 2, 3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        from repro.nn.layers import _col2im

        n, b, c, h, w = self._x_shape
        out_h, out_w = self._out_hw
        out_c = self.w_flat.shape[1]
        g = np.ascontiguousarray(grad_out.transpose(0, 1, 3, 4, 2)).reshape(
            n, b * out_h * out_w, out_c
        )
        # Accumulate-from-zero semantics: one batched write per tensor.
        np.matmul(g.transpose(0, 2, 1), self._cols, out=self.w_flat_grad)
        if self.bias_grad is not None:
            self.bias_grad[...] = g.sum(axis=1)
        dcols = np.matmul(g, self.w_flat)
        k = self.kernel_size
        dx = _col2im(
            dcols.reshape(n * b, out_h, out_w, -1),
            (n * b, c, h, w),
            k,
            k,
            self.stride,
            self.padding,
        )
        return dx.reshape(n, b, c, h, w)


class _BatchedMaxPool2d:
    """Max pooling over (N, B, C, H, W): worker-independent, one fused pass."""

    def __init__(self, kernel_size: int, stride: int) -> None:
        self.kernel_size = kernel_size
        self.stride = stride
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._idx: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, b, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        flat = np.ascontiguousarray(x).reshape(n * b, c, h, w)
        shape = (n * b, c, out_h, out_w, k, k)
        strides = (
            flat.strides[0],
            flat.strides[1],
            flat.strides[2] * s,
            flat.strides[3] * s,
            flat.strides[2],
            flat.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(flat, shape=shape, strides=strides)
        windows = windows.reshape(n * b, c, out_h, out_w, k * k)
        idx = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, idx[..., None], axis=-1)[..., 0]
        self._x_shape = x.shape
        self._idx = idx
        return out.reshape(n, b, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, b, c, h, w = self._x_shape
        k, s = self.kernel_size, self.stride
        idx = self._idx
        out_h, out_w = idx.shape[2], idx.shape[3]
        grad_flat = np.ascontiguousarray(grad_out).reshape(n * b, c, out_h, out_w)
        grad_input = np.zeros((n * b, c, h, w), dtype=grad_flat.dtype)
        rows = idx // k
        cols = idx % k
        bb, ch = np.meshgrid(np.arange(n * b), np.arange(c), indexing="ij")
        for i in range(out_h):
            for j in range(out_w):
                r = i * s + rows[:, :, i, j]
                cc = j * s + cols[:, :, i, j]
                grad_input[bb, ch, r, cc] += grad_flat[:, :, i, j]
        return grad_input.reshape(n, b, c, h, w)


class _BatchedGlobalAvgPool2d:
    """Spatial mean over (N, B, C, H, W) -> (N, B, C)."""

    def __init__(self) -> None:
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(3, 4))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, b, c, h, w = self._x_shape
        return np.broadcast_to(
            grad_out[:, :, :, None, None] / (h * w), self._x_shape
        ).copy()


class _BatchedDropout:
    """All replicas' masks of one Dropout layer, drawn from the shared stream.

    The stream derives one deterministic mask per (step, layer, replica row);
    this class stacks rows ``[row_offset, row_offset + N)``, so a full-matrix
    executor and a pool child's group executor (and the per-worker fallback,
    which draws single rows) all see the exact same masks.
    """

    def __init__(self, stream, layer_id: int, p: float, row_offset: int) -> None:
        self.stream = stream
        self.layer_id = int(layer_id)
        self.p = float(p)
        self.row_offset = int(row_offset)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = self.stream.mask_block(
            self.layer_id, x.shape[1:], self.p,
            lo=self.row_offset, hi=self.row_offset + x.shape[0],
        )
        if mask.dtype != x.dtype:
            mask = mask.astype(x.dtype)
        self._mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class _BatchedEmbedding:
    """All workers' token-embedding tables as (N, vocab, dim) views."""

    def __init__(self, weight: np.ndarray, weight_grad: np.ndarray) -> None:
        self.weight = weight            # (N, vocab, dim) view into params matrix
        self.weight_grad = weight_grad
        self._ids: Optional[np.ndarray] = None
        self._rows: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        n = self.weight.shape[0]
        if self._rows is None or self._rows.shape[0] != n:
            self._rows = np.arange(n)[:, None, None]
        self._ids = ids                  # (N, B, T) integer token ids
        return self.weight[self._rows, ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Scatter-add per replica; the embedding rows are the only gradient
        # entries not produced by an overwriting matmul, so zero them first
        # (accumulate-from-zero semantics, matching Module.zero_grad()).
        self.weight_grad[...] = 0.0
        np.add.at(self.weight_grad, (self._rows, self._ids), grad_out)
        # Token ids carry no gradient.
        return np.zeros(self._ids.shape, dtype=grad_out.dtype)


class _BatchedPositionalEncoding:
    """Worker-independent sinusoidal table added to all replicas at once."""

    def __init__(self, pe: np.ndarray) -> None:
        self.pe = pe                    # (max_len, d_model), float64 master copy
        self._pe_cast: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        seq_len = x.shape[2]
        if seq_len > self.pe.shape[0]:
            # Same explicit failure as the per-worker PositionalEncoding
            # (slicing past the table would otherwise mis-broadcast).
            raise ValueError(
                f"sequence length {seq_len} exceeds positional table {self.pe.shape[0]}"
            )
        pe = self.pe[:seq_len]
        if pe.dtype != x.dtype:
            if self._pe_cast is None or self._pe_cast.dtype != x.dtype:
                self._pe_cast = self.pe.astype(x.dtype)
            pe = self._pe_cast[:seq_len]
        return x + pe

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class _BatchedLayerNorm:
    """All workers' LayerNorm over (N, B, T, d) activations in one pass."""

    def __init__(
        self,
        gamma: np.ndarray,
        gamma_grad: np.ndarray,
        beta: np.ndarray,
        beta_grad: np.ndarray,
        eps: float,
    ) -> None:
        self.gamma = gamma              # (N, d) view into params matrix
        self.gamma_grad = gamma_grad
        self.beta = beta                # (N, d) view
        self.beta_grad = beta_grad
        self.eps = eps
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma[:, None, None, :] * x_hat + self.beta[:, None, None, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._cache
        d = x_hat.shape[-1]
        self.gamma_grad[...] = (grad_out * x_hat).sum(axis=(1, 2))
        self.beta_grad[...] = grad_out.sum(axis=(1, 2))
        dxhat = grad_out * self.gamma[:, None, None, :]
        return (
            inv_std
            / d
            * (
                d * dxhat
                - dxhat.sum(axis=-1, keepdims=True)
                - x_hat * (dxhat * x_hat).sum(axis=-1, keepdims=True)
            )
        )


class _BatchedSelfAttention:
    """Multi-head causal self-attention for every replica in one einsum chain.

    The score / context contractions use the same einsum index patterns as
    the per-worker :class:`~repro.nn.attention.MultiHeadSelfAttention` with a
    leading replica axis, so the float64 arithmetic (including the softmax
    backward across replicas) is bit-identical to the fallback loop.
    """

    def __init__(
        self,
        q_proj: _BatchedLinear,
        k_proj: _BatchedLinear,
        v_proj: _BatchedLinear,
        out_proj: _BatchedLinear,
        num_heads: int,
        d_head: int,
        causal: bool,
    ) -> None:
        self.q_proj = q_proj
        self.k_proj = k_proj
        self.v_proj = v_proj
        self.out_proj = out_proj
        self.num_heads = num_heads
        self.d_head = d_head
        self.causal = causal
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        n, b, t, _ = x.shape
        return x.reshape(n, b, t, self.num_heads, self.d_head).transpose(0, 1, 3, 2, 4)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        n, b, h, t, d = x.shape
        return np.ascontiguousarray(x.transpose(0, 1, 3, 2, 4)).reshape(n, b, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self._split_heads(self.q_proj.forward(x))
        k = self._split_heads(self.k_proj.forward(x))
        v = self._split_heads(self.v_proj.forward(x))
        scale = 1.0 / np.sqrt(self.d_head)
        # Stacked GEMMs over (N, B, H) slices: identical per-slice shapes to
        # the per-worker attention's matmuls, so float64 results are
        # bit-identical to the fallback loop.
        scores = np.matmul(q, k.swapaxes(-1, -2)) * scale
        if self.causal:
            t = x.shape[2]
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
            scores = np.where(mask, -1e30, scores)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        attn = e / e.sum(axis=-1, keepdims=True)
        context = np.matmul(attn, v)
        out = self.out_proj.forward(self._merge_heads(context))
        self._cache = (q, k, v, attn, scale)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        q, k, v, attn, scale = self._cache
        d_merged = self.out_proj.backward(grad_out)
        n, b, t, _ = d_merged.shape
        d_context = d_merged.reshape(n, b, t, self.num_heads, self.d_head).transpose(
            0, 1, 3, 2, 4
        )
        d_attn = np.matmul(d_context, v.swapaxes(-1, -2))
        d_v = np.matmul(attn.swapaxes(-1, -2), d_context)
        # Softmax backward over the last axis, for all replicas at once.
        d_scores = attn * (d_attn - (d_attn * attn).sum(axis=-1, keepdims=True))
        d_scores = d_scores * scale
        d_q = np.matmul(d_scores, k)
        d_k = np.matmul(d_scores.swapaxes(-1, -2), q)
        dx = self.q_proj.backward(self._merge_heads(d_q))
        dx = dx + self.k_proj.backward(self._merge_heads(d_k))
        dx = dx + self.v_proj.backward(self._merge_heads(d_v))
        return dx


class _BatchedEncoderLayer:
    """Pre-norm encoder block (attention + FFN, both residual), batched.

    Mirrors :class:`~repro.nn.attention.TransformerEncoderLayer` exactly.
    Dropout layers are omitted when inactive (p == 0); active dropout is
    supported through :class:`_BatchedDropout` when the module's layers are
    attached to a shared dropout stream (models with private per-layer
    dropout RNGs still fall back to the per-worker loop).
    """

    def __init__(
        self,
        norm1: _BatchedLayerNorm,
        attn: _BatchedSelfAttention,
        norm2: _BatchedLayerNorm,
        ff1: _BatchedLinear,
        act: _BatchedReLU,
        ff2: _BatchedLinear,
        drop1: Optional[_BatchedDropout] = None,
        drop2: Optional[_BatchedDropout] = None,
    ) -> None:
        self.norm1 = norm1
        self.attn = attn
        self.norm2 = norm2
        self.ff1 = ff1
        self.act = act
        self.ff2 = ff2
        self.drop1 = drop1
        self.drop2 = drop2

    def forward(self, x: np.ndarray) -> np.ndarray:
        a = self.norm1.forward(x)
        a = self.attn.forward(a)
        if self.drop1 is not None:
            a = self.drop1.forward(a)
        x = x + a
        f = self.norm2.forward(x)
        f = self.ff1.forward(f)
        f = self.act.forward(f)
        f = self.ff2.forward(f)
        if self.drop2 is not None:
            f = self.drop2.forward(f)
        return x + f

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g_ff = grad_out if self.drop2 is None else self.drop2.backward(grad_out)
        g_ff = self.ff2.backward(g_ff)
        g_ff = self.act.backward(g_ff)
        g_ff = self.ff1.backward(g_ff)
        g_ff = self.norm2.backward(g_ff)
        g_mid = grad_out + g_ff
        g_attn = g_mid if self.drop1 is None else self.drop1.backward(g_mid)
        g_attn = self.attn.backward(g_attn)
        g_attn = self.norm1.backward(g_attn)
        return g_mid + g_attn


_INDEX_CACHE: dict = {}


def _index_grids(n_workers: int, batch: int) -> Tuple[np.ndarray, np.ndarray]:
    key = (n_workers, batch)
    grids = _INDEX_CACHE.get(key)
    if grids is None:
        grids = (np.arange(n_workers)[:, None], np.arange(batch)[None, :])
        _INDEX_CACHE[key] = grids
    return grids


def _batched_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-replica mean cross-entropy and logits gradient.

    Same arithmetic as :func:`repro.nn.losses.cross_entropy_with_logits`
    (stable log-softmax, mean over the local batch), evaluated for all
    replicas in one pass over the ``(N, B, C)`` logits block and in the
    logits' own dtype.
    """
    n_workers, batch, _ = logits.shape
    shifted = logits - logits.max(axis=2, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(axis=2, keepdims=True))
    probs = np.exp(logp)
    rows, cols = _index_grids(n_workers, batch)
    losses = -logp[rows, cols, targets].mean(axis=1)
    grad = probs
    grad[rows, cols, targets] -= 1.0
    grad /= batch
    return losses, grad


class BatchedReplicaExecutor:
    """Fused forward/backward for every replica of a worker matrix at once."""

    def __init__(
        self,
        layers: Sequence[object],
        matrix: WorkerMatrix,
        input_ndim: int = 3,
        token_input: bool = False,
    ) -> None:
        self._layers = list(layers)
        self._matrix = matrix
        # Expected stacked-input rank: 3 for (N, B, F) MLP batches and
        # (N, B, T) token batches, 5 for (N, B, C, H, W) conv batches.
        self._input_ndim = int(input_ndim)
        # Token inputs stay integer (embedding lookup) instead of being cast
        # to the compute dtype.
        self._token_input = bool(token_input)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, matrix: WorkerMatrix, module, row_offset: int = 0
    ) -> Optional["BatchedReplicaExecutor"]:
        """Build an executor for ``module`` or return None if unsupported.

        ``module`` must be the already-adopted replica of the matrix's first
        row; its architecture (shared by all workers) defines the layer
        chain.  Exact-type checks: a subclass may override forward (skip
        connections, extra parameters), which the batched chains below would
        silently ignore — such models must use the fallback loop.

        ``row_offset`` is the matrix's first row's *global* replica index —
        nonzero when ``matrix`` is a replica-pool child's group sub-matrix —
        and only affects shared-stream dropout, whose mask blocks span the
        full cluster.
        """
        # Imported here: the engine stays importable without the nn layer
        # stack, and nn itself only lazily imports the engine.
        from repro.nn.models.convnet import ConvNet
        from repro.nn.models.mlp import MLP
        from repro.nn.models.transformer import TransformerLM

        if type(module) is MLP:
            return cls._build_mlp(matrix, module)
        if type(module) is ConvNet:
            return cls._build_convnet(matrix, module)
        if type(module) is TransformerLM:
            return cls._build_transformer(matrix, module, row_offset)
        return None

    # ------------------------------------------------------------------ #
    @classmethod
    def _batched_linear(cls, matrix: WorkerMatrix, spec, prefix: str, layer):
        """(layer, covered_entries) for one Linear, or None if layout-mismatched."""
        n = matrix.num_workers
        w_name = prefix + "weight"
        if w_name not in spec:
            return None
        w_shape = spec.shape_of(w_name)
        w_sl = spec.slice_of(w_name)
        weight = matrix.params[:, w_sl].reshape((n,) + w_shape)
        weight_grad = matrix.grads[:, w_sl].reshape((n,) + w_shape)
        covered = w_sl.stop - w_sl.start
        bias = bias_grad = None
        if layer.use_bias:
            b_name = prefix + "bias"
            if b_name not in spec:
                return None
            b_sl = spec.slice_of(b_name)
            bias = matrix.params[:, b_sl]
            bias_grad = matrix.grads[:, b_sl]
            covered += b_sl.stop - b_sl.start
        return _BatchedLinear(weight, weight_grad, bias, bias_grad), covered

    @classmethod
    def _batched_conv(cls, matrix: WorkerMatrix, spec, prefix: str, layer):
        """(layer, covered_entries) for one Conv2d, or None if layout-mismatched."""
        n = matrix.num_workers
        w_name = prefix + "weight"
        if w_name not in spec:
            return None
        out_c, in_c, kh, kw = spec.shape_of(w_name)
        w_sl = spec.slice_of(w_name)
        w_flat = matrix.params[:, w_sl].reshape(n, out_c, in_c * kh * kw)
        w_flat_grad = matrix.grads[:, w_sl].reshape(n, out_c, in_c * kh * kw)
        covered = w_sl.stop - w_sl.start
        bias = bias_grad = None
        if layer.use_bias:
            b_name = prefix + "bias"
            if b_name not in spec:
                return None
            b_sl = spec.slice_of(b_name)
            bias = matrix.params[:, b_sl]
            bias_grad = matrix.grads[:, b_sl]
            covered += b_sl.stop - b_sl.start
        batched = _BatchedConv2d(
            w_flat,
            w_flat_grad,
            bias,
            bias_grad,
            kernel_size=layer.kernel_size,
            stride=layer.stride,
            padding=layer.padding,
        )
        return batched, covered

    @classmethod
    def _build_mlp(cls, matrix: WorkerMatrix, module) -> Optional["BatchedReplicaExecutor"]:
        from repro.nn.layers import Linear, ReLU, Tanh

        spec = matrix.spec
        covered = 0
        layers: List[object] = []
        for idx, layer in enumerate(module.net):
            prefix = f"net.{idx}."
            if isinstance(layer, Linear):
                built = cls._batched_linear(matrix, spec, prefix, layer)
                if built is None:
                    return None
                layers.append(built[0])
                covered += built[1]
            elif isinstance(layer, ReLU):
                layers.append(_BatchedReLU())
            elif isinstance(layer, Tanh):
                layers.append(_BatchedTanh())
            else:
                return None
        if not layers:
            return None
        # Every parameter in the layout must belong to the chain we walk;
        # anything left over would silently never receive gradients.
        if covered != spec.total_size:
            return None
        return cls(layers, matrix, input_ndim=3)

    @classmethod
    def _build_convnet(
        cls, matrix: WorkerMatrix, module
    ) -> Optional["BatchedReplicaExecutor"]:
        from repro.nn.layers import Conv2d, GlobalAvgPool2d, Linear, MaxPool2d, ReLU

        spec = matrix.spec
        covered = 0
        layers: List[object] = []
        for idx, layer in enumerate(module.features):
            prefix = f"features.{idx}."
            if isinstance(layer, Conv2d):
                built = cls._batched_conv(matrix, spec, prefix, layer)
                if built is None:
                    return None
                layers.append(built[0])
                covered += built[1]
            elif isinstance(layer, ReLU):
                layers.append(_BatchedReLU())
            elif isinstance(layer, MaxPool2d):
                layers.append(_BatchedMaxPool2d(layer.kernel_size, layer.stride))
            elif isinstance(layer, GlobalAvgPool2d):
                layers.append(_BatchedGlobalAvgPool2d())
            else:
                return None
        if not isinstance(module.head, Linear):
            return None
        built = cls._batched_linear(matrix, spec, "head.", module.head)
        if built is None:
            return None
        layers.append(built[0])
        covered += built[1]
        if covered != spec.total_size:
            return None
        return cls(layers, matrix, input_ndim=5)

    @classmethod
    def _batched_layernorm(cls, matrix: WorkerMatrix, spec, prefix: str, layer):
        """(layer, covered_entries) for one LayerNorm, or None if layout-mismatched."""
        g_name, b_name = prefix + "gamma", prefix + "beta"
        if g_name not in spec or b_name not in spec:
            return None
        g_sl = spec.slice_of(g_name)
        b_sl = spec.slice_of(b_name)
        batched = _BatchedLayerNorm(
            matrix.params[:, g_sl],
            matrix.grads[:, g_sl],
            matrix.params[:, b_sl],
            matrix.grads[:, b_sl],
            eps=layer.eps,
        )
        covered = (g_sl.stop - g_sl.start) + (b_sl.stop - b_sl.start)
        return batched, covered

    @classmethod
    def _build_transformer(
        cls, matrix: WorkerMatrix, module, row_offset: int = 0
    ) -> Optional["BatchedReplicaExecutor"]:
        from repro.nn.attention import (
            MultiHeadSelfAttention,
            PositionalEncoding,
            TransformerEncoderLayer,
        )
        from repro.nn.layers import Embedding, LayerNorm, Linear, ReLU

        spec = matrix.spec
        n = matrix.num_workers
        covered = 0
        layers: List[object] = []

        if type(module.embedding) is not Embedding or "embedding.weight" not in spec:
            return None
        e_shape = spec.shape_of("embedding.weight")
        e_sl = spec.slice_of("embedding.weight")
        layers.append(
            _BatchedEmbedding(
                matrix.params[:, e_sl].reshape((n,) + e_shape),
                matrix.grads[:, e_sl].reshape((n,) + e_shape),
            )
        )
        covered += e_sl.stop - e_sl.start

        if type(module.pos_encoding) is not PositionalEncoding:
            return None
        layers.append(_BatchedPositionalEncoding(module.pos_encoding.pe))

        def seq_linear(prefix: str, layer):
            nonlocal covered
            if not isinstance(layer, Linear):
                return None
            built = cls._batched_linear(matrix, spec, prefix, layer)
            if built is None:
                return None
            covered += built[1]
            return built[0]

        def layer_norm(prefix: str, layer):
            nonlocal covered
            if type(layer) is not LayerNorm:
                return None
            built = cls._batched_layernorm(matrix, spec, prefix, layer)
            if built is None:
                return None
            covered += built[1]
            return built[0]

        for i, enc in enumerate(module._layers):
            if type(enc) is not TransformerEncoderLayer:
                return None
            attn = enc.attn
            if type(attn) is not MultiHeadSelfAttention:
                return None
            if not isinstance(enc.act, ReLU):
                return None
            # Active dropout batches only when its masks come from a shared
            # per-step stream; private per-layer RNG streams cannot be
            # replayed batched, so such models use the fallback loop.
            def batched_dropout(layer) -> Optional[_BatchedDropout]:
                if layer.p == 0.0:
                    return None
                return _BatchedDropout(
                    layer._shared_stream, layer._stream_layer_id, layer.p, row_offset
                )

            for drop in (enc.drop1, enc.drop2):
                if drop.p != 0.0 and drop._shared_stream is None:
                    return None
            prefix = f"layer{i}."
            norm1 = layer_norm(prefix + "norm1.", enc.norm1)
            q = seq_linear(prefix + "attn.q_proj.", attn.q_proj)
            k = seq_linear(prefix + "attn.k_proj.", attn.k_proj)
            v = seq_linear(prefix + "attn.v_proj.", attn.v_proj)
            o = seq_linear(prefix + "attn.out_proj.", attn.out_proj)
            norm2 = layer_norm(prefix + "norm2.", enc.norm2)
            ff1 = seq_linear(prefix + "ff1.", enc.ff1)
            ff2 = seq_linear(prefix + "ff2.", enc.ff2)
            if any(x is None for x in (norm1, q, k, v, o, norm2, ff1, ff2)):
                return None
            batched_attn = _BatchedSelfAttention(
                q,
                k,
                v,
                o,
                num_heads=attn.num_heads,
                d_head=attn.d_head,
                causal=attn.causal,
            )
            layers.append(
                _BatchedEncoderLayer(
                    norm1,
                    batched_attn,
                    norm2,
                    ff1,
                    _BatchedReLU(),
                    ff2,
                    drop1=batched_dropout(enc.drop1),
                    drop2=batched_dropout(enc.drop2),
                )
            )

        final_norm = layer_norm("final_norm.", module.final_norm)
        head = seq_linear("lm_head.", module.lm_head)
        if final_norm is None or head is None:
            return None
        layers.append(final_norm)
        layers.append(head)
        if covered != spec.total_size:
            return None
        return cls(layers, matrix, input_ndim=3, token_input=True)

    # ------------------------------------------------------------------ #
    def step(
        self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Optional[np.ndarray]:
        """One fused gradient computation for all replicas.

        ``batches`` holds one ``(inputs, targets)`` pair per worker; all
        batches must share one shape (the lockstep cluster guarantees this —
        if not, the caller falls back to the per-worker loop).  Inputs are
        cast to the matrix's compute dtype (token inputs stay integer);
        gradients are written directly into the matrix gradient rows
        (replacing the previous step's contents, i.e. zero-then-accumulate
        semantics) and the per-replica mean losses are returned.
        """
        if len(batches) != self._matrix.num_workers:
            return None
        first_x, first_y = batches[0]
        if any(b[0].shape != first_x.shape or b[1].shape != first_y.shape for b in batches):
            return None
        if self._token_input:
            x = np.stack([np.asarray(b[0]) for b in batches])
            if not np.issubdtype(x.dtype, np.integer):
                return None
        else:
            x = np.stack([np.asarray(b[0], dtype=self._matrix.dtype) for b in batches])
        targets = np.stack([b[1] for b in batches])
        return self.step_stacked(x, targets)

    def step_stacked(
        self, x: np.ndarray, targets: np.ndarray
    ) -> Optional[np.ndarray]:
        """One fused gradient computation from pre-stacked input blocks.

        ``x`` / ``targets`` carry the replica axis already stacked —
        ``(N, batch, ...)`` — so callers that assemble the block themselves
        (:meth:`step`, and the stacked sweep executor which tiles one
        N-worker batch block across S grid slices) skip the per-row
        ``np.stack``.  Same contract as :meth:`step` otherwise: gradients
        land in the matrix rows, per-replica mean losses are returned,
        ``None`` flags an unsupported shape/dtype combination.
        """
        if x.shape[0] != self._matrix.num_workers:
            return None
        if self._token_input:
            if not np.issubdtype(x.dtype, np.integer):
                return None
        else:
            x = np.asarray(x, dtype=self._matrix.dtype)
        if x.ndim != self._input_ndim or not np.issubdtype(targets.dtype, np.integer):
            return None
        with telemetry.span("engine.forward"):
            for layer in self._layers:
                x = layer.forward(x)
        if targets.shape != x.shape[:-1]:
            return None
        with telemetry.span("engine.backward"):
            if x.ndim == 4:
                # Language-model logits (N, B, T, V): fold time into the batch
                # axis, exactly as the per-worker cross-entropy flattens it.
                n, b, t, v = x.shape
                losses, grad = _batched_cross_entropy(
                    x.reshape(n, b * t, v), targets.reshape(n, b * t)
                )
                grad = grad.reshape(n, b, t, v)
            else:
                losses, grad = _batched_cross_entropy(x, targets)
            for layer in reversed(self._layers):
                grad = layer.backward(grad)
        return losses

    def grad_norms(self) -> np.ndarray:
        """Per-replica gradient L2 norms in one pass over the gradient matrix."""
        g = self._matrix.grads
        return np.sqrt(np.einsum("ij,ij->i", g, g))

    @property
    def token_input(self) -> bool:
        """Whether inputs are integer token blocks (stay uncast) or features."""
        return self._token_input
