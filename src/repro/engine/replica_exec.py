"""Vectorized multi-replica execution over the worker matrix.

Because every replica's parameters are rows of one ``(N, D)`` matrix with an
identical layout, the per-layer weights of *all* workers are zero-copy
``(N, ...)`` views into that matrix.  :class:`BatchedReplicaExecutor`
exploits this to run the forward pass, loss and backward pass of the entire
cluster as batched NumPy calls — one fused call per layer instead of one
Python call per layer *per worker* — writing gradients straight into the
gradient matrix rows.

Two model families are supported:

* the **MLP family** (chains of Linear / ReLU / Tanh on a classification
  head), which covers the simulator's hot benchmarks, and
* the **conv family** (:class:`~repro.nn.models.convnet.ConvNet`: Conv2d /
  ReLU / MaxPool2d / GlobalAvgPool2d features plus a Linear head), the
  non-MLP workload used to measure dtype-mode speedups on spatially
  structured inputs.

All arithmetic runs in the worker matrix's compute dtype (float64 default,
float32 in the reduced-precision mode).  Clusters with unsupported models
fall back to the per-worker loop transparently.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.worker_matrix import WorkerMatrix


class _BatchedLinear:
    """All workers' copies of one Linear layer as (N, out, in) views."""

    def __init__(
        self,
        weight: np.ndarray,
        weight_grad: np.ndarray,
        bias: Optional[np.ndarray],
        bias_grad: Optional[np.ndarray],
    ) -> None:
        self.weight = weight          # (N, out, in) view into params matrix
        self.weight_grad = weight_grad
        self.bias = bias              # (N, out) view or None
        self.bias_grad = bias_grad
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = np.matmul(x, self.weight.transpose(0, 2, 1))
        if self.bias is not None:
            out += self.bias[:, None, :]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Accumulate-from-zero semantics: one batched write per tensor.
        np.matmul(grad_out.transpose(0, 2, 1), self._x, out=self.weight_grad)
        if self.bias_grad is not None:
            self.bias_grad[...] = grad_out.sum(axis=1)
        return np.matmul(grad_out, self.weight)


class _BatchedReLU:
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, x.dtype.type(0))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, grad_out.dtype.type(0))


class _BatchedTanh:
    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._out**2)


class _BatchedConv2d:
    """All workers' copies of one Conv2d layer batched over the replica axis.

    Inputs flow as ``(N, B, C, H, W)`` blocks.  The im2col patches of all
    replicas are extracted in one pass over the collapsed ``(N*B, ...)``
    volume (the patch geometry is weight independent), then the per-replica
    convolutions reduce to one batched matmul against the ``(N, out_c, ckk)``
    weight views — exactly the _BatchedLinear trick lifted to patches.
    """

    def __init__(
        self,
        w_flat: np.ndarray,
        w_flat_grad: np.ndarray,
        bias: Optional[np.ndarray],
        bias_grad: Optional[np.ndarray],
        kernel_size: int,
        stride: int,
        padding: int,
    ) -> None:
        self.w_flat = w_flat            # (N, out_c, C*k*k) view into params matrix
        self.w_flat_grad = w_flat_grad
        self.bias = bias                # (N, out_c) view or None
        self.bias_grad = bias_grad
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        from repro.nn.layers import _im2col

        n, b = x.shape[:2]
        k = self.kernel_size
        flat = np.ascontiguousarray(x).reshape((n * b,) + x.shape[2:])
        cols, out_h, out_w = _im2col(flat, k, k, self.stride, self.padding)
        self._cols = cols.reshape(n, b * out_h * out_w, -1)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        out = np.matmul(self._cols, self.w_flat.transpose(0, 2, 1))
        if self.bias is not None:
            out += self.bias[:, None, :]
        out_c = self.w_flat.shape[1]
        return out.reshape(n, b, out_h, out_w, out_c).transpose(0, 1, 4, 2, 3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        from repro.nn.layers import _col2im

        n, b, c, h, w = self._x_shape
        out_h, out_w = self._out_hw
        out_c = self.w_flat.shape[1]
        g = np.ascontiguousarray(grad_out.transpose(0, 1, 3, 4, 2)).reshape(
            n, b * out_h * out_w, out_c
        )
        # Accumulate-from-zero semantics: one batched write per tensor.
        np.matmul(g.transpose(0, 2, 1), self._cols, out=self.w_flat_grad)
        if self.bias_grad is not None:
            self.bias_grad[...] = g.sum(axis=1)
        dcols = np.matmul(g, self.w_flat)
        k = self.kernel_size
        dx = _col2im(
            dcols.reshape(n * b, out_h, out_w, -1),
            (n * b, c, h, w),
            k,
            k,
            self.stride,
            self.padding,
        )
        return dx.reshape(n, b, c, h, w)


class _BatchedMaxPool2d:
    """Max pooling over (N, B, C, H, W): worker-independent, one fused pass."""

    def __init__(self, kernel_size: int, stride: int) -> None:
        self.kernel_size = kernel_size
        self.stride = stride
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._idx: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, b, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        flat = np.ascontiguousarray(x).reshape(n * b, c, h, w)
        shape = (n * b, c, out_h, out_w, k, k)
        strides = (
            flat.strides[0],
            flat.strides[1],
            flat.strides[2] * s,
            flat.strides[3] * s,
            flat.strides[2],
            flat.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(flat, shape=shape, strides=strides)
        windows = windows.reshape(n * b, c, out_h, out_w, k * k)
        idx = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, idx[..., None], axis=-1)[..., 0]
        self._x_shape = x.shape
        self._idx = idx
        return out.reshape(n, b, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, b, c, h, w = self._x_shape
        k, s = self.kernel_size, self.stride
        idx = self._idx
        out_h, out_w = idx.shape[2], idx.shape[3]
        grad_flat = np.ascontiguousarray(grad_out).reshape(n * b, c, out_h, out_w)
        grad_input = np.zeros((n * b, c, h, w), dtype=grad_flat.dtype)
        rows = idx // k
        cols = idx % k
        bb, ch = np.meshgrid(np.arange(n * b), np.arange(c), indexing="ij")
        for i in range(out_h):
            for j in range(out_w):
                r = i * s + rows[:, :, i, j]
                cc = j * s + cols[:, :, i, j]
                grad_input[bb, ch, r, cc] += grad_flat[:, :, i, j]
        return grad_input.reshape(n, b, c, h, w)


class _BatchedGlobalAvgPool2d:
    """Spatial mean over (N, B, C, H, W) -> (N, B, C)."""

    def __init__(self) -> None:
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(3, 4))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, b, c, h, w = self._x_shape
        return np.broadcast_to(
            grad_out[:, :, :, None, None] / (h * w), self._x_shape
        ).copy()


_INDEX_CACHE: dict = {}


def _index_grids(n_workers: int, batch: int) -> Tuple[np.ndarray, np.ndarray]:
    key = (n_workers, batch)
    grids = _INDEX_CACHE.get(key)
    if grids is None:
        grids = (np.arange(n_workers)[:, None], np.arange(batch)[None, :])
        _INDEX_CACHE[key] = grids
    return grids


def _batched_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-replica mean cross-entropy and logits gradient.

    Same arithmetic as :func:`repro.nn.losses.cross_entropy_with_logits`
    (stable log-softmax, mean over the local batch), evaluated for all
    replicas in one pass over the ``(N, B, C)`` logits block and in the
    logits' own dtype.
    """
    n_workers, batch, _ = logits.shape
    shifted = logits - logits.max(axis=2, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(axis=2, keepdims=True))
    probs = np.exp(logp)
    rows, cols = _index_grids(n_workers, batch)
    losses = -logp[rows, cols, targets].mean(axis=1)
    grad = probs
    grad[rows, cols, targets] -= 1.0
    grad /= batch
    return losses, grad


class BatchedReplicaExecutor:
    """Fused forward/backward for every replica of a worker matrix at once."""

    def __init__(
        self, layers: Sequence[object], matrix: WorkerMatrix, input_ndim: int = 3
    ) -> None:
        self._layers = list(layers)
        self._matrix = matrix
        # Expected stacked-input rank: 3 for (N, B, F) MLP batches, 5 for
        # (N, B, C, H, W) conv batches.
        self._input_ndim = int(input_ndim)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, matrix: WorkerMatrix, module) -> Optional["BatchedReplicaExecutor"]:
        """Build an executor for ``module`` or return None if unsupported.

        ``module`` must be the already-adopted replica of worker 0; its
        architecture (shared by all workers) defines the layer chain.
        Exact-type checks: a subclass may override forward (skip connections,
        extra parameters), which the batched chains below would silently
        ignore — such models must use the fallback loop.
        """
        # Imported here: the engine stays importable without the nn layer
        # stack, and nn itself only lazily imports the engine.
        from repro.nn.models.convnet import ConvNet
        from repro.nn.models.mlp import MLP

        if type(module) is MLP:
            return cls._build_mlp(matrix, module)
        if type(module) is ConvNet:
            return cls._build_convnet(matrix, module)
        return None

    # ------------------------------------------------------------------ #
    @classmethod
    def _batched_linear(cls, matrix: WorkerMatrix, spec, prefix: str, layer):
        """(layer, covered_entries) for one Linear, or None if layout-mismatched."""
        n = matrix.num_workers
        w_name = prefix + "weight"
        if w_name not in spec:
            return None
        w_shape = spec.shape_of(w_name)
        w_sl = spec.slice_of(w_name)
        weight = matrix.params[:, w_sl].reshape((n,) + w_shape)
        weight_grad = matrix.grads[:, w_sl].reshape((n,) + w_shape)
        covered = w_sl.stop - w_sl.start
        bias = bias_grad = None
        if layer.use_bias:
            b_name = prefix + "bias"
            if b_name not in spec:
                return None
            b_sl = spec.slice_of(b_name)
            bias = matrix.params[:, b_sl]
            bias_grad = matrix.grads[:, b_sl]
            covered += b_sl.stop - b_sl.start
        return _BatchedLinear(weight, weight_grad, bias, bias_grad), covered

    @classmethod
    def _batched_conv(cls, matrix: WorkerMatrix, spec, prefix: str, layer):
        """(layer, covered_entries) for one Conv2d, or None if layout-mismatched."""
        n = matrix.num_workers
        w_name = prefix + "weight"
        if w_name not in spec:
            return None
        out_c, in_c, kh, kw = spec.shape_of(w_name)
        w_sl = spec.slice_of(w_name)
        w_flat = matrix.params[:, w_sl].reshape(n, out_c, in_c * kh * kw)
        w_flat_grad = matrix.grads[:, w_sl].reshape(n, out_c, in_c * kh * kw)
        covered = w_sl.stop - w_sl.start
        bias = bias_grad = None
        if layer.use_bias:
            b_name = prefix + "bias"
            if b_name not in spec:
                return None
            b_sl = spec.slice_of(b_name)
            bias = matrix.params[:, b_sl]
            bias_grad = matrix.grads[:, b_sl]
            covered += b_sl.stop - b_sl.start
        batched = _BatchedConv2d(
            w_flat,
            w_flat_grad,
            bias,
            bias_grad,
            kernel_size=layer.kernel_size,
            stride=layer.stride,
            padding=layer.padding,
        )
        return batched, covered

    @classmethod
    def _build_mlp(cls, matrix: WorkerMatrix, module) -> Optional["BatchedReplicaExecutor"]:
        from repro.nn.layers import Linear, ReLU, Tanh

        spec = matrix.spec
        covered = 0
        layers: List[object] = []
        for idx, layer in enumerate(module.net):
            prefix = f"net.{idx}."
            if isinstance(layer, Linear):
                built = cls._batched_linear(matrix, spec, prefix, layer)
                if built is None:
                    return None
                layers.append(built[0])
                covered += built[1]
            elif isinstance(layer, ReLU):
                layers.append(_BatchedReLU())
            elif isinstance(layer, Tanh):
                layers.append(_BatchedTanh())
            else:
                return None
        if not layers:
            return None
        # Every parameter in the layout must belong to the chain we walk;
        # anything left over would silently never receive gradients.
        if covered != spec.total_size:
            return None
        return cls(layers, matrix, input_ndim=3)

    @classmethod
    def _build_convnet(
        cls, matrix: WorkerMatrix, module
    ) -> Optional["BatchedReplicaExecutor"]:
        from repro.nn.layers import Conv2d, GlobalAvgPool2d, Linear, MaxPool2d, ReLU

        spec = matrix.spec
        covered = 0
        layers: List[object] = []
        for idx, layer in enumerate(module.features):
            prefix = f"features.{idx}."
            if isinstance(layer, Conv2d):
                built = cls._batched_conv(matrix, spec, prefix, layer)
                if built is None:
                    return None
                layers.append(built[0])
                covered += built[1]
            elif isinstance(layer, ReLU):
                layers.append(_BatchedReLU())
            elif isinstance(layer, MaxPool2d):
                layers.append(_BatchedMaxPool2d(layer.kernel_size, layer.stride))
            elif isinstance(layer, GlobalAvgPool2d):
                layers.append(_BatchedGlobalAvgPool2d())
            else:
                return None
        if not isinstance(module.head, Linear):
            return None
        built = cls._batched_linear(matrix, spec, "head.", module.head)
        if built is None:
            return None
        layers.append(built[0])
        covered += built[1]
        if covered != spec.total_size:
            return None
        return cls(layers, matrix, input_ndim=5)

    # ------------------------------------------------------------------ #
    def step(
        self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Optional[np.ndarray]:
        """One fused gradient computation for all replicas.

        ``batches`` holds one ``(inputs, targets)`` pair per worker; all
        batches must share one shape (the lockstep cluster guarantees this —
        if not, the caller falls back to the per-worker loop).  Inputs are
        cast to the matrix's compute dtype; gradients are written directly
        into the matrix gradient rows (replacing the previous step's
        contents, i.e. zero-then-accumulate semantics) and the per-replica
        mean losses are returned.
        """
        if len(batches) != self._matrix.num_workers:
            return None
        first_x, first_y = batches[0]
        if any(b[0].shape != first_x.shape or b[1].shape != first_y.shape for b in batches):
            return None
        dtype = self._matrix.dtype
        x = np.stack([np.asarray(b[0], dtype=dtype) for b in batches])
        targets = np.stack([b[1] for b in batches])
        if x.ndim != self._input_ndim or not np.issubdtype(targets.dtype, np.integer):
            return None
        for layer in self._layers:
            x = layer.forward(x)
        losses, grad = _batched_cross_entropy(x, targets)
        for layer in reversed(self._layers):
            grad = layer.backward(grad)
        return losses

    def grad_norms(self) -> np.ndarray:
        """Per-replica gradient L2 norms in one pass over the gradient matrix."""
        g = self._matrix.grads
        return np.sqrt(np.einsum("ij,ij->i", g, g))
