"""Vectorized multi-replica execution over the worker matrix.

Because every replica's parameters are rows of one ``(N, D)`` matrix with an
identical layout, the per-layer weights of *all* workers are zero-copy
``(N, out, in)`` views into that matrix.  :class:`BatchedReplicaExecutor`
exploits this to run the forward pass, loss and backward pass of the entire
cluster as batched NumPy matmuls — one fused call per layer instead of one
Python call per layer *per worker* — writing gradients straight into the
gradient matrix rows.

The executor supports the MLP family (chains of Linear / ReLU / Tanh on a
classification head), which covers the simulator's hot benchmarks; clusters
with unsupported models fall back to the per-worker loop transparently.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.worker_matrix import WorkerMatrix


class _BatchedLinear:
    """All workers' copies of one Linear layer as (N, out, in) views."""

    def __init__(
        self,
        weight: np.ndarray,
        weight_grad: np.ndarray,
        bias: Optional[np.ndarray],
        bias_grad: Optional[np.ndarray],
    ) -> None:
        self.weight = weight          # (N, out, in) view into params matrix
        self.weight_grad = weight_grad
        self.bias = bias              # (N, out) view or None
        self.bias_grad = bias_grad
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = np.matmul(x, self.weight.transpose(0, 2, 1))
        if self.bias is not None:
            out += self.bias[:, None, :]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Accumulate-from-zero semantics: one batched write per tensor.
        np.matmul(grad_out.transpose(0, 2, 1), self._x, out=self.weight_grad)
        if self.bias_grad is not None:
            self.bias_grad[...] = grad_out.sum(axis=1)
        return np.matmul(grad_out, self.weight)


class _BatchedReLU:
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, 0.0)


class _BatchedTanh:
    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._out**2)


_INDEX_CACHE: dict = {}


def _index_grids(n_workers: int, batch: int) -> Tuple[np.ndarray, np.ndarray]:
    key = (n_workers, batch)
    grids = _INDEX_CACHE.get(key)
    if grids is None:
        grids = (np.arange(n_workers)[:, None], np.arange(batch)[None, :])
        _INDEX_CACHE[key] = grids
    return grids


def _batched_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-replica mean cross-entropy and logits gradient.

    Same arithmetic as :func:`repro.nn.losses.cross_entropy_with_logits`
    (stable log-softmax, mean over the local batch), evaluated for all
    replicas in one pass over the ``(N, B, C)`` logits block.
    """
    n_workers, batch, _ = logits.shape
    shifted = logits - logits.max(axis=2, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(axis=2, keepdims=True))
    probs = np.exp(logp)
    rows, cols = _index_grids(n_workers, batch)
    losses = -logp[rows, cols, targets].mean(axis=1)
    grad = probs
    grad[rows, cols, targets] -= 1.0
    grad /= batch
    return losses, grad


class BatchedReplicaExecutor:
    """Fused forward/backward for every replica of a worker matrix at once."""

    def __init__(self, layers: Sequence[object], matrix: WorkerMatrix) -> None:
        self._layers = list(layers)
        self._matrix = matrix

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, matrix: WorkerMatrix, module) -> Optional["BatchedReplicaExecutor"]:
        """Build an executor for ``module`` or return None if unsupported.

        ``module`` must be the already-adopted replica of worker 0; its
        architecture (shared by all workers) defines the layer chain.
        """
        # Imported here: the engine stays importable without the nn layer
        # stack, and nn itself only lazily imports the engine.
        from repro.nn.layers import Linear, ReLU, Tanh
        from repro.nn.models.mlp import MLP

        # Exact-type check: an MLP subclass may override forward (skip
        # connections, extra parameters), which the batched chain below
        # would silently ignore — such models must use the fallback loop.
        if type(module) is not MLP:
            return None
        spec = matrix.spec
        n = matrix.num_workers
        covered = 0
        layers: List[object] = []
        for idx, layer in enumerate(module.net):
            prefix = f"net.{idx}."
            if isinstance(layer, Linear):
                w_name = prefix + "weight"
                if w_name not in spec:
                    return None
                w_shape = spec.shape_of(w_name)
                w_sl = spec.slice_of(w_name)
                weight = matrix.params[:, w_sl].reshape((n,) + w_shape)
                weight_grad = matrix.grads[:, w_sl].reshape((n,) + w_shape)
                covered += w_sl.stop - w_sl.start
                bias = bias_grad = None
                b_name = prefix + "bias"
                if layer.use_bias:
                    if b_name not in spec:
                        return None
                    b_sl = spec.slice_of(b_name)
                    bias = matrix.params[:, b_sl]
                    bias_grad = matrix.grads[:, b_sl]
                    covered += b_sl.stop - b_sl.start
                layers.append(_BatchedLinear(weight, weight_grad, bias, bias_grad))
            elif isinstance(layer, ReLU):
                layers.append(_BatchedReLU())
            elif isinstance(layer, Tanh):
                layers.append(_BatchedTanh())
            else:
                return None
        if not layers:
            return None
        # Every parameter in the layout must belong to the chain we walk;
        # anything left over would silently never receive gradients.
        if covered != spec.total_size:
            return None
        return cls(layers, matrix)

    # ------------------------------------------------------------------ #
    def step(
        self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Optional[np.ndarray]:
        """One fused gradient computation for all replicas.

        ``batches`` holds one ``(inputs, targets)`` pair per worker; all
        batches must share one shape (the lockstep cluster guarantees this —
        if not, the caller falls back to the per-worker loop).  Gradients
        are written directly into the matrix gradient rows (replacing the
        previous step's contents, i.e. zero-then-accumulate semantics) and
        the per-replica mean losses are returned.
        """
        if len(batches) != self._matrix.num_workers:
            return None
        first_x, first_y = batches[0]
        if any(b[0].shape != first_x.shape or b[1].shape != first_y.shape for b in batches):
            return None
        x = np.stack([np.asarray(b[0], dtype=np.float64) for b in batches])
        targets = np.stack([b[1] for b in batches])
        if x.ndim != 3 or not np.issubdtype(targets.dtype, np.integer):
            return None
        for layer in self._layers:
            x = layer.forward(x)
        losses, grad = _batched_cross_entropy(x, targets)
        for layer in reversed(self._layers):
            grad = layer.backward(grad)
        return losses

    def grad_norms(self) -> np.ndarray:
        """Per-replica gradient L2 norms in one pass over the gradient matrix."""
        g = self._matrix.grads
        return np.sqrt(np.einsum("ij,ij->i", g, g))
