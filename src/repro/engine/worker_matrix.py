"""The cluster-level ``(num_workers, D)`` worker matrix.

All per-worker flat buffers (parameters and gradients) are rows of two
preallocated matrices.  Because every worker's model parameters are *views*
into its row (see :meth:`WorkerMatrix.adopt`), the expensive collective
operations of the simulator collapse into single vectorized NumPy calls:

* parameter / gradient averaging  ->  ``matrix.mean(axis=0)``
* broadcast of a global state     ->  ``matrix[:] = vector`` (row assignment)
* replica-consistency / drift     ->  one norm over ``matrix - mean``
* per-worker gradient statistics  ->  one reduction along ``axis=1``

Nothing is copied at step time: a worker's backward pass accumulates
directly into its gradient row, and an optimizer step mutates its parameter
row in place.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engine.flat_buffer import ParamSpec


class WorkerMatrix:
    """Stacked per-worker parameter and gradient buffers.

    Storage dtype follows the spec's compute dtype (float64 default, float32
    in the reduced-precision engine mode).

    ``params`` / ``grads`` may donate the backing arrays — e.g. views into a
    :class:`~repro.parallel.shm.SharedMatrixStorage` segment, which is how the
    multiprocessing replica pool makes one ``(N, D)`` matrix visible to every
    worker process, or row-slices of a larger matrix (a pool child's group
    sub-matrix).  Donated storage must be C-contiguous ``(num_workers, D)``
    arrays of the spec's dtype; the matrix never copies or frees it.
    """

    def __init__(
        self,
        num_workers: int,
        spec: ParamSpec,
        params: Optional[np.ndarray] = None,
        grads: Optional[np.ndarray] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.spec = spec
        # Donated storage (shared memory, stacked-sweep slices) is owned by
        # someone else: the matrix must never reallocate or free it, which
        # is what rules out resize() below.
        self.owns_storage = params is None and grads is None
        self.params = self._check_storage(params, "params")
        self.grads = self._check_storage(grads, "grads")

    def _check_storage(self, array, label: str) -> np.ndarray:
        if array is None:
            return np.zeros((self.num_workers, self.spec.total_size), dtype=self.spec.dtype)
        if array.shape != (self.num_workers, self.spec.total_size):
            raise ValueError(
                f"donated {label} storage has shape {array.shape}, expected "
                f"{(self.num_workers, self.spec.total_size)}"
            )
        if array.dtype != self.spec.dtype:
            raise TypeError(
                f"donated {label} storage must be {self.spec.dtype.name}, got {array.dtype}"
            )
        if not array.flags["C_CONTIGUOUS"]:
            raise ValueError(f"donated {label} storage must be C-contiguous")
        return array

    @property
    def dtype(self) -> np.dtype:
        """Compute dtype shared by both matrices (owned by the spec)."""
        return self.spec.dtype

    # ------------------------------------------------------------------ #
    # row adoption
    # ------------------------------------------------------------------ #
    def adopt(self, worker_id: int, module) -> None:
        """Move ``module``'s parameter/gradient storage onto rows ``worker_id``.

        After adoption the module's parameters alias ``params[worker_id]``
        and its gradients alias ``grads[worker_id]``; the module keeps its
        full named API while the matrix sees every update for free.
        """
        self._check_worker(worker_id)
        module.flatten_parameters(
            param_vector=self.params[worker_id], grad_vector=self.grads[worker_id]
        )

    def param_row(self, worker_id: int) -> np.ndarray:
        """Zero-copy view of worker ``worker_id``'s flat parameters."""
        self._check_worker(worker_id)
        return self.params[worker_id]

    def grad_row(self, worker_id: int) -> np.ndarray:
        """Zero-copy view of worker ``worker_id``'s flat gradients."""
        self._check_worker(worker_id)
        return self.grads[worker_id]

    # ------------------------------------------------------------------ #
    # elastic resize
    # ------------------------------------------------------------------ #
    def resize(self, new_num_workers: int) -> None:
        """Grow or shrink the matrix to ``new_num_workers`` rows in place.

        Overlapping rows are copied into freshly allocated storage (grown
        rows start at zero; shrinking drops the tail rows).  Existing row
        *views* — adopted modules, rebound optimizer state — keep aliasing
        the old storage, so callers must re-adopt workers afterwards; the
        elastic cluster layer in :mod:`repro.faults` prefers row *masking*
        for exactly this reason and reserves resize for between-run
        reshaping.  Donated storage (shared memory, stacked-sweep slices)
        cannot be resized.
        """
        if new_num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {new_num_workers}")
        if not self.owns_storage:
            raise ValueError(
                "cannot resize a WorkerMatrix over donated storage "
                "(shared memory or stacked-sweep slices own the buffers)"
            )
        if new_num_workers == self.num_workers:
            return
        keep = min(self.num_workers, new_num_workers)
        new_params = np.zeros((new_num_workers, self.spec.total_size), dtype=self.spec.dtype)
        new_grads = np.zeros_like(new_params)
        new_params[:keep] = self.params[:keep]
        new_grads[:keep] = self.grads[:keep]
        self.num_workers = int(new_num_workers)
        self.params = new_params
        self.grads = new_grads

    # ------------------------------------------------------------------ #
    # vectorized collectives
    # ------------------------------------------------------------------ #
    def mean_params(self) -> np.ndarray:
        """PA averaging across all replicas in one fused reduction."""
        return self.params.mean(axis=0)

    def mean_grads(self) -> np.ndarray:
        """GA averaging across all replicas in one fused reduction."""
        return self.grads.mean(axis=0)

    def broadcast(self, vector: np.ndarray) -> None:
        """Load one global flat state into every replica by row assignment."""
        vector = np.asarray(vector, dtype=self.spec.dtype).ravel()
        if vector.size != self.spec.total_size:
            raise ValueError(
                f"broadcast vector has length {vector.size}, expected {self.spec.total_size}"
            )
        self.params[:] = vector

    def consistency_error(self) -> float:
        """Maximum L2 distance of any replica from the replica average."""
        centered = self.params - self.params.mean(axis=0)
        return float(np.sqrt((centered**2).sum(axis=1).max()))

    def divergence(self) -> float:
        """Mean L2 distance of replicas from their average (drift diagnostic)."""
        centered = self.params - self.params.mean(axis=0)
        return float(np.sqrt((centered**2).sum(axis=1)).mean())

    # ------------------------------------------------------------------ #
    # named access (cold paths: checkpointing, tests)
    # ------------------------------------------------------------------ #
    def state_dict(self, worker_id: int) -> Dict[str, np.ndarray]:
        """Copy of one worker's named parameter state."""
        self._check_worker(worker_id)
        return self.spec.unflatten(self.params[worker_id])

    def mean_state_dict(self) -> Dict[str, np.ndarray]:
        """Replica-averaged parameters as a named dict (PA aggregation)."""
        return self.spec.unflatten(self.mean_params())

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(
                f"worker_id {worker_id} out of range for {self.num_workers} workers"
            )
