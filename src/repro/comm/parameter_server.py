"""Simulated central parameter server (PS).

Implements the ``pullFromPS`` / ``pushToPS`` interface of Alg. 1:

* **Parameter aggregation (PA)** — workers push their *post-update local
  parameters*; the server averages them and every worker pulls the averaged
  state, so all replicas become identical after a synchronization step.
* **Gradient aggregation (GA)** — workers push *gradients*; the server
  averages those and workers apply the averaged gradient locally through
  their own optimizer (the mode compared against PA in Fig. 10).
* **Asynchronous updates (SSP)** — a worker can apply its own update to the
  global state without waiting for others; the server tracks per-worker
  clocks so the stale-synchronous bound can be enforced.

The global state lives in one contiguous flat buffer
(:class:`repro.engine.FlatBuffer`); the named-dict API is preserved through
zero-copy views, and the cluster's hot path pushes whole ``(N, D)`` worker
matrices (:meth:`push_matrix_parameters` / :meth:`push_matrix_gradients`)
instead of re-flattening dicts every synchronization round.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.engine.dtypes import DTypeLike, transport_dtype_bytes, wire_dtype_bytes
from repro.engine.flat_buffer import FlatBuffer, ParamSpec


class ParameterServer:
    """Central state holder plus aggregation and staleness bookkeeping.

    ``dtype`` selects the compute dtype of the global flat state (the
    engine's float64 default when omitted); wire-byte accounting follows the
    dtype through :func:`repro.engine.dtypes.wire_dtype_bytes`, unless a
    ``transport_dtype`` override prices an explicit wire format (so pushed /
    pulled bytes stay consistent with the backend's records and the clock
    when the cluster runs a float16 wire).
    """

    def __init__(
        self,
        initial_state: Mapping[str, np.ndarray],
        num_workers: int,
        dtype: DTypeLike = None,
        transport_dtype: DTypeLike = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.transport_dtype = transport_dtype
        self._buffer = FlatBuffer.from_tree(initial_state, dtype=dtype)
        self.spec: ParamSpec = self._buffer.spec
        # Named zero-copy views into the flat buffer (the legacy dict API).
        self._state: Dict[str, np.ndarray] = self._buffer.as_dict(copy=False)
        self.num_workers = int(num_workers)
        self.version = 0
        self.worker_clocks = np.zeros(num_workers, dtype=np.int64)
        self.total_pushed_bytes = 0.0
        self.total_pulled_bytes = 0.0
        self.aggregations = 0

    # ------------------------------------------------------------------ #
    # pull / push
    # ------------------------------------------------------------------ #
    def pull(self, worker_id: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Return a copy of the global model state (``pullFromPS``)."""
        if worker_id is not None and not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        self.total_pulled_bytes += self.state_bytes()
        return self._buffer.as_dict(copy=True)

    def pull_vector(self, worker_id: Optional[int] = None, copy: bool = True) -> np.ndarray:
        """Flat-vector ``pullFromPS``; ``copy=False`` returns the live buffer."""
        if worker_id is not None and not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        self.total_pulled_bytes += self.state_bytes()
        return self._buffer.copy_vector() if copy else self._buffer.vector

    @property
    def state_vector(self) -> np.ndarray:
        """Live flat view of the global state (no transfer accounting)."""
        return self._buffer.vector

    def state_bytes(self) -> int:
        """Model size in transported bytes.

        The wire width of the compute dtype by default; an explicit
        ``transport_dtype`` (e.g. a float16 wire) prices its native width.
        """
        if self.transport_dtype is not None:
            return self._buffer.size * transport_dtype_bytes(self.transport_dtype)
        return self._buffer.size * wire_dtype_bytes(self._buffer.dtype)

    def aggregate_parameters(
        self, worker_states: Mapping[int, Mapping[str, np.ndarray]]
    ) -> Dict[str, np.ndarray]:
        """Average pushed parameter states into the global state (PA mode)."""
        if not worker_states:
            raise ValueError("no worker states to aggregate")
        self._validate_tree_shapes(worker_states)
        stacked = np.stack(
            [self.spec.flatten_tree(ws) for ws in worker_states.values()]
        )
        self._buffer.load_vector(stacked.mean(axis=0))
        self.total_pushed_bytes += self.state_bytes() * len(worker_states)
        self.version += 1
        self.aggregations += 1
        return self.pull()

    def push_matrix_parameters(self, params_matrix: np.ndarray) -> np.ndarray:
        """PA push of the whole ``(N, D)`` worker matrix in one fused mean.

        Mirrors :meth:`aggregate_parameters` + one pull in accounting
        (each worker pushes its replica, the averaged state goes back out),
        and returns the new global flat state.
        """
        matrix = self._check_matrix(params_matrix)
        self._buffer.load_vector(matrix.mean(axis=0))
        self.total_pushed_bytes += self.state_bytes() * matrix.shape[0]
        self.version += 1
        self.aggregations += 1
        return self.pull_vector()

    def aggregate_gradients(
        self, worker_grads: Mapping[int, Mapping[str, np.ndarray]]
    ) -> Dict[str, np.ndarray]:
        """Average pushed gradients and return them (GA mode).

        The global parameter state is *not* modified; workers apply the
        averaged gradients through their own optimizers, which is exactly why
        local replicas can drift apart under GA (§III-C).
        """
        if not worker_grads:
            raise ValueError("no worker gradients to aggregate")
        self._validate_tree_shapes(worker_grads)
        stacked = np.stack(
            [self.spec.flatten_tree(g) for g in worker_grads.values()]
        )
        averaged = stacked.mean(axis=0)
        self.total_pushed_bytes += self.state_bytes() * len(worker_grads)
        self.total_pulled_bytes += self.state_bytes() * len(worker_grads)
        self.version += 1
        self.aggregations += 1
        return self.spec.unflatten(averaged, copy=False)

    def push_matrix_gradients(self, grads_matrix: np.ndarray) -> np.ndarray:
        """GA push of the whole ``(N, D)`` gradient matrix in one fused mean.

        Matches :meth:`aggregate_gradients` accounting (every worker pushes
        its gradient and pulls the average back); the global state is not
        modified.  Returns the averaged flat gradient.
        """
        matrix = self._check_matrix(grads_matrix)
        averaged = matrix.mean(axis=0)
        self.total_pushed_bytes += self.state_bytes() * matrix.shape[0]
        self.total_pulled_bytes += self.state_bytes() * matrix.shape[0]
        self.version += 1
        self.aggregations += 1
        return averaged

    def set_state(self, state: Union[Mapping[str, np.ndarray], np.ndarray]) -> None:
        """Overwrite the global state (used after GA so the PS tracks a reference replica).

        Accepts a named dict or an already-flat vector.
        """
        if isinstance(state, np.ndarray):
            self._buffer.load_vector(state)
        else:
            self._validate_tree_shapes({0: state})
            self._buffer.load_tree(state)
        self.version += 1

    # ------------------------------------------------------------------ #
    # asynchronous path (SSP)
    # ------------------------------------------------------------------ #
    def async_apply_delta(
        self, worker_id: int, delta: Union[Mapping[str, np.ndarray], np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Apply one worker's parameter delta to the global state without a barrier.

        Returns the post-update global state (the worker pulls it immediately,
        as SSP workers do on every step).
        """
        self._apply_delta(worker_id, delta)
        return self.pull(worker_id)

    def async_apply_delta_vector(
        self, worker_id: int, delta: Union[Mapping[str, np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Flat-vector variant of :meth:`async_apply_delta` (engine hot path)."""
        self._apply_delta(worker_id, delta)
        return self.pull_vector(worker_id)

    def _apply_delta(self, worker_id: int, delta) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        if isinstance(delta, np.ndarray):
            flat = np.asarray(delta, dtype=self._buffer.dtype).ravel()
            if flat.size != self._buffer.size:
                raise ValueError(
                    f"delta has length {flat.size}, expected {self._buffer.size}"
                )
        else:
            self._validate_tree_shapes({worker_id: delta})
            flat = self.spec.flatten_tree(delta)
        self._buffer.vector += flat
        self.worker_clocks[worker_id] += 1
        self.total_pushed_bytes += self.state_bytes()
        self.version += 1

    def staleness(self, worker_id: int) -> int:
        """How many iterations this worker is ahead of the slowest worker."""
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        return int(self.worker_clocks[worker_id] - self.worker_clocks.min())

    def min_clock(self) -> int:
        return int(self.worker_clocks.min())

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _check_matrix(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=self._buffer.dtype)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise ValueError(
                f"expected a non-empty (N, D) matrix, got shape {matrix.shape}"
            )
        if matrix.shape[1] != self._buffer.size:
            raise ValueError(
                f"matrix row length {matrix.shape[1]} does not match model D={self._buffer.size}"
            )
        return matrix

    def _validate_tree_shapes(self, trees: Mapping[int, Mapping[str, np.ndarray]]) -> None:
        for worker_id, tree in trees.items():
            missing = set(self._state) - set(tree)
            if missing:
                raise KeyError(
                    f"worker {worker_id} push missing parameters: {sorted(missing)[:3]}..."
                )
            for name, reference in self._state.items():
                value = np.asarray(tree[name])
                if value.shape != reference.shape:
                    raise ValueError(
                        f"worker {worker_id} parameter {name!r} has shape {value.shape}, "
                        f"expected {reference.shape}"
                    )
