"""Simulated central parameter server (PS).

Implements the ``pullFromPS`` / ``pushToPS`` interface of Alg. 1:

* **Parameter aggregation (PA)** — workers push their *post-update local
  parameters*; the server averages them and every worker pulls the averaged
  state, so all replicas become identical after a synchronization step.
* **Gradient aggregation (GA)** — workers push *gradients*; the server
  averages those and workers apply the averaged gradient locally through
  their own optimizer (the mode compared against PA in Fig. 10).
* **Asynchronous updates (SSP)** — a worker can apply its own update to the
  global state without waiting for others; the server tracks per-worker
  clocks so the stale-synchronous bound can be enforced.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.utils.flatten import total_bytes, tree_zip_map


class ParameterServer:
    """Central state holder plus aggregation and staleness bookkeeping."""

    def __init__(self, initial_state: Mapping[str, np.ndarray], num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._state: Dict[str, np.ndarray] = {
            name: np.asarray(value, dtype=np.float64).copy()
            for name, value in initial_state.items()
        }
        self.num_workers = int(num_workers)
        self.version = 0
        self.worker_clocks = np.zeros(num_workers, dtype=np.int64)
        self.total_pushed_bytes = 0.0
        self.total_pulled_bytes = 0.0
        self.aggregations = 0

    # ------------------------------------------------------------------ #
    # pull / push
    # ------------------------------------------------------------------ #
    def pull(self, worker_id: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Return a copy of the global model state (``pullFromPS``)."""
        if worker_id is not None and not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        self.total_pulled_bytes += total_bytes(self._state)
        return {name: value.copy() for name, value in self._state.items()}

    def state_bytes(self) -> int:
        """Model size in transported bytes (float32 wire format)."""
        return total_bytes(self._state)

    def aggregate_parameters(
        self, worker_states: Mapping[int, Mapping[str, np.ndarray]]
    ) -> Dict[str, np.ndarray]:
        """Average pushed parameter states into the global state (PA mode)."""
        if not worker_states:
            raise ValueError("no worker states to aggregate")
        self._validate_tree_shapes(worker_states)
        names = list(self._state.keys())
        count = len(worker_states)
        for name in names:
            stacked = np.stack([np.asarray(ws[name], dtype=np.float64) for ws in worker_states.values()])
            self._state[name] = stacked.mean(axis=0)
        self.total_pushed_bytes += self.state_bytes() * count
        self.version += 1
        self.aggregations += 1
        return self.pull()

    def aggregate_gradients(
        self, worker_grads: Mapping[int, Mapping[str, np.ndarray]]
    ) -> Dict[str, np.ndarray]:
        """Average pushed gradients and return them (GA mode).

        The global parameter state is *not* modified; workers apply the
        averaged gradients through their own optimizers, which is exactly why
        local replicas can drift apart under GA (§III-C).
        """
        if not worker_grads:
            raise ValueError("no worker gradients to aggregate")
        self._validate_tree_shapes(worker_grads)
        names = list(self._state.keys())
        averaged: Dict[str, np.ndarray] = {}
        for name in names:
            stacked = np.stack([np.asarray(g[name], dtype=np.float64) for g in worker_grads.values()])
            averaged[name] = stacked.mean(axis=0)
        self.total_pushed_bytes += self.state_bytes() * len(worker_grads)
        self.total_pulled_bytes += self.state_bytes() * len(worker_grads)
        self.version += 1
        self.aggregations += 1
        return averaged

    def set_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Overwrite the global state (used after GA so the PS tracks a reference replica)."""
        self._validate_tree_shapes({0: state})
        for name in self._state:
            self._state[name] = np.asarray(state[name], dtype=np.float64).copy()
        self.version += 1

    # ------------------------------------------------------------------ #
    # asynchronous path (SSP)
    # ------------------------------------------------------------------ #
    def async_apply_delta(
        self, worker_id: int, delta: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Apply one worker's parameter delta to the global state without a barrier.

        Returns the post-update global state (the worker pulls it immediately,
        as SSP workers do on every step).
        """
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        self._validate_tree_shapes({worker_id: delta})
        for name in self._state:
            self._state[name] = self._state[name] + np.asarray(delta[name], dtype=np.float64)
        self.worker_clocks[worker_id] += 1
        self.total_pushed_bytes += self.state_bytes()
        self.version += 1
        return self.pull(worker_id)

    def staleness(self, worker_id: int) -> int:
        """How many iterations this worker is ahead of the slowest worker."""
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        return int(self.worker_clocks[worker_id] - self.worker_clocks.min())

    def min_clock(self) -> int:
        return int(self.worker_clocks.min())

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validate_tree_shapes(self, trees: Mapping[int, Mapping[str, np.ndarray]]) -> None:
        for worker_id, tree in trees.items():
            missing = set(self._state) - set(tree)
            if missing:
                raise KeyError(
                    f"worker {worker_id} push missing parameters: {sorted(missing)[:3]}..."
                )
            for name, reference in self._state.items():
                value = np.asarray(tree[name])
                if value.shape != reference.shape:
                    raise ValueError(
                        f"worker {worker_id} parameter {name!r} has shape {value.shape}, "
                        f"expected {reference.shape}"
                    )
