"""Topology-aware synchronization cost models.

These functions compute the simulated synchronization time ``t_s`` for one
aggregation round, given the model size in bytes, the cluster size and the
:class:`~repro.comm.network.NetworkModel`.

* **Parameter server (PS)** — every worker pushes its update to the central
  server and pulls the averaged state back.  The server NIC is the
  bottleneck: it must ingest ``N * model_bytes`` and egress the same amount,
  so the cost grows linearly with the number of workers (this is the Fig. 1a
  scaling behaviour).
* **Ring all-reduce** — bandwidth optimal: each worker sends
  ``2 * (N-1)/N * model_bytes`` regardless of N, at the price of ``2*(N-1)``
  latency terms.
* **Tree all-reduce** — logarithmic latency, bandwidth ``2 * log2(N) * model_bytes``.
* **Flags all-gather** — the paper's synchronization-status exchange is
  ``N-1`` bits per worker and costs 2–4 ms in their measurements; we model it
  as one small message per worker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import Optional

from repro.comm.network import NetworkModel
from repro.engine.dtypes import (
    WIRE_DTYPE_BYTES,
    transport_dtype_bytes,
    transport_scale,
    wire_dtype_bytes,
)


def wire_bytes(
    num_elements: int,
    dtype_bytes: int = WIRE_DTYPE_BYTES,
    dtype=None,
    transport_dtype=None,
) -> float:
    """On-wire size of ``num_elements`` tensor entries.

    All ``model_bytes`` arguments below are expected in wire bytes computed
    through :mod:`repro.engine.dtypes` — the single owner of the dtype ->
    wire-bytes mapping shared with the flatten utilities, the backend and
    the compression layer — so the float16/quantized transport modes change
    the clock consistently everywhere.  Pass ``dtype`` to charge a specific
    compute dtype's wire width instead of ``dtype_bytes``, or
    ``transport_dtype`` to price an explicit wire format (``"float16"``
    charges 2 bytes/element regardless of the compute dtype).
    """
    if transport_dtype is not None:
        dtype_bytes = transport_dtype_bytes(transport_dtype)
    elif dtype is not None:
        dtype_bytes = wire_dtype_bytes(dtype)
    return float(num_elements) * float(dtype_bytes)


def ps_sync_seconds(
    model_bytes: float,
    num_workers: int,
    network: NetworkModel,
    contention: float = 0.03,
) -> float:
    """Push + pull through a central parameter server.

    Each worker pushes its full update and pulls the averaged state over its
    own NIC (the paper's testbed packs 4 GPUs per host, so transfers largely
    proceed in parallel); the shared parameter-server side adds a contention
    penalty that grows with the number of workers.  This reproduces the
    Fig. 1a behaviour: throughput keeps improving with cluster size but far
    below linearly, and the biggest model (VGG11) scales worst.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if model_bytes < 0:
        raise ValueError(f"model_bytes must be non-negative, got {model_bytes}")
    if contention < 0:
        raise ValueError(f"contention must be non-negative, got {contention}")
    if num_workers == 1:
        return 0.0
    per_worker = network.transfer_seconds(2.0 * model_bytes, num_messages=2)
    return per_worker * (1.0 + contention * (num_workers - 1))


def ring_allreduce_seconds(model_bytes: float, num_workers: int, network: NetworkModel) -> float:
    """Bandwidth-optimal ring all-reduce."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if model_bytes < 0:
        raise ValueError(f"model_bytes must be non-negative, got {model_bytes}")
    if num_workers == 1:
        return 0.0
    n = num_workers
    payload = 2.0 * (n - 1) / n * model_bytes
    steps = 2 * (n - 1)
    return network.transfer_seconds(payload, num_messages=steps)


def tree_allreduce_seconds(model_bytes: float, num_workers: int, network: NetworkModel) -> float:
    """Binary-tree reduce + broadcast."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if model_bytes < 0:
        raise ValueError(f"model_bytes must be non-negative, got {model_bytes}")
    if num_workers == 1:
        return 0.0
    depth = math.ceil(math.log2(num_workers))
    return network.transfer_seconds(2.0 * depth * model_bytes, num_messages=2 * depth)


def allgather_bits_seconds(num_workers: int, network: NetworkModel) -> float:
    """The SelSync flags all-gather: (N-1) bits per worker, latency dominated.

    Modelled as one gather + one broadcast of a byte-sized payload, so the
    cost is a couple of message latencies — the 2-4 ms the paper measures —
    independent of model size.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if num_workers == 1:
        return 0.0
    payload_bytes = max((num_workers - 1) / 8.0, 1.0) * num_workers
    return network.transfer_seconds(payload_bytes, num_messages=2)


@dataclass
class CommunicationCostModel:
    """Bundles a network model, topology and transport dtype into per-round costs.

    ``transport_dtype`` selects the wire format for *model payloads*
    (``None`` means the canonical float32 wire): ``"float16"`` halves every
    synchronization transfer, ``"float64"`` doubles it.  The flags
    all-gather (status bits) and raw point-to-point payloads are priced
    verbatim — they are not tensor payloads.
    """

    network: NetworkModel = NetworkModel()
    topology: str = "ps"
    transport_dtype: Optional[str] = None

    _TOPOLOGIES = ("ps", "ring", "tree")

    def __post_init__(self) -> None:
        if self.topology not in self._TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from {self._TOPOLOGIES}"
            )
        # Raises on unknown transport dtypes; the scale is fixed per model.
        self._wire_scale = transport_scale(self.transport_dtype)

    @property
    def wire_scale(self) -> float:
        """Payload scale of the configured transport dtype (float32 = 1.0)."""
        return self._wire_scale

    def sync_seconds(
        self, model_bytes: float, num_workers: int, scale_transport: bool = True
    ) -> float:
        """Full-model aggregation round (push + pull / all-reduce).

        ``scale_transport=False`` skips the transport-dtype scale: callers
        whose byte count already reflects the true wire format (the
        compression layer prices its own payloads, e.g. FP16's 2
        bytes/element) must not be discounted a second time.
        """
        if scale_transport:
            model_bytes = model_bytes * self._wire_scale
        if self.topology == "ps":
            return ps_sync_seconds(model_bytes, num_workers, self.network)
        if self.topology == "ring":
            return ring_allreduce_seconds(model_bytes, num_workers, self.network)
        return tree_allreduce_seconds(model_bytes, num_workers, self.network)

    def flags_seconds(self, num_workers: int) -> float:
        """SelSync's per-step synchronization-status all-gather."""
        return allgather_bits_seconds(num_workers, self.network)

    def p2p_seconds(self, num_bytes: float) -> float:
        """One point-to-point transfer (used by data injection and SSP pushes)."""
        return self.network.transfer_seconds(num_bytes, num_messages=1)

    def ssp_push_pull_seconds(self, model_bytes: float) -> float:
        """Asynchronous, non-blocking push/pull of one worker's update to the PS.

        Only the single worker's transfer matters (no barrier), and in
        practice most of it overlaps with the next step's compute; the
        non-overlapped fraction is charged here.
        """
        full = self.network.transfer_seconds(
            2.0 * model_bytes * self._wire_scale, num_messages=2
        )
        return 0.25 * full
