"""In-process collective-communication backend.

Implements the semantics of the MPI-style collectives the paper's algorithm
relies on (all-gather of synchronization flags, all-reduce of updates,
broadcast of the initial model, point-to-point sends for data injection)
over plain NumPy arrays held by the lockstep simulator.  Every call records
the bytes that *would* have crossed the wire, which the cost models turn
into simulated seconds and the benchmarks report as communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.dtypes import WIRE_DTYPE_BYTES, transport_dtype_bytes
from repro.utils.flatten import flatten_arrays, unflatten_vector


def _as_float_array(value: np.ndarray) -> np.ndarray:
    """Keep float arrays in their compute dtype; promote anything else."""
    value = np.asarray(value)
    if not np.issubdtype(value.dtype, np.floating):
        return value.astype(np.float64)
    return value


@dataclass
class CommunicationRecord:
    """Accumulated communication accounting for one backend."""

    total_bytes: float = 0.0
    calls: Dict[str, int] = field(default_factory=dict)
    bytes_by_op: Dict[str, float] = field(default_factory=dict)

    def record(self, op: str, num_bytes: float) -> None:
        self.total_bytes += num_bytes
        self.calls[op] = self.calls.get(op, 0) + 1
        self.bytes_by_op[op] = self.bytes_by_op.get(op, 0.0) + num_bytes


class InProcessBackend:
    """Collective operations across ``world_size`` simulated ranks.

    ``transport_dtype`` overrides the per-element width used for byte
    accounting (``None`` keeps the canonical float32 wire); the arrays
    themselves are never cast — only the recorded wire volume changes.
    """

    #: bytes per element assumed for transport accounting (float32 on the wire)
    DTYPE_BYTES = WIRE_DTYPE_BYTES

    def __init__(self, world_size: int, transport_dtype: Optional[str] = None) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = int(world_size)
        self.transport_dtype = transport_dtype
        # None resolves to the canonical float32 wire (== DTYPE_BYTES).
        self.dtype_bytes = transport_dtype_bytes(transport_dtype)
        self.record = CommunicationRecord()
        self._mailboxes: Dict[int, List[Tuple[int, object]]] = {
            rank: [] for rank in range(world_size)
        }

    # ------------------------------------------------------------------ #
    # collectives over flat arrays
    # ------------------------------------------------------------------ #
    def _check_inputs(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(per_rank) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank arrays, got {len(per_rank)}"
            )
        arrays = [_as_float_array(a) for a in per_rank]
        shapes = {a.shape for a in arrays}
        if len(shapes) > 1:
            raise ValueError(f"rank arrays have mismatched shapes: {shapes}")
        return arrays

    def allreduce(
        self, per_rank: Sequence[np.ndarray], op: str = "mean"
    ) -> List[np.ndarray]:
        """Reduce across ranks and return the (identical) result for each rank."""
        arrays = self._check_inputs(per_rank)
        stacked = np.stack(arrays)
        if op == "mean":
            reduced = stacked.mean(axis=0)
        elif op == "sum":
            reduced = stacked.sum(axis=0)
        elif op == "max":
            reduced = stacked.max(axis=0)
        else:
            raise ValueError(f"unsupported allreduce op {op!r}")
        per_element = arrays[0].size * self.dtype_bytes
        # Ring all-reduce moves ~2x the payload per rank.
        self.record.record("allreduce", 2.0 * per_element * self.world_size)
        return [reduced.copy() for _ in range(self.world_size)]

    def allgather(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Every rank receives the concatenation of all ranks' arrays."""
        arrays = self._check_inputs(per_rank)
        gathered = np.stack(arrays)
        payload = gathered.size * self.dtype_bytes
        self.record.record("allgather", float(payload) * self.world_size)
        return [gathered.copy() for _ in range(self.world_size)]

    def allgather_bits(self, per_rank_flags: Sequence[int]) -> np.ndarray:
        """The SelSync flags exchange: one status bit per worker (Alg. 1, line 12)."""
        if len(per_rank_flags) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} flags, got {len(per_rank_flags)}"
            )
        flags = np.asarray([1 if f else 0 for f in per_rank_flags], dtype=np.int8)
        # (N - 1) bits received per worker.
        self.record.record("allgather_bits", self.world_size * (self.world_size - 1) / 8.0)
        return flags

    def broadcast(self, value: np.ndarray, root: int = 0) -> List[np.ndarray]:
        """Send ``value`` from ``root`` to every rank."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"root {root} out of range for world size {self.world_size}")
        value = _as_float_array(value)
        self.record.record(
            "broadcast", float(value.size * self.dtype_bytes * (self.world_size - 1))
        )
        return [value.copy() for _ in range(self.world_size)]

    def reduce(self, per_rank: Sequence[np.ndarray], root: int = 0, op: str = "mean") -> np.ndarray:
        """Reduce to a single root rank."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"root {root} out of range for world size {self.world_size}")
        arrays = self._check_inputs(per_rank)
        stacked = np.stack(arrays)
        reduced = stacked.mean(axis=0) if op == "mean" else stacked.sum(axis=0)
        self.record.record(
            "reduce", float(arrays[0].size * self.dtype_bytes * (self.world_size - 1))
        )
        return reduced

    def gather(self, per_rank: Sequence[np.ndarray], root: int = 0) -> List[np.ndarray]:
        if not 0 <= root < self.world_size:
            raise ValueError(f"root {root} out of range for world size {self.world_size}")
        arrays = self._check_inputs(per_rank)
        self.record.record(
            "gather", float(arrays[0].size * self.dtype_bytes * (self.world_size - 1))
        )
        return [a.copy() for a in arrays]

    def allreduce_matrix(self, matrix: np.ndarray, op: str = "mean") -> np.ndarray:
        """All-reduce the rows of a ``(K, D)`` worker matrix in one pass.

        The engine-level form of :meth:`allreduce_tree`: row ``i`` is one
        participating rank's flat buffer, so the reduction is one fused NumPy
        call and no per-rank copies are made.  ``K`` is normally the full
        world size, but an elastic cluster may reduce over any non-empty
        subset of ranks (crashed workers drop their rows); byte accounting
        always reflects the actual participant count.
        """
        matrix = _as_float_array(matrix)
        if matrix.ndim != 2 or not 1 <= matrix.shape[0] <= self.world_size:
            raise ValueError(
                f"expected a (K <= {self.world_size}, D) matrix with K >= 1, "
                f"got shape {matrix.shape}"
            )
        if op == "mean":
            reduced = matrix.mean(axis=0)
        elif op == "sum":
            reduced = matrix.sum(axis=0)
        elif op == "max":
            reduced = matrix.max(axis=0)
        else:
            raise ValueError(f"unsupported allreduce op {op!r}")
        per_element = matrix.shape[1] * self.dtype_bytes
        # Ring all-reduce moves ~2x the payload per participating rank.
        self.record.record("allreduce", 2.0 * per_element * matrix.shape[0])
        return reduced

    # ------------------------------------------------------------------ #
    # collectives over parameter trees (named state dicts)
    # ------------------------------------------------------------------ #
    def allreduce_tree(
        self, per_rank_trees: Sequence[Mapping[str, np.ndarray]], op: str = "mean"
    ) -> List[Dict[str, np.ndarray]]:
        """All-reduce each named array across ranks (used for GA and PA)."""
        if len(per_rank_trees) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} trees, got {len(per_rank_trees)}"
            )
        flats = []
        spec = None
        for tree in per_rank_trees:
            flat, this_spec = flatten_arrays(tree)
            if spec is None:
                spec = this_spec
            elif this_spec != spec:
                raise ValueError("parameter trees have mismatched structure across ranks")
            flats.append(flat)
        reduced = self.allreduce(flats, op=op)
        return [unflatten_vector(vec, spec) for vec in reduced]

    # ------------------------------------------------------------------ #
    # point-to-point (used by data injection)
    # ------------------------------------------------------------------ #
    def send(self, src: int, dst: int, payload: object, num_bytes: float = 0.0) -> None:
        if not 0 <= src < self.world_size or not 0 <= dst < self.world_size:
            raise ValueError(f"invalid ranks src={src}, dst={dst}")
        self._mailboxes[dst].append((src, payload))
        self.record.record("p2p", float(num_bytes))

    def recv(self, dst: int, src: Optional[int] = None) -> Tuple[int, object]:
        """Pop the oldest message for ``dst`` (optionally filtered by sender)."""
        box = self._mailboxes[dst]
        if not box:
            raise LookupError(f"no pending messages for rank {dst}")
        if src is None:
            return box.pop(0)
        for i, (sender, payload) in enumerate(box):
            if sender == src:
                return box.pop(i)
        raise LookupError(f"no pending message from rank {src} for rank {dst}")

    def pending(self, dst: int) -> int:
        return len(self._mailboxes[dst])
