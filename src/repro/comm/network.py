"""Network model: translates bytes on the wire into seconds.

Defaults match the paper's testbed: workers communicate over a 5 Gbps NIC
with sub-millisecond intra-cluster latency.  The model is deliberately simple
(latency + size/bandwidth per message) because the paper's speedup arithmetic
only depends on the relative cost of synchronizing a full model versus a few
bits of control traffic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point link model.

    Parameters
    ----------
    bandwidth_gbps:
        Link bandwidth in gigabits per second (paper: 5 Gbps).
    latency_s:
        One-way message latency in seconds.
    per_message_overhead_s:
        Fixed software overhead per message (serialization, RPC dispatch).
    """

    bandwidth_gbps: float = 5.0
    latency_s: float = 0.5e-3
    per_message_overhead_s: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.latency_s < 0 or self.per_message_overhead_s < 0:
            raise ValueError("latency and overhead must be non-negative")

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    def transfer_seconds(self, num_bytes: float, num_messages: int = 1) -> float:
        """Time to move ``num_bytes`` split across ``num_messages`` messages."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_messages < 1:
            raise ValueError(f"num_messages must be >= 1, got {num_messages}")
        return (
            num_bytes / self.bytes_per_second
            + num_messages * (self.latency_s + self.per_message_overhead_s)
        )
