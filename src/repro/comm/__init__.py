"""Simulated communication substrate.

The original system runs over PyTorch RPC between docker containers on a
5 Gbps NIC.  Here communication is simulated in-process: the
:class:`InProcessBackend` implements the collective semantics (all-reduce,
all-gather, broadcast, reduce, point-to-point) over NumPy arrays, the
:class:`ParameterServer` implements push/pull parameter and gradient
aggregation, and the cost models translate message volumes into simulated
wall-clock seconds for parameter-server, ring-allreduce and tree topologies.
"""

from repro.comm.network import NetworkModel
from repro.comm.cost_model import (
    CommunicationCostModel,
    ps_sync_seconds,
    ring_allreduce_seconds,
    tree_allreduce_seconds,
    allgather_bits_seconds,
)
from repro.comm.backend import InProcessBackend, CommunicationRecord
from repro.comm.parameter_server import ParameterServer

__all__ = [
    "NetworkModel",
    "CommunicationCostModel",
    "ps_sync_seconds",
    "ring_allreduce_seconds",
    "tree_allreduce_seconds",
    "allgather_bits_seconds",
    "InProcessBackend",
    "CommunicationRecord",
    "ParameterServer",
]
