"""Learning-rate schedules.

The paper's recipes use multi-step decay by epoch (ResNet101: x0.1 after
epochs 110 and 150; VGG11: after 50 and 75), a fixed LR (AlexNet) and an
interval decay every 2000 iterations by 0.8 (Transformer).  All of those are
expressible with the classes below; schedules are queried per *iteration* and
convert epochs to iterations through ``steps_per_epoch``.
"""

from __future__ import annotations

import math
from typing import Sequence


class LRSchedule:
    """Base class: maps a global step index to a learning rate."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = float(base_lr)

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        return self.lr_at(step)


class ConstantLR(LRSchedule):
    """Fixed learning rate (AlexNet workload)."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class StepDecay(LRSchedule):
    """Multiply the LR by ``gamma`` every ``step_size`` iterations."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(base_lr)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class MultiStepDecay(LRSchedule):
    """Multiply the LR by ``gamma`` at each milestone step.

    Milestones given in epochs can be converted with ``steps_per_epoch``.
    """

    def __init__(
        self,
        base_lr: float,
        milestones: Sequence[int],
        gamma: float = 0.1,
        steps_per_epoch: int = 1,
    ) -> None:
        super().__init__(base_lr)
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        if steps_per_epoch <= 0:
            raise ValueError(f"steps_per_epoch must be positive, got {steps_per_epoch}")
        converted = sorted(int(m) * int(steps_per_epoch) for m in milestones)
        if any(m < 0 for m in converted):
            raise ValueError("milestones must be non-negative")
        self.milestones = converted
        self.gamma = float(gamma)

    def lr_at(self, step: int) -> float:
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * self.gamma**passed


class IntervalDecay(LRSchedule):
    """Decay by ``gamma`` every ``interval`` steps (Transformer recipe: 0.8 / 2000)."""

    def __init__(self, base_lr: float, interval: int, gamma: float) -> None:
        super().__init__(base_lr)
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.interval = int(interval)
        self.gamma = float(gamma)

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.interval)


class ExponentialDecay(LRSchedule):
    """Smooth exponential decay ``lr = base * decay_rate ** (step / decay_steps)``."""

    def __init__(self, base_lr: float, decay_rate: float, decay_steps: int) -> None:
        super().__init__(base_lr)
        if not 0 < decay_rate <= 1:
            raise ValueError(f"decay_rate must be in (0, 1], got {decay_rate}")
        if decay_steps <= 0:
            raise ValueError(f"decay_steps must be positive, got {decay_steps}")
        self.decay_rate = float(decay_rate)
        self.decay_steps = int(decay_steps)

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.decay_rate ** (step / self.decay_steps)


class WarmupCosine(LRSchedule):
    """Linear warmup followed by cosine decay to ``min_lr`` over ``total_steps``."""

    def __init__(
        self, base_lr: float, warmup_steps: int, total_steps: int, min_lr: float = 0.0
    ) -> None:
        super().__init__(base_lr)
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be non-negative, got {warmup_steps}")
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        if min_lr < 0:
            raise ValueError(f"min_lr must be non-negative, got {min_lr}")
        self.warmup_steps = int(warmup_steps)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def lr_at(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
