"""Stochastic gradient descent with momentum, Nesterov and weight decay."""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.nn.module import Module, Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """SGD update  ``w <- w - lr * (m_t)``  with optional momentum buffers.

    Matches the paper's ResNet101 / VGG11 / Transformer training recipes
    (momentum 0.9 and per-model weight decay).
    """

    def __init__(
        self,
        module: Module,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(module, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity: Dict[str, np.ndarray] = {
            name: np.zeros_like(p.data) for name, p in self._params.items()
        }

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            buf = self._velocity[name]
            buf *= self.momentum
            buf += grad
            if self.nesterov:
                step_dir = grad + self.momentum * buf
            else:
                step_dir = buf
        else:
            step_dir = grad
        return self.lr * step_dir

    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {"velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state: Mapping[str, Mapping[str, np.ndarray]]) -> None:
        velocity = state.get("velocity", {})
        for name, value in velocity.items():
            if name in self._velocity:
                self._velocity[name][...] = value
