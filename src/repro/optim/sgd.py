"""Stochastic gradient descent with momentum, Nesterov and weight decay."""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """SGD update  ``w <- w - lr * (m_t)``  with optional momentum buffers.

    Matches the paper's ResNet101 / VGG11 / Transformer training recipes
    (momentum 0.9 and per-model weight decay).  The velocity buffer is one
    flat vector aliased by named views, so a step is 2-3 fused NumPy
    operations regardless of how many tensors the model has.
    """

    def __init__(
        self,
        module: Module,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(module, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity_vector = np.zeros(self._spec.total_size, dtype=self._spec.dtype)
        # Named views into the flat velocity, for state exchange and tests.
        self._velocity: Dict[str, np.ndarray] = dict(
            self._spec.views(self._velocity_vector)
        )

    def rebind_velocity(self, vector: np.ndarray) -> None:
        """Move the velocity buffer onto donated storage (a fused-update row).

        The current contents are preserved; the named views are regenerated,
        so per-parameter state exchange keeps working after the move.
        """
        vector[:] = self._velocity_vector
        self._velocity_vector = vector
        self._velocity = dict(self._spec.views(vector))

    def _update_flat(self, grad_vector: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            grad_vector = grad_vector + self.weight_decay * self._param_vector
        if self.momentum:
            buf = self._velocity_vector
            buf *= self.momentum
            buf += grad_vector
            if self.nesterov:
                step_dir = grad_vector + self.momentum * buf
            else:
                step_dir = buf
        else:
            step_dir = grad_vector
        return self.lr * step_dir

    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {"velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state: Mapping[str, Mapping[str, np.ndarray]]) -> None:
        velocity = state.get("velocity", {})
        for name, value in velocity.items():
            if name in self._velocity:
                self._velocity[name][...] = value
