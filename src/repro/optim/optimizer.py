"""Optimizer base class operating on flat parameter buffers.

Constructing an optimizer flattens its module (see
:meth:`repro.nn.module.Module.flatten_parameters`), so one update is a
handful of fused NumPy operations over the whole ``(D,)`` parameter vector
instead of a Python loop over named tensors.  The named-dict ``step(grads)``
signature is preserved: a mapping is flattened once through the module's
layout before the fused update.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.nn.module import Module


class Optimizer:
    """Base class: holds the flat parameter buffer, learning rate and state.

    Subclasses implement :meth:`_update_flat`, which transforms the flat
    gradient vector into a flat parameter delta.  The split lets the SelSync
    / local-SGD trainers apply the *same* optimizer math whether the gradient
    came from a local backward pass or from an aggregated (averaged) gradient
    pushed by the parameter server — the distinction the paper draws between
    gradient aggregation and parameter aggregation (§III-C).
    """

    def __init__(self, module: Module, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.module = module
        module.flatten_parameters()
        self._params = module.named_parameters()
        self._spec = module.flat_spec
        # Mask of trainable entries; None when every parameter trains (the
        # common case), so the fused update touches the whole vector.
        frozen = [n for n, p in self._params.items() if not p.requires_grad]
        if frozen:
            mask = np.zeros(self._spec.total_size, dtype=bool)
            for name, param in self._params.items():
                if param.requires_grad:
                    mask[self._spec.slice_of(name)] = True
            self._trainable_mask: Optional[np.ndarray] = mask
        else:
            self._trainable_mask = None
        # Cache the FlatBuffer objects, not their vectors: a later re-bind
        # of the module's storage (WorkerMatrix adoption) swaps the vector
        # *inside* these same buffer objects, so reads stay current.
        self._param_buffer = module._flat_params
        self._grad_buffer = module._flat_grads
        self.lr = float(lr)
        self._step_count = 0

    @property
    def _param_vector(self) -> np.ndarray:
        return self._param_buffer.vector

    @property
    def _grad_vector(self) -> np.ndarray:
        return self._grad_buffer.vector

    @property
    def step_count(self) -> int:
        return self._step_count

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        self.module.zero_grad()

    def _coerce_grad_vector(
        self, grads: Optional[Union[Mapping[str, np.ndarray], np.ndarray]]
    ) -> np.ndarray:
        """Resolve the gradient source for one step as a flat ``(D,)`` vector."""
        if grads is None:
            return self._grad_vector
        if isinstance(grads, np.ndarray):
            grads = np.asarray(grads, dtype=self._spec.dtype).ravel()
            if grads.size != self._spec.total_size:
                raise ValueError(
                    f"flat gradient has length {grads.size}, "
                    f"expected {self._spec.total_size}"
                )
            return grads
        return self._spec.flatten_tree(grads)

    def step(
        self, grads: Optional[Union[Mapping[str, np.ndarray], np.ndarray]] = None
    ) -> None:
        """Apply one update.

        ``grads`` may be ``None`` (use the gradients accumulated on the
        module), a named mapping, or an already-flat ``(D,)`` vector (the
        zero-copy hot path used when applying averaged gradients that came
        back from the parameter server).
        """
        grad_vector = self._coerce_grad_vector(grads)
        delta = self._update_flat(grad_vector)
        if self._trainable_mask is None:
            self._param_buffer.vector[...] -= delta
        else:
            self._param_buffer.vector[...] -= np.where(self._trainable_mask, delta, 0.0)
        self._step_count += 1

    def _update_flat(self, grad_vector: np.ndarray) -> np.ndarray:
        """Map the flat gradient to the flat parameter delta (fused math)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # optimizer state exchange (needed when replicas are reset to the PS state)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {}

    def load_state_dict(self, state: Mapping[str, Mapping[str, np.ndarray]]) -> None:
        pass
