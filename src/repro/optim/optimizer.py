"""Optimizer base class operating on :class:`repro.nn.Module` parameters."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.nn.module import Module, Parameter


class Optimizer:
    """Base class: holds the parameter list, learning rate, and state dicts.

    Subclasses implement :meth:`_update` which transforms a gradient into a
    parameter delta.  The split lets the SelSync / local-SGD trainers apply
    the *same* optimizer math whether the gradient came from a local backward
    pass or from an aggregated (averaged) gradient pushed by the parameter
    server — the distinction the paper draws between gradient aggregation and
    parameter aggregation (§III-C).
    """

    def __init__(self, module: Module, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.module = module
        self._params = module.named_parameters()
        self.lr = float(lr)
        self._step_count = 0

    @property
    def step_count(self) -> int:
        return self._step_count

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        self.module.zero_grad()

    def step(self, grads: Optional[Mapping[str, np.ndarray]] = None) -> None:
        """Apply one update.

        If ``grads`` is given, those gradients are used instead of the ones
        accumulated on the module (used when applying averaged gradients that
        came back from the parameter server).
        """
        for name, param in self._params.items():
            if not param.requires_grad:
                continue
            grad = np.asarray(grads[name]) if grads is not None else param.grad
            delta = self._update(name, param, grad)
            param.data -= delta
        self._step_count += 1

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # optimizer state exchange (needed when replicas are reset to the PS state)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {}

    def load_state_dict(self, state: Mapping[str, Mapping[str, np.ndarray]]) -> None:
        pass
