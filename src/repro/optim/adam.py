"""Adam optimizer (Kingma & Ba 2014), used for the AlexNet workload."""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments and optional weight decay.

    Both moment buffers are flat vectors aliased by named views, so one step
    is a constant number of fused NumPy operations over the whole model.
    """

    def __init__(
        self,
        module: Module,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(module, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m_vector = np.zeros(self._spec.total_size, dtype=self._spec.dtype)
        self._v_vector = np.zeros(self._spec.total_size, dtype=self._spec.dtype)
        # Named views into the flat moments, for state exchange and tests.
        self._m: Dict[str, np.ndarray] = dict(self._spec.views(self._m_vector))
        self._v: Dict[str, np.ndarray] = dict(self._spec.views(self._v_vector))
        self._t = 0

    def rebind_moments(self, m_vector: np.ndarray, v_vector: np.ndarray) -> None:
        """Move both moment buffers onto donated storage (fused-update rows).

        The current contents are preserved; the named views are regenerated,
        so per-parameter state exchange keeps working after the move.
        """
        m_vector[:] = self._m_vector
        v_vector[:] = self._v_vector
        self._m_vector = m_vector
        self._v_vector = v_vector
        self._m = dict(self._spec.views(m_vector))
        self._v = dict(self._spec.views(v_vector))

    def _update_flat(self, grad_vector: np.ndarray) -> np.ndarray:
        # Advance the shared timestep once per optimizer step (not per
        # parameter) so bias correction is consistent across the model.
        self._t += 1
        if self.weight_decay:
            grad_vector = grad_vector + self.weight_decay * self._param_vector
        m = self._m_vector
        v = self._v_vector
        m *= self.beta1
        m += (1.0 - self.beta1) * grad_vector
        v *= self.beta2
        v += (1.0 - self.beta2) * grad_vector**2
        m_hat = m / (1.0 - self.beta1**self._t)
        v_hat = v / (1.0 - self.beta2**self._t)
        return self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {
            "m": {k: v.copy() for k, v in self._m.items()},
            "v": {k: v.copy() for k, v in self._v.items()},
            "t": {"value": np.array([self._t])},
        }

    def load_state_dict(self, state: Mapping[str, Mapping[str, np.ndarray]]) -> None:
        for name, value in state.get("m", {}).items():
            if name in self._m:
                self._m[name][...] = value
        for name, value in state.get("v", {}).items():
            if name in self._v:
                self._v[name][...] = value
        if "t" in state:
            self._t = int(np.asarray(state["t"]["value"]).ravel()[0])
