"""Adam optimizer (Kingma & Ba 2014), used for the AlexNet workload."""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.nn.module import Module, Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments and optional weight decay."""

    def __init__(
        self,
        module: Module,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(module, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[str, np.ndarray] = {
            name: np.zeros_like(p.data) for name, p in self._params.items()
        }
        self._v: Dict[str, np.ndarray] = {
            name: np.zeros_like(p.data) for name, p in self._params.items()
        }
        self._t = 0

    def step(self, grads=None) -> None:
        # Advance the shared timestep once per optimizer step (not per
        # parameter) so bias correction is consistent across the model.
        self._t += 1
        super().step(grads)

    def _update(self, name: str, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        m = self._m[name]
        v = self._v[name]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        m_hat = m / (1.0 - self.beta1**self._t)
        v_hat = v / (1.0 - self.beta2**self._t)
        return self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {
            "m": {k: v.copy() for k, v in self._m.items()},
            "v": {k: v.copy() for k, v in self._v.items()},
            "t": {"value": np.array([self._t])},
        }

    def load_state_dict(self, state: Mapping[str, Mapping[str, np.ndarray]]) -> None:
        for name, value in state.get("m", {}).items():
            if name in self._m:
                self._m[name][...] = value
        for name, value in state.get("v", {}).items():
            if name in self._v:
                self._v[name][...] = value
        if "t" in state:
            self._t = int(np.asarray(state["t"]["value"]).ravel()[0])
