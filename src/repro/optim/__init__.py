"""Optimizers and learning-rate schedules.

Matches the hyperparameter setups in §IV-A of the paper: SGD with momentum
and weight decay (ResNet/VGG/Transformer workloads) and Adam with a fixed
learning rate (AlexNet workload), plus the step-decay schedules the paper
uses ("decay lr by 10x after epoch 110 and 150", etc.).
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.schedules import (
    LRSchedule,
    ConstantLR,
    StepDecay,
    MultiStepDecay,
    ExponentialDecay,
    WarmupCosine,
    IntervalDecay,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LRSchedule",
    "ConstantLR",
    "StepDecay",
    "MultiStepDecay",
    "ExponentialDecay",
    "WarmupCosine",
    "IntervalDecay",
]
