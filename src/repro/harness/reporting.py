"""Plain-text report formatting for tables and figure series.

The benchmarks print the same rows/series the paper's tables and figures
contain; these helpers keep that formatting consistent and are also used to
assemble EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Sequence

from repro.algorithms.base import TrainingResult


def _format_cell(value: Any, precision: int = 4) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render an aligned plain-text table."""
    headers = [str(h) for h in headers]
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    series: Mapping[Any, Any], x_label: str = "x", y_label: str = "y", title: str = ""
) -> str:
    """Render a single (x -> y) series as a two-column table."""
    return format_table([x_label, y_label], [(k, v) for k, v in series.items()], title=title)


def results_to_rows(
    results: Mapping[str, TrainingResult],
    baseline_key: str = "bsp",
) -> List[List[Any]]:
    """Convert labelled training results into Table-I style rows.

    Columns: method, iterations, LSSR, final metric, convergence difference
    vs the baseline, whether it outperforms the baseline, overall speedup.
    """
    if baseline_key not in results:
        raise KeyError(f"baseline {baseline_key!r} missing from results")
    baseline = results[baseline_key]
    rows: List[List[Any]] = []
    for label, result in results.items():
        is_baseline = label == baseline_key
        conv_diff = 0.0 if is_baseline else result.convergence_difference(baseline)
        outperforms = "N/A" if is_baseline else str(conv_diff >= 0)
        lssr_cell: Any
        if result.algorithm.startswith("ssp"):
            lssr_cell = "-"
        else:
            lssr_cell = round(result.lssr, 3)
        speedup = 1.0 if is_baseline else result.speedup_over(baseline)
        speedup_cell = f"{speedup:.2f}x" if (is_baseline or conv_diff >= 0) else "-"
        rows.append(
            [
                result.algorithm,
                result.iterations,
                lssr_cell,
                round(result.best_metric, 4),
                round(conv_diff, 4),
                outperforms,
                speedup_cell,
            ]
        )
    return rows


def table1_headers() -> List[str]:
    """Column names of Table I."""
    return [
        "Method",
        "Iterations",
        "LSSR",
        "Acc./PPL",
        "Conv. Diff.",
        "Outperform BSP?",
        "Overall speedup",
    ]


def trend_table(metric: str, points: Sequence[Mapping[str, Any]], title: str = "") -> str:
    """Render one stored metric trend (oldest first) as an aligned table.

    ``points`` are :meth:`repro.results.store.ResultsStore.trend` entries;
    ``repro scenario history`` renders one of these per metric so the CLI
    shows exactly the series :func:`repro.results.history_payload` returns.
    """
    import datetime

    rows = []
    for i, point in enumerate(points):
        started = point.get("started_at")
        when = (
            datetime.datetime.fromtimestamp(float(started)).strftime("%Y-%m-%d %H:%M")
            if started is not None
            else "-"
        )
        rows.append(
            [
                i + 1,
                when,
                str(point.get("git_sha", "-"))[:12],
                str(point.get("config_hash", "-"))[:12],
                point.get("value"),
            ]
        )
    return format_table(
        ["run", "started", "git_sha", "config", metric],
        rows,
        title=title or f"history: {metric}",
    )


def summarize_history(result: TrainingResult, max_points: int = 12) -> str:
    """Compact rendering of a run's evaluation history (convergence curve)."""
    points = result.history
    if len(points) > max_points:
        stride = max(len(points) // max_points, 1)
        points = points[::stride]
    rows = [
        (p.step, round(p.epoch, 2), round(p.sim_time, 1), round(p.metric, 4))
        for p in points
    ]
    return format_table(["step", "epoch", "sim_time_s", "metric"], rows,
                        title=f"history: {result.algorithm}")
