"""Workload presets and the experiment runner.

A :class:`WorkloadPreset` captures one row of §IV-A's "DNNs and
hyperparameters": which model analog, which dataset analog, optimizer,
learning-rate schedule, batch size and evaluation metric.  Presets are scaled
so a 16-worker simulated run finishes in seconds-to-minutes on a CPU while
keeping the paper's structural distinctions (skip connections vs plain
stacks, classification vs language modelling, SGD vs Adam, decayed vs fixed
learning rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro import telemetry
from repro.algorithms.base import BaseTrainer, TrainingResult
from repro.algorithms.bsp import BSPTrainer
from repro.algorithms.fedavg import FedAvgTrainer
from repro.algorithms.localsgd import LocalSGDTrainer
from repro.algorithms.ssp import SSPTrainer
from repro.cluster.cluster import ClusterConfig, SimulatedCluster
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.data.datasets import DatasetBundle, build_dataset
from repro.data.injection import adjusted_batch_size
from repro.data.partition import DefaultPartitioner, Partitioner, SelSyncPartitioner
from repro.nn.models import MLP, AlexNetLike, ResNetLike, TransformerLM, VGGLike
from repro.nn.module import Module
from repro.optim.adam import Adam
from repro.optim.sgd import SGD
from repro.optim.optimizer import Optimizer
from repro.optim.schedules import ConstantLR, IntervalDecay, LRSchedule, MultiStepDecay
from repro.compression.base import Compressor
from repro.compression.trainer import CompressedBSPTrainer


@dataclass
class WorkloadPreset:
    """One of the paper's four training workloads, scaled for simulation."""

    name: str
    dataset_name: str
    task: str
    model_factory: Callable[[np.random.Generator], Module]
    optimizer_factory: Callable[[Module], Optimizer]
    lr_schedule_factory: Callable[[int], LRSchedule]
    batch_size: int
    top_k: Optional[int] = None
    workload_spec: str = "resnet101"
    dataset_kwargs: Dict = field(default_factory=dict)


def _resnet_preset() -> WorkloadPreset:
    return WorkloadPreset(
        name="resnet101",
        dataset_name="cifar10",
        task="classification",
        model_factory=lambda rng: ResNetLike(
            input_dim=64, num_classes=10, width=96, depth=6, rng=rng
        ),
        optimizer_factory=lambda m: SGD(m, lr=0.05, momentum=0.9, weight_decay=4e-4),
        # Paper: decay by 10x after epochs 110 and 150 (of 165); scaled to the
        # run length as 2/3 and 10/11 of the iteration budget.
        lr_schedule_factory=lambda total: MultiStepDecay(
            0.05, milestones=[int(total * 0.66), int(total * 0.9)], gamma=0.1
        ),
        batch_size=32,
        workload_spec="resnet101",
    )


def _vgg_preset() -> WorkloadPreset:
    return WorkloadPreset(
        name="vgg11",
        dataset_name="cifar100",
        task="classification",
        model_factory=lambda rng: VGGLike(
            input_dim=64, num_classes=100, feature_widths=(128, 128, 96), head_width=192, rng=rng
        ),
        optimizer_factory=lambda m: SGD(m, lr=0.04, momentum=0.9, weight_decay=5e-4),
        lr_schedule_factory=lambda total: MultiStepDecay(
            0.04, milestones=[int(total * 0.55), int(total * 0.8)], gamma=0.1
        ),
        batch_size=32,
        workload_spec="vgg11",
    )


def _alexnet_preset() -> WorkloadPreset:
    return WorkloadPreset(
        name="alexnet",
        dataset_name="imagenet1k",
        task="classification",
        model_factory=lambda rng: AlexNetLike(
            input_dim=96, num_classes=200, hidden_dim=192, dropout=0.1, rng=rng
        ),
        optimizer_factory=lambda m: Adam(m, lr=1e-3),
        lr_schedule_factory=lambda total: ConstantLR(1e-3),
        batch_size=64,
        top_k=5,
        workload_spec="alexnet",
        dataset_kwargs={"num_classes": 200, "input_dim": 96},
    )


def _transformer_preset() -> WorkloadPreset:
    return WorkloadPreset(
        name="transformer",
        dataset_name="wikitext103",
        task="language_modeling",
        model_factory=lambda rng: TransformerLM(
            vocab_size=200, d_model=32, num_heads=2, num_layers=2, dim_feedforward=64,
            dropout=0.0, rng=rng,
        ),
        optimizer_factory=lambda m: SGD(m, lr=0.5, momentum=0.0),
        lr_schedule_factory=lambda total: IntervalDecay(
            0.5, interval=max(total // 10, 1), gamma=0.8
        ),
        batch_size=16,
        workload_spec="transformer",
        dataset_kwargs={"bptt": 16, "vocab_size": 200},
    )


def _deep_mlp_preset() -> WorkloadPreset:
    """Deep-narrow MLP analog for large-N scale sweeps (not a paper workload).

    Per-layer framework overhead grows with depth while the raw matmul work
    stays tiny, so this preset makes N = 64–256 δ-sweeps affordable on a CPU
    — the regime the batched ``(N, D)`` engine exists for.  The cost model
    reuses the ResNet101 spec so simulated times stay paper-scale.
    """
    return WorkloadPreset(
        name="deep_mlp",
        dataset_name="cifar10",
        task="classification",
        model_factory=lambda rng: MLP((32, 48, 48, 48, 48, 10), rng=rng),
        optimizer_factory=lambda m: SGD(m, lr=0.05, momentum=0.9),
        lr_schedule_factory=lambda total: MultiStepDecay(
            0.05, milestones=[int(total * 0.66), int(total * 0.9)], gamma=0.1
        ),
        batch_size=4,
        workload_spec="resnet101",
        dataset_kwargs={"input_dim": 32},
    )


WORKLOAD_PRESETS: Dict[str, Callable[[], WorkloadPreset]] = {
    "resnet101": _resnet_preset,
    "vgg11": _vgg_preset,
    "alexnet": _alexnet_preset,
    "transformer": _transformer_preset,
    "deep_mlp": _deep_mlp_preset,
}


def build_workload(name: str) -> WorkloadPreset:
    """Return the preset for one of the paper's workloads."""
    key = name.lower()
    if key not in WORKLOAD_PRESETS:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOAD_PRESETS)}")
    return WORKLOAD_PRESETS[key]()


def build_cluster(
    preset: WorkloadPreset,
    num_workers: int = 4,
    seed: int = 0,
    partitioner: Optional[Partitioner] = None,
    bundle: Optional[DatasetBundle] = None,
    batch_size: Optional[int] = None,
    topology: str = "ps",
    dtype: str = "float64",
    transport_dtype: Optional[str] = None,
    pool_workers: int = 0,
    pool_start_method: Optional[str] = None,
    eval_max_batches: Optional[int] = 4,
    cluster_factory: Optional[Callable[..., SimulatedCluster]] = None,
    telemetry: Optional[str] = None,
) -> SimulatedCluster:
    """Construct the simulated cluster for a workload preset.

    ``cluster_factory`` substitutes an alternative cluster constructor
    called with the exact :class:`SimulatedCluster` keyword arguments — the
    stacked sweep executor uses this to build
    :class:`~repro.cluster.cluster.StackedSliceCluster` slices.
    ``telemetry`` names a JSONL trace-sink path: span tracing turns on for
    the process and the cluster flushes the file on ``close()``.
    """
    bundle = bundle or build_dataset(preset.dataset_name, seed=seed, **preset.dataset_kwargs)
    config = ClusterConfig(
        num_workers=num_workers,
        batch_size=batch_size or preset.batch_size,
        seed=seed,
        task=preset.task,
        workload=preset.workload_spec,
        topology=topology,
        dtype=dtype,
        transport_dtype=transport_dtype,
        pool_workers=pool_workers,
        pool_start_method=pool_start_method,
        top_k=preset.top_k,
        eval_max_batches=eval_max_batches,
        telemetry=telemetry,
    )
    factory = cluster_factory or SimulatedCluster
    return factory(
        model_factory=preset.model_factory,
        optimizer_factory=preset.optimizer_factory,
        train_dataset=bundle.train,
        test_dataset=bundle.test,
        config=config,
        partitioner=partitioner or SelSyncPartitioner(seed=seed),
        worker_batch_size=batch_size or preset.batch_size,
    )


def make_trainer(
    algorithm: str,
    cluster: SimulatedCluster,
    preset: WorkloadPreset,
    total_iterations: int,
    eval_every: int = 50,
    **kwargs,
) -> BaseTrainer:
    """Instantiate a trainer by name.

    ``algorithm`` is one of ``"bsp"``, ``"selsync"``, ``"fedavg"``, ``"ssp"``,
    ``"local_sgd"`` or ``"compressed_bsp"``; algorithm-specific options are
    passed as keyword arguments (e.g. ``delta=0.3``, ``participation=0.5``,
    ``staleness=100``, ``sync_period=8``, ``compressor=TopKCompressor()``).
    For SelSync every :class:`~repro.core.config.SelSyncConfig` field is
    accepted (``aggregation``, ``statistic``, ``sync_on_first_step``, …), or
    pass a fully built ``config=SelSyncConfig(...)``.
    """
    schedule = preset.lr_schedule_factory(total_iterations)
    key = algorithm.lower()
    if key == "bsp":
        return BSPTrainer(cluster, lr_schedule=schedule, eval_every=eval_every)
    if key == "selsync":
        config = kwargs.pop("config", None)
        if config is None:
            config = SelSyncConfig(
                delta=kwargs.pop("delta", 0.25),
                aggregation=kwargs.pop("aggregation", "param"),
                ewma_window=kwargs.pop("ewma_window", 25),
                statistic=kwargs.pop("statistic", "variance"),
                sync_on_first_step=kwargs.pop("sync_on_first_step", True),
                injection_alpha=kwargs.pop("injection_alpha", None),
                injection_beta=kwargs.pop("injection_beta", None),
            )
        return SelSyncTrainer(
            cluster, config=config, lr_schedule=schedule, eval_every=eval_every, **kwargs
        )
    if key == "fedavg":
        return FedAvgTrainer(
            cluster,
            participation=kwargs.pop("participation", 1.0),
            sync_factor=kwargs.pop("sync_factor", 0.25),
            lr_schedule=schedule,
            eval_every=eval_every,
        )
    if key == "ssp":
        return SSPTrainer(
            cluster,
            staleness=kwargs.pop("staleness", 100),
            lr_schedule=schedule,
            eval_every=eval_every,
        )
    if key in ("local_sgd", "localsgd"):
        return LocalSGDTrainer(
            cluster,
            sync_period=kwargs.pop("sync_period", 10),
            lr_schedule=schedule,
            eval_every=eval_every,
        )
    if key == "compressed_bsp":
        compressor = kwargs.pop("compressor", None)
        if not isinstance(compressor, Compressor):
            raise ValueError("compressed_bsp requires a `compressor` keyword argument")
        return CompressedBSPTrainer(
            cluster, compressor=compressor, lr_schedule=schedule, eval_every=eval_every
        )
    raise KeyError(f"unknown algorithm {algorithm!r}")


@dataclass
class ExperimentResult:
    """A training result annotated with its workload and algorithm labels."""

    workload: str
    algorithm: str
    result: TrainingResult


def run_experiment(
    workload: str,
    algorithm: str,
    num_workers: int = 4,
    iterations: int = 200,
    seed: int = 0,
    eval_every: int = 50,
    partitioner: Optional[Partitioner] = None,
    use_default_partitioning: bool = False,
    convergence=None,
    batch_size: Optional[int] = None,
    dtype: str = "float64",
    transport_dtype: Optional[str] = None,
    pool_workers: int = 0,
    pool_start_method: Optional[str] = None,
    injection: Optional[Dict[str, float]] = None,
    telemetry_file: Optional[str] = None,
    fault_schedule=None,
    fault_seed: Optional[int] = None,
    failure_rate: float = 0.0,
    straggler_fraction: float = 0.0,
    mttr: int = 5,
    fault_slowdown: float = 3.0,
    fault_checkpoint_every: Optional[int] = None,
    **algorithm_kwargs,
) -> ExperimentResult:
    """Build a cluster and run one algorithm on one workload end to end.

    ``dtype`` selects the engine compute dtype (``"float64"`` default,
    ``"float32"`` for the reduced-precision mode); ``transport_dtype``
    prices an alternative wire format on the simulated clock (``"float16"``
    halves every sync transfer without touching the arithmetic).
    ``pool_workers`` shards forward/backward over that many OS processes via
    the shared-memory replica pool (``0`` = in-process;
    ``pool_start_method`` picks fork/spawn).  ``injection`` activates the
    non-IID data-injection path: a dict with keys ``alpha``, ``beta`` (and
    optionally ``delta``) sets the SelSync (α, β, δ) tuple and adjusts the
    per-worker batch size to b′ per Eqn. (3).  ``telemetry_file`` enables
    span tracing with a JSONL sink at that path (see :mod:`repro.telemetry`).

    Fault injection (:mod:`repro.faults`): pass an explicit
    ``fault_schedule`` (a :class:`~repro.faults.schedule.FaultSchedule`),
    or a seeded fault process via ``fault_seed`` / ``failure_rate`` /
    ``straggler_fraction`` / ``mttr`` / ``fault_slowdown``.  Crashed workers
    drop out of the fused compute and every aggregation, rejoin from the
    latest cluster checkpoint (cadence ``fault_checkpoint_every``; the
    step-0 snapshot always exists) and re-sync their parameters through the
    simulated wire.  Supported for lockstep trainers (``bsp``, ``selsync``,
    ``local_sgd``) running in-process (``pool_workers=0``).
    """
    preset = build_workload(workload)
    faults_armed = (
        fault_schedule is not None or failure_rate > 0.0 or straggler_fraction > 0.0
    )
    if faults_armed:
        if algorithm.lower() not in ("bsp", "selsync", "local_sgd", "localsgd"):
            raise ValueError(
                f"fault injection supports lockstep algorithms "
                f"(bsp, selsync, local_sgd), got {algorithm!r}"
            )
        if pool_workers:
            raise ValueError(
                "fault injection and the replica pool are mutually exclusive "
                "(set pool_workers=0): elastic worker masks are in-process only"
            )
        if fault_schedule is None:
            from repro.faults import FaultSchedule

            fault_schedule = FaultSchedule.generate(
                num_workers,
                iterations,
                seed=fault_seed if fault_seed is not None else 0,
                failure_rate=failure_rate,
                straggler_fraction=straggler_fraction,
                mttr=mttr,
                slowdown=fault_slowdown,
            )
    if use_default_partitioning and partitioner is None:
        partitioner = DefaultPartitioner(seed=seed)

    effective_batch = batch_size or preset.batch_size
    if injection is not None:
        alpha = injection["alpha"]
        beta = injection["beta"]
        effective_batch = adjusted_batch_size(
            batch_size or preset.batch_size, alpha, beta, num_workers
        )
        algorithm_kwargs.setdefault("injection_alpha", alpha)
        algorithm_kwargs.setdefault("injection_beta", beta)
        if "delta" in injection:
            algorithm_kwargs.setdefault("delta", injection["delta"])

    if telemetry_file is not None:
        # Turn tracing on before the setup span so cluster construction is
        # itself covered by the trace.
        telemetry.configure(tracing=True, trace_file=telemetry_file)
    with telemetry.span("run.setup"):
        cluster = build_cluster(
            preset,
            num_workers=num_workers,
            seed=seed,
            partitioner=partitioner,
            batch_size=effective_batch,
            dtype=dtype,
            transport_dtype=transport_dtype,
            pool_workers=pool_workers,
            pool_start_method=pool_start_method,
            telemetry=telemetry_file,
        )
        try:
            trainer = make_trainer(
                algorithm, cluster, preset, total_iterations=iterations,
                eval_every=eval_every, **algorithm_kwargs,
            )
        except BaseException:
            cluster.close()
            raise
        controller = None
        if faults_armed:
            from repro.faults import FaultController

            try:
                controller = FaultController(
                    cluster, fault_schedule, checkpoint_every=fault_checkpoint_every
                )
            except BaseException:
                cluster.close()
                raise
            trainer.attach_fault_controller(controller)
    try:
        result = trainer.run(iterations, convergence=convergence)
    finally:
        # Releases the replica pool's processes and shared-memory segments
        # deterministically; a no-op for in-process clusters.
        cluster.close()
    if controller is not None:
        result.extras["fault_crashes"] = float(controller.crash_count)
        result.extras["fault_rejoins"] = float(controller.rejoin_count)
        result.extras["fault_stragglers"] = float(controller.straggler_count)
    return ExperimentResult(workload=preset.name, algorithm=trainer.describe(), result=result)
