"""Parameter sweeps over experiment configurations.

:func:`grid_sweep` is the generic Cartesian-product driver used by the
scenario runner (:mod:`repro.scenarios.runner`) and directly by ad-hoc
experiments: it calls an arbitrary function for every combination of the
grid values and collects the outputs in a :class:`SweepResult`, keyed by
the parameter assignment that produced them.

:func:`run_sweep_stacked` is the fused alternative for policy sweeps over a
single workload: instead of S sequential :func:`~repro.harness.experiment.
run_experiment` calls it stacks all S grid points into one ``(S·N, D)``
matrix (:class:`~repro.engine.sweep_exec.StackedSweepMatrix`) and drives
one batched forward/backward per global step across the whole grid,
producing a bit-identical :class:`SweepResult` in float64.  Both entry
points share :func:`validate_grid`, so they reject empty grids and
grid/fixed collisions identically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Trainer families :func:`run_sweep_stacked` can drive.  The stacked
#: coordinator tiles one slice's batches across all grid points, which is
#: only sound for lockstep algorithms (every worker consumes exactly one
#: batch per global step).  BSP is reachable as the SelSync δ=0 endpoint
#: under the exact-endpoint configuration; SSP/FedAvg are not lockstep.
STACKED_ALGORITHMS = frozenset({"selsync", "local_sgd", "localsgd"})

#: Grid keys that only change the synchronization *policy* of a run.  Keys
#: affecting the data stream or batch shapes (injection parameters, batch
#: size) must not vary across stacked slices — every slice must consume the
#: identical batch sequence for the fused tiling to be valid.
STACKABLE_GRID_KEYS = frozenset(
    {"delta", "aggregation", "ewma_window", "statistic", "sync_on_first_step", "sync_period"}
)

#: Workload presets whose models the batched replica executor supports
#: (exact-type checks: MLP and the dropout-free TransformerLM).  Other
#: presets fall back to the per-worker loop sequentially, which a stacked
#: run cannot do.
STACKED_WORKLOADS = frozenset({"deep_mlp", "transformer"})


@dataclass
class SweepResult:
    """All runs of a grid sweep, keyed by their parameter assignments.

    Each entry of :attr:`runs` is ``{"params": {...}, "output": ...}`` in
    grid order (the rightmost grid key varies fastest, like nested loops).
    """

    runs: List[Dict[str, Any]] = field(default_factory=list)

    def append(self, params: Mapping[str, Any], output: Any) -> None:
        """Record one run: its parameter assignment and the function output."""
        self.runs.append({"params": dict(params), "output": output})

    def __len__(self) -> int:
        return len(self.runs)

    def best(self, key: Callable[[Any], float], maximize: bool = True) -> Dict[str, Any]:
        """Run whose output maximizes (or minimizes) ``key``.

        ``key`` maps one run's output to a comparable score;
        ``maximize=False`` selects the minimum instead (e.g. perplexity or
        final loss).  Raises :class:`ValueError` on an empty result, which
        can only happen when runs were never appended — both sweep entry
        points (:func:`grid_sweep` and :func:`run_sweep_stacked`) reject
        empty grids up front through :func:`validate_grid`.
        """
        if not self.runs:
            raise ValueError("sweep produced no runs")
        chooser = max if maximize else min
        return chooser(self.runs, key=lambda run: key(run["output"]))

    def outputs(self) -> List[Any]:
        """The bare outputs in run order (parameter assignments dropped)."""
        return [run["output"] for run in self.runs]


def validate_grid(
    grid: Mapping[str, Sequence[Any]],
    fixed: Mapping[str, Any] | None = None,
) -> Tuple[Dict[str, List[Any]], Dict[str, Any]]:
    """Normalize and validate a sweep grid; returns ``(grid, fixed)`` dicts.

    Shared by both sweep entry points (:func:`grid_sweep` and
    :func:`run_sweep_stacked`): an empty grid, a grid entry with no values
    (either would silently produce zero runs, breaking the
    :meth:`SweepResult.best` non-emptiness guarantee) and a key appearing in
    both ``grid`` and ``fixed`` (which would otherwise surface as a
    confusing ``TypeError: multiple values`` mid-sweep) are all rejected
    with :class:`ValueError` up front.  Grid values are materialized into
    lists so iterator-valued entries are not consumed by the checks.
    """
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    fixed = dict(fixed or {})
    collisions = set(grid) & set(fixed)
    if collisions:
        raise ValueError(
            f"parameters {sorted(collisions)} appear in both grid and fixed"
        )
    grid = {name: list(values) for name, values in grid.items()}
    for name, values in grid.items():
        if not values:
            raise ValueError(f"grid entry {name!r} has no values")
    return grid, fixed


def grid_combinations(grid: Mapping[str, List[Any]]) -> List[Dict[str, Any]]:
    """All parameter assignments of a validated grid, in grid order.

    Grid order means the rightmost key varies fastest, like nested loops —
    the order both sweep entry points emit runs in.
    """
    names = list(grid.keys())
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[name] for name in names))
    ]


def grid_sweep(
    fn: Callable[..., Any],
    grid: Mapping[str, Sequence[Any]],
    fixed: Mapping[str, Any] | None = None,
) -> SweepResult:
    """Run ``fn`` for every combination of the values in ``grid``.

    ``fixed`` keyword arguments are passed to every call unchanged; see
    :func:`validate_grid` for the up-front rejections (empty grids, empty
    entries, grid/fixed collisions).
    """
    grid, fixed = validate_grid(grid, fixed)
    result = SweepResult()
    for params in grid_combinations(grid):
        output = fn(**fixed, **params)
        result.append(params, output)
    return result


def run_sweep_stacked(
    workload: str,
    algorithm: str,
    grid: Mapping[str, Sequence[Any]],
    fixed: Mapping[str, Any] | None = None,
    *,
    num_workers: int = 4,
    iterations: int = 200,
    seed: int = 0,
    eval_every: int = 50,
    batch_size: Optional[int] = None,
    dtype: str = "float64",
    transport_dtype: Optional[str] = None,
    max_stacked_rows: Optional[int] = None,
    verify_batches: bool = False,
) -> SweepResult:
    """Run a policy sweep as one fused (S·N, D) stacked computation.

    Produces the same :class:`SweepResult` (of
    :class:`~repro.harness.experiment.ExperimentResult` outputs, in grid
    order) that ``grid_sweep(run_experiment, ...)`` would — bit-identically
    in float64 — but computes every grid point's forward/backward in one
    batched pass per global step.  Each grid point still gets a full
    simulated cluster (its own workers, loaders, parameter server, backend,
    clock and trainer); only parameter/gradient storage and the gradient
    computation are fused, via :class:`~repro.engine.sweep_exec.
    StackedSweepMatrix` and interleaved
    :meth:`~repro.algorithms.base.BaseTrainer.run_stepwise` generators.

    Restrictions (raise :class:`ValueError` up front): ``algorithm`` must be
    lockstep (:data:`STACKED_ALGORITHMS`), grid keys must be pure sync-policy
    knobs (:data:`STACKABLE_GRID_KEYS`), and ``workload`` must be batchable
    (:data:`STACKED_WORKLOADS`).  ``max_stacked_rows`` caps the rows per
    fused slab (bit-identical to unchunked); ``verify_batches`` re-checks
    every slice's batches against the fused block each step (a test knob —
    it roughly doubles batch-assembly cost).
    """
    from repro.cluster.cluster import StackedSliceCluster
    from repro.data.datasets import build_dataset
    from repro.engine.sweep_exec import StackedSweepMatrix
    from repro.harness.experiment import (
        ExperimentResult,
        build_cluster,
        build_workload,
        make_trainer,
    )

    grid, fixed = validate_grid(grid, fixed)
    key = algorithm.lower()
    if key not in STACKED_ALGORITHMS:
        raise ValueError(
            f"algorithm {algorithm!r} cannot run stacked; lockstep algorithms "
            f"only: {sorted(STACKED_ALGORITHMS)}"
        )
    unstackable = set(grid) - STACKABLE_GRID_KEYS
    if unstackable:
        raise ValueError(
            f"grid keys {sorted(unstackable)} cannot vary across stacked "
            f"slices (policy-only keys: {sorted(STACKABLE_GRID_KEYS)}); "
            "run the sequential sweep instead"
        )
    preset = build_workload(workload)
    if preset.name not in STACKED_WORKLOADS:
        raise ValueError(
            f"workload {workload!r} is not supported by the batched replica "
            f"executor (stackable workloads: {sorted(STACKED_WORKLOADS)}); "
            "run the sequential sweep instead"
        )

    combos = grid_combinations(grid)
    stacked = StackedSweepMatrix(
        num_slices=len(combos),
        num_workers=num_workers,
        max_stacked_rows=max_stacked_rows,
        verify_batches=verify_batches,
    )
    # One dataset bundle shared by every slice: sequential runs each rebuild
    # it from the same seed, so sharing the (read-only) arrays is exact.
    bundle = build_dataset(preset.dataset_name, seed=seed, **preset.dataset_kwargs)

    clusters = []
    trainers = []
    try:
        for index, params in enumerate(combos):
            def _factory(_index=index, **kwargs):
                return StackedSliceCluster(
                    stacked_matrix=stacked, slice_index=_index, **kwargs
                )

            cluster = build_cluster(
                preset,
                num_workers=num_workers,
                seed=seed,
                bundle=bundle,
                batch_size=batch_size,
                dtype=dtype,
                transport_dtype=transport_dtype,
                cluster_factory=_factory,
            )
            clusters.append(cluster)
            trainers.append(
                make_trainer(
                    key,
                    cluster,
                    preset,
                    total_iterations=iterations,
                    eval_every=eval_every,
                    **{**fixed, **params},
                )
            )
        stacked.build_executors(clusters[0].workers[0].model)

        steppers = [trainer.run_stepwise(iterations) for trainer in trainers]
        results: List[Any] = [None] * len(steppers)
        active = list(range(len(steppers)))
        while active:
            still_running = []
            for index in active:
                try:
                    next(steppers[index])
                    still_running.append(index)
                except StopIteration as stop:
                    results[index] = stop.value
            active = still_running
    finally:
        for cluster in clusters:
            cluster.close()

    sweep = SweepResult()
    for params, trainer, result in zip(combos, trainers, results):
        sweep.append(
            params,
            ExperimentResult(
                workload=preset.name, algorithm=trainer.describe(), result=result
            ),
        )
    return sweep
