"""Parameter sweeps over experiment configurations.

:func:`grid_sweep` is the generic Cartesian-product driver used by the
scenario runner (:mod:`repro.scenarios.runner`) and directly by ad-hoc
experiments: it calls an arbitrary function for every combination of the
grid values and collects the outputs in a :class:`SweepResult`, keyed by
the parameter assignment that produced them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence


@dataclass
class SweepResult:
    """All runs of a grid sweep, keyed by their parameter assignments.

    Each entry of :attr:`runs` is ``{"params": {...}, "output": ...}`` in
    grid order (the rightmost grid key varies fastest, like nested loops).
    """

    runs: List[Dict[str, Any]] = field(default_factory=list)

    def append(self, params: Mapping[str, Any], output: Any) -> None:
        """Record one run: its parameter assignment and the function output."""
        self.runs.append({"params": dict(params), "output": output})

    def __len__(self) -> int:
        return len(self.runs)

    def best(self, key: Callable[[Any], float], maximize: bool = True) -> Dict[str, Any]:
        """Run whose output maximizes (or minimizes) ``key``.

        ``key`` maps one run's output to a comparable score;
        ``maximize=False`` selects the minimum instead (e.g. perplexity or
        final loss).  Raises :class:`ValueError` on an empty result, which
        can only happen when runs were never appended — :func:`grid_sweep`
        itself rejects empty grids up front.
        """
        if not self.runs:
            raise ValueError("sweep produced no runs")
        chooser = max if maximize else min
        return chooser(self.runs, key=lambda run: key(run["output"]))

    def outputs(self) -> List[Any]:
        """The bare outputs in run order (parameter assignments dropped)."""
        return [run["output"] for run in self.runs]


def grid_sweep(
    fn: Callable[..., Any],
    grid: Mapping[str, Sequence[Any]],
    fixed: Mapping[str, Any] | None = None,
) -> SweepResult:
    """Run ``fn`` for every combination of the values in ``grid``.

    ``fixed`` keyword arguments are passed to every call unchanged; a key
    appearing in both ``grid`` and ``fixed`` is rejected with
    :class:`ValueError` up front (it would otherwise surface as a confusing
    ``TypeError: multiple values`` from ``fn`` mid-sweep).  An empty grid —
    or a grid entry with no values, which would silently produce zero runs
    — is also rejected.
    """
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    fixed = dict(fixed or {})
    collisions = set(grid) & set(fixed)
    if collisions:
        raise ValueError(
            f"parameters {sorted(collisions)} appear in both grid and fixed"
        )
    # Materialize every entry once: the emptiness check must not consume
    # iterator-valued grids out from under the product below.
    grid = {name: list(values) for name, values in grid.items()}
    for name, values in grid.items():
        if not values:
            raise ValueError(f"grid entry {name!r} has no values")
    names = list(grid.keys())
    result = SweepResult()
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        output = fn(**fixed, **params)
        result.append(params, output)
    return result
