"""Parameter sweeps over experiment configurations."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence


@dataclass
class SweepResult:
    """All runs of a grid sweep, keyed by their parameter assignments."""

    runs: List[Dict[str, Any]] = field(default_factory=list)

    def append(self, params: Mapping[str, Any], output: Any) -> None:
        self.runs.append({"params": dict(params), "output": output})

    def __len__(self) -> int:
        return len(self.runs)

    def best(self, key: Callable[[Any], float], maximize: bool = True) -> Dict[str, Any]:
        """Run whose output maximizes (or minimizes) ``key``."""
        if not self.runs:
            raise ValueError("sweep produced no runs")
        chooser = max if maximize else min
        return chooser(self.runs, key=lambda run: key(run["output"]))

    def outputs(self) -> List[Any]:
        return [run["output"] for run in self.runs]


def grid_sweep(
    fn: Callable[..., Any],
    grid: Mapping[str, Sequence[Any]],
    fixed: Mapping[str, Any] | None = None,
) -> SweepResult:
    """Run ``fn`` for every combination of the values in ``grid``.

    ``fixed`` keyword arguments are passed to every call unchanged.
    """
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    fixed = dict(fixed or {})
    names = list(grid.keys())
    result = SweepResult()
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        output = fn(**fixed, **params)
        result.append(params, output)
    return result
