"""Experiment harness: workload presets, runners, sweeps and report formatting.

The benchmarks under ``benchmarks/`` and the scripts under ``examples/`` are
thin wrappers around this package: a workload preset names one of the paper's
four (model, dataset, optimizer, schedule) combinations scaled to CPU size,
the runner builds the simulated cluster and executes any of the training
algorithms on it, and the reporting helpers print the rows/series that the
paper's tables and figures contain.
"""

from repro.harness.experiment import (
    WorkloadPreset,
    WORKLOAD_PRESETS,
    build_workload,
    build_cluster,
    make_trainer,
    run_experiment,
    ExperimentResult,
)
from repro.harness.sweep import grid_sweep, SweepResult
from repro.harness.reporting import format_table, format_series, results_to_rows

__all__ = [
    "WorkloadPreset",
    "WORKLOAD_PRESETS",
    "build_workload",
    "build_cluster",
    "make_trainer",
    "run_experiment",
    "ExperimentResult",
    "grid_sweep",
    "SweepResult",
    "format_table",
    "format_series",
    "results_to_rows",
]
