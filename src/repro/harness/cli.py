"""Command-line interface: run any algorithm on any workload from the shell.

Examples
--------
Run SelSync on the ResNet analog with 8 simulated workers::

    python -m repro.harness.cli run --workload resnet101 --algorithm selsync \
        --workers 8 --iterations 200 --delta 0.3

Compare against BSP and print a Table-I style row::

    python -m repro.harness.cli compare --workload vgg11 --iterations 200

List the available workloads and algorithms::

    python -m repro.harness.cli list

Run a registered scenario from the declarative registry (see
:mod:`repro.scenarios`), optionally rescaled and archived as JSON::

    python -m repro.harness.cli scenario                     # list scenarios
    python -m repro.harness.cli scenario --tag paper-scale   # filter by tag
    python -m repro.harness.cli scenario fig6-delta-sweep --iterations 80 \
        --json /tmp/fig6.json

Run a δ-sweep scenario through the fused stacked executor (one (S·N, D)
batched pass per step instead of S sequential runs; bit-identical in
float64)::

    python -m repro.harness.cli scenario deep-mlp-delta-n64 --stacked

Inject a seeded crash/straggler fault process (see :mod:`repro.faults`)::

    python -m repro.harness.cli run --workload deep_mlp --algorithm selsync \
        --iterations 64 --failure-rate 0.05 --mttr 5 --fault-seed 7
    python -m repro.harness.cli scenario fault-replay-deep-mlp --fault-seed 3

Serve the experiment service and submit jobs to it over HTTP (see
:mod:`repro.service`)::

    python -m repro.harness.cli serve --port 8080 --db jobs.sqlite3
    python -m repro.harness.cli submit scenario '{"name": "quickstart"}' --wait

Record runs to the persistent history and inspect their trends (see
:mod:`repro.results`)::

    python -m repro.harness.cli scenario quickstart --record results.sqlite3
    python -m repro.harness.cli scenario history                # list scenarios
    python -m repro.harness.cli scenario history quickstart --metrics lssr

Compare benchmark artifacts — two-point or against the rolling stored
baseline (the one engine behind the old ``benchmarks/compare_bench.py``)::

    python -m repro.harness.cli bench compare engine baseline.json current.json
    python -m repro.harness.cli bench compare engine current.json \
        --store bench_history.sqlite3

Summarize a telemetry span trace recorded via ``REPRO_TRACE_FILE`` or
``ClusterConfig.telemetry`` (see :mod:`repro.telemetry`)::

    python -m repro.harness.cli trace summarize /tmp/trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from repro.harness.experiment import WORKLOAD_PRESETS, run_experiment
from repro.harness.reporting import format_table, results_to_rows, table1_headers

ALGORITHMS = ("bsp", "selsync", "fedavg", "ssp", "local_sgd")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="resnet101", choices=sorted(WORKLOAD_PRESETS))
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=150)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--eval-every", type=int, default=None)
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=["float32", "float64"],
        help="engine compute dtype (float32 = reduced-precision mode)",
    )
    parser.add_argument(
        "--transport-dtype",
        default=None,
        choices=["float16", "float32", "float64"],
        help="simulated wire format for model payloads (default: float32 wire)",
    )
    parser.add_argument(
        "--pool-workers",
        type=int,
        default=0,
        help="shard forward/backward over this many OS processes via the "
        "shared-memory replica pool (0 = in-process)",
    )
    parser.add_argument(
        "--pool-start-method",
        default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method for the replica pool "
        "(default: platform default, preferring fork)",
    )


def _algorithm_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    if args.algorithm == "selsync":
        kwargs["delta"] = args.delta
        kwargs["aggregation"] = args.aggregation
    elif args.algorithm == "fedavg":
        kwargs["participation"] = args.participation
        kwargs["sync_factor"] = args.sync_factor
    elif args.algorithm == "ssp":
        kwargs["staleness"] = args.staleness
    elif args.algorithm == "local_sgd":
        kwargs["sync_period"] = args.sync_period
    return kwargs


def _cmd_list(_: argparse.Namespace) -> int:
    print("workloads :", ", ".join(sorted(WORKLOAD_PRESETS)))
    print("algorithms:", ", ".join(ALGORITHMS))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import RunRequest, run as api_run

    faulty = args.failure_rate > 0.0 or args.straggler_fraction > 0.0
    out = api_run(RunRequest(
        kind="experiment",
        workload=args.workload,
        algorithm=args.algorithm,
        params=_algorithm_kwargs(args),
        num_workers=args.workers,
        iterations=args.iterations,
        seed=args.seed,
        eval_every=args.eval_every or max(args.iterations // 8, 1),
        dtype=args.dtype,
        transport_dtype=args.transport_dtype,
        pool_workers=args.pool_workers,
        pool_start_method=args.pool_start_method,
        fault_seed=args.fault_seed if faulty else None,
        failure_rate=args.failure_rate if faulty else None,
        straggler_fraction=args.straggler_fraction if faulty else None,
        mttr=args.mttr if faulty else None,
    ))
    result = out.results["run"]
    rows = [[
        out.label, result.iterations, round(result.lssr, 3),
        round(result.best_metric, 4), round(result.sim_time_seconds, 1),
    ]]
    print(format_table(
        ["method", "iterations", "LSSR", f"best {result.metric_name}", "simulated time (s)"],
        rows, title=f"{args.workload} on {args.workers} simulated workers",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    eval_every = args.eval_every or max(args.iterations // 8, 1)
    results = {}
    grid = {
        "bsp": ("bsp", {}),
        "fedavg": ("fedavg", {"participation": 1.0, "sync_factor": 0.25}),
        "ssp": ("ssp", {"staleness": 100}),
        "selsync": ("selsync", {"delta": args.delta}),
    }
    for label, (algorithm, kwargs) in grid.items():
        print(f"running {label} ...", file=sys.stderr)
        out = run_experiment(
            args.workload, algorithm, num_workers=args.workers,
            iterations=args.iterations, seed=args.seed, eval_every=eval_every,
            dtype=args.dtype, transport_dtype=args.transport_dtype,
            pool_workers=args.pool_workers, pool_start_method=args.pool_start_method,
            **kwargs,
        )
        results[label] = out.result
    rows = results_to_rows(results, baseline_key="bsp")
    print(format_table(table1_headers(), rows,
                       title=f"Comparison — {args.workload}, {args.workers} workers"))
    return 0


#: ``repro scenario run`` exit codes (stable CLI contract, asserted by tests).
EXIT_SCENARIO_ERROR = 2
EXIT_PARITY_FAILURE = 3


def _emit_json_error(path: Optional[str], *, code: str, message: str, **extra: object) -> None:
    """Write a structured JSON error (instead of a report) under ``--json``."""
    if not path:
        return
    with open(path, "w") as fh:
        json.dump({"error": {"code": code, "message": message, **extra}}, fh, indent=2)
    print(f"[error report written to {path}]", file=sys.stderr)


def _parse_where(pairs: Optional[Sequence[str]]) -> Optional[Dict[str, object]]:
    """Parse repeated ``--where key=value`` filters (values parsed as JSON)."""
    if not pairs:
        return None
    where: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --where expects key=value, got {pair!r}")
        try:
            where[key] = json.loads(raw)
        except json.JSONDecodeError:
            where[key] = raw
    return where


def _cmd_scenario_history(args: argparse.Namespace) -> int:
    """``repro scenario history [SCENARIO]`` — render stored trend series."""
    import os

    from repro.harness.reporting import trend_table
    from repro.results import history_payload, open_store

    if args.extra is None and not os.path.exists(args.store):
        print(f"error: no results store at {args.store!r} "
              "(record runs with --record or repro serve first)", file=sys.stderr)
        return EXIT_SCENARIO_ERROR
    handle, owns = open_store(args.store)
    try:
        if args.extra is None:
            names = handle.scenarios()
            print(format_table(
                ["scenario"], [[name] for name in names],
                title=f"recorded scenarios in {args.store}",
            ))
            return 0
        payload = history_payload(
            handle,
            args.extra,
            metrics=[m.strip() for m in args.metrics.split(",") if m.strip()]
            if args.metrics else None,
            where=_parse_where(args.where),
            last=args.last,
        )
        if not payload["series"]:
            print(f"error: no recorded history for scenario {args.extra!r} "
                  f"in {args.store}", file=sys.stderr)
            _emit_json_error(args.json, code="no_history",
                             message=f"no recorded history for {args.extra!r}",
                             scenario=args.extra)
            return EXIT_SCENARIO_ERROR
        tables = [
            trend_table(metric, points, title=f"{args.extra}: {metric}")
            for metric, points in payload["series"].items()
        ]
        print("\n\n".join(tables))
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"[history written to {args.json}]", file=sys.stderr)
        return 0
    finally:
        if owns:
            handle.close()


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.api import ApiError, RunRequest, run as api_run
    from repro.scenarios import ScenarioError, get_scenario, scenario_names

    # "history" is a reserved subcommand-style name: the optional second
    # positional is the scenario whose stored trends to show.
    if args.name == "history":
        return _cmd_scenario_history(args)
    if args.name is None:
        rows = []
        for name in scenario_names(tag=args.tag):
            scenario = get_scenario(name)
            rows.append([name, scenario.kind, ", ".join(scenario.tags), scenario.title])
        title = "registered scenarios" + (f" (tag: {args.tag})" if args.tag else "")
        print(format_table(["name", "kind", "tags", "title"], rows, title=title))
        return 0
    print(f"running scenario {args.name!r} ...", file=sys.stderr)
    try:
        out = api_run(RunRequest(
            kind="scenario",
            scenario=args.name,
            iterations=args.iterations,
            num_workers=args.workers,
            seed=args.seed,
            stacked=True if args.stacked else None,
            max_stacked_rows=args.max_stacked_rows,
            fault_seed=args.fault_seed,
        ), record_to=args.record)
    except (ApiError, ScenarioError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        _emit_json_error(args.json, code="scenario_error", message=str(exc),
                         scenario=args.name)
        return EXIT_SCENARIO_ERROR
    report = out.report
    print(report.table())
    if report.endpoints:
        verdicts = ", ".join(
            f"{anchor}={info['matches_sweep_endpoint']}"
            for anchor, info in report.endpoints.items()
        )
        print(f"\nexact endpoint parity vs existing trainers: {verdicts}")
        failed = sorted(
            anchor for anchor, info in report.endpoints.items()
            if not info["matches_sweep_endpoint"]
        )
        if failed:
            print(f"error: endpoint parity verification failed for {failed}",
                  file=sys.stderr)
            _emit_json_error(
                args.json, code="endpoint_parity_failure",
                message=f"endpoint parity verification failed for {failed}",
                scenario=args.name, failed_anchors=failed,
                endpoints=report.endpoints,
            )
            return EXIT_PARITY_FAILURE
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"[report written to {args.json}]", file=sys.stderr)
    return 0


def _emit_bench_output(output: str) -> None:
    """Print the comparison and mirror it to the CI job summary when set."""
    import os

    print(output)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(output + "\n")


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    """One uniform ``(kind, baseline, current | --store)`` comparison.

    Two files → the classic two-point delta table; ``--store`` → rolling
    median-of-last-K comparison against stored history (recording the
    current rows unless ``--no-record``).  Both may run in one invocation;
    the exit code is 1 if either gate fails.
    """
    from pathlib import Path

    from repro.results.compare import BENCH_KINDS, compare, compare_store

    recipe = BENCH_KINDS[args.kind]
    baseline, current = args.baseline, args.current
    if current is None:
        baseline, current = None, baseline
    if current is None:
        print("error: a current benchmark file is required", file=sys.stderr)
        return 2
    if baseline is None and not args.store:
        print("error: provide a baseline file, --store, or both", file=sys.stderr)
        return 2
    current = Path(current)
    if not current.exists():
        print(f"current results missing at {current}; benchmark did not write output")
        return 1

    sections = []
    failed = False
    if baseline is not None:
        baseline = Path(baseline)
        if not baseline.exists():
            print(f"no baseline at {baseline}; nothing to compare against")
        else:
            table, two_point_failed = compare(
                recipe.load(baseline),
                recipe.load(current),
                args.max_regression,
                title=recipe.title,
                lower_is_better=recipe.lower_is_better,
            )
            sections.append(table)
            failed |= two_point_failed
    if args.store:
        table, confirmed = compare_store(
            args.store,
            args.kind,
            current,
            window=args.window,
            min_consecutive=args.min_consecutive,
            record=not args.no_record,
            tags=tuple(args.tag or ()),
        )
        sections.append(table)
        failed |= confirmed
    sections.extend(recipe.extras(current))
    _emit_bench_output("\n\n".join(sections))
    return 1 if failed else 0


def _cmd_bench_record(args: argparse.Namespace) -> int:
    """Append one benchmark artifact's rows to the persistent run store."""
    from pathlib import Path

    from repro.results.compare import record_bench_file

    current = Path(args.current)
    if not current.exists():
        print(f"error: no benchmark file at {current}", file=sys.stderr)
        return 2
    run = record_bench_file(args.store, args.kind, current, tags=tuple(args.tag or ()))
    print(f"recorded {args.kind} rows from {current} as run {run.run_id} "
          f"(git_sha={run.git_sha})")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    """``repro trace summarize FILE`` — per-phase time-share table of a trace."""
    import os

    from repro.telemetry import summarize_trace

    if not os.path.exists(args.file):
        print(f"error: no trace file at {args.file!r}", file=sys.stderr)
        return 2
    summary = summarize_trace(args.file)
    if summary["span_count"] == 0:
        print(f"error: {args.file!r} contains no spans", file=sys.stderr)
        return 2
    phases = sorted(
        summary["phases"].items(), key=lambda item: item[1]["total_seconds"], reverse=True
    )
    rows = [
        [
            name,
            stats["count"],
            round(stats["total_seconds"], 4),
            round(stats["mean_seconds"] * 1000.0, 3),
            f"{stats['share'] * 100.0:.1f}%",
        ]
        for name, stats in phases
    ]
    output = format_table(
        ["phase", "spans", "total (s)", "mean (ms)", "share of wall"],
        rows,
        title=f"trace summary — {args.file} "
        f"(wall {summary['wall_seconds']:.3f}s, {summary['span_count']} spans)",
    )
    _emit_bench_output(output)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2)
        print(f"[summary written to {args.json}]", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import QuotaManager, serve

    quotas = QuotaManager(
        max_active_jobs=args.max_active if args.max_active > 0 else None,
        rate=args.rate if args.rate > 0 else None,
        burst=args.burst,
    )
    serve(
        host=args.host,
        port=args.port,
        db_path=args.db,
        workers=args.service_workers,
        quotas=quotas,
        results_db=None if args.no_results_db else args.results_db,
    )
    return 0


def _parse_payload(raw: str) -> Dict[str, object]:
    if raw.startswith("@"):
        with open(raw[1:]) as fh:
            raw = fh.read()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: payload is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit(f"error: payload must be a JSON object, got {type(payload).__name__}")
    return payload


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url, tenant=args.tenant)
    payload = _parse_payload(args.payload)
    try:
        job = client.submit(args.action, payload)
        if args.wait:
            job = client.wait(job["id"], timeout=args.timeout)
    except ServiceClientError as exc:
        print(f"error ({exc.status} {exc.code}): {exc}", file=sys.stderr)
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(exc.body or {"error": {"code": exc.code, "message": str(exc)}},
                          fh, indent=2)
        return 2
    except (TimeoutError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.wait and job["state"] != "DONE":
        print(f"job {job['id']} finished {job['state']}"
              + (f": {job.get('error')}" if job.get("error") else ""), file=sys.stderr)
        print(json.dumps(job, indent=2))
        return 1
    output: Dict[str, object] = {"job": job}
    if args.wait:
        output["records"] = list(client.iter_records(job["id"]))
    print(json.dumps(output, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(output, fh, indent=2)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser (``list`` / ``run`` / ``compare`` /
    ``scenario`` subcommands)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list workloads and algorithms")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one algorithm on one workload")
    _add_common_arguments(run_parser)
    run_parser.add_argument("--algorithm", default="selsync", choices=ALGORITHMS)
    run_parser.add_argument("--delta", type=float, default=0.3)
    run_parser.add_argument("--aggregation", default="param", choices=["param", "grad"])
    run_parser.add_argument("--participation", type=float, default=1.0)
    run_parser.add_argument("--sync-factor", type=float, default=0.25)
    run_parser.add_argument("--staleness", type=int, default=100)
    run_parser.add_argument("--sync-period", type=int, default=10)
    run_parser.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed for the generated fault schedule (with --failure-rate / "
        "--straggler-fraction)",
    )
    run_parser.add_argument(
        "--failure-rate", type=float, default=0.0, metavar="P",
        help="per-worker per-step crash probability (0 disables fault injection)",
    )
    run_parser.add_argument(
        "--straggler-fraction", type=float, default=0.0, metavar="F",
        help="expected fraction of workers inside a straggler burst",
    )
    run_parser.add_argument(
        "--mttr", type=int, default=5, metavar="STEPS",
        help="mean steps to rejoin after a generated crash",
    )
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = sub.add_parser("compare", help="compare SelSync against the baselines")
    _add_common_arguments(compare_parser)
    compare_parser.add_argument("--delta", type=float, default=0.3)
    compare_parser.set_defaults(func=_cmd_compare)

    scenario_parser = sub.add_parser(
        "scenario", help="list or run scenarios from the declarative registry"
    )
    scenario_parser.add_argument(
        "name", nargs="?", default=None,
        help="registered scenario name (omit to list scenarios; 'history' to "
        "inspect the persistent run store)",
    )
    scenario_parser.add_argument(
        "extra", nargs="?", default=None,
        help="with 'history': the recorded scenario to show (omit to list)",
    )
    scenario_parser.add_argument("--tag", default=None, help="filter the listing by tag")
    scenario_parser.add_argument(
        "--record", default=None, metavar="DB",
        help="append the finished run to this persistent results store",
    )
    scenario_parser.add_argument(
        "--store", default="repro_results.sqlite3", metavar="DB",
        help="results store queried by 'history' (default repro_results.sqlite3)",
    )
    scenario_parser.add_argument(
        "--metrics", default=None,
        help="with 'history': comma-separated metric restriction",
    )
    scenario_parser.add_argument(
        "--last", type=int, default=None, metavar="K",
        help="with 'history': keep only the most recent K runs per series",
    )
    scenario_parser.add_argument(
        "--where", action="append", default=None, metavar="KEY=VALUE",
        help="with 'history': restrict sweep records to one grid point "
        "(repeatable)",
    )
    scenario_parser.add_argument(
        "--iterations", type=int, default=None, help="override the scenario's iterations"
    )
    scenario_parser.add_argument(
        "--workers", type=int, default=None, help="override the scenario's cluster size"
    )
    scenario_parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario's seed"
    )
    scenario_parser.add_argument(
        "--stacked",
        action="store_true",
        help="run a sweep scenario through the fused (S*N, D) stacked executor",
    )
    scenario_parser.add_argument(
        "--max-stacked-rows",
        type=int,
        default=None,
        metavar="ROWS",
        help="cap rows per fused slab in stacked mode (bit-identical chunking)",
    )
    scenario_parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="override a fault scenario's schedule seed (fault scenarios only)",
    )
    scenario_parser.add_argument(
        "--json", default=None, metavar="PATH", help="write the report as JSON to PATH"
    )
    scenario_parser.set_defaults(func=_cmd_scenario)

    serve_parser = sub.add_parser(
        "serve", help="run the multi-tenant experiment service (see repro.service)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8080)
    serve_parser.add_argument(
        "--db", default="repro_jobs.sqlite3",
        help="SQLite job-queue path (':memory:' for ephemeral)",
    )
    serve_parser.add_argument(
        "--service-workers", type=int, default=2, metavar="N",
        help="concurrent job-executing worker threads",
    )
    serve_parser.add_argument(
        "--max-active", type=int, default=8, metavar="N",
        help="per-tenant active-job quota (0 disables)",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=10.0,
        help="per-tenant sustained submissions/second (0 disables rate limiting)",
    )
    serve_parser.add_argument(
        "--burst", type=float, default=20.0, help="per-tenant submission burst size"
    )
    serve_parser.add_argument(
        "--results-db", default="repro_results.sqlite3", metavar="DB",
        help="persistent run-history store every finished job is appended to "
        "(served back via GET /v1/history)",
    )
    serve_parser.add_argument(
        "--no-results-db", action="store_true",
        help="disable run-history recording and the /v1/history endpoints",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    bench_parser = sub.add_parser(
        "bench", help="compare or record benchmark artifacts (see repro.results)"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)

    bench_compare = bench_sub.add_parser(
        "compare",
        help="two-point and/or rolling-store benchmark comparison",
        description="repro bench compare KIND [BASELINE] CURRENT [--store DB]: "
        "with two files, the classic two-point delta table; with --store, a "
        "rolling median-of-last-K comparison that only fails on confirmed "
        "(consecutive) regressions.",
    )
    bench_compare.add_argument("kind", choices=("engine", "scenarios", "service"))
    bench_compare.add_argument(
        "baseline", nargs="?", default=None,
        help="baseline benchmark JSON (omit for store-only comparison)",
    )
    bench_compare.add_argument(
        "current", nargs="?", default=None, help="freshly measured benchmark JSON"
    )
    bench_compare.add_argument(
        "--max-regression", type=float, default=0.25,
        help="two-point fractional regression limit (default 0.25)",
    )
    bench_compare.add_argument(
        "--store", default=None, metavar="DB",
        help="results store holding this kind's benchmark history",
    )
    bench_compare.add_argument(
        "--window", type=int, default=5,
        help="rolling-baseline window: median of the last K stored runs",
    )
    bench_compare.add_argument(
        "--min-consecutive", type=int, default=2,
        help="consecutive out-of-band runs required to confirm a regression",
    )
    bench_compare.add_argument(
        "--no-record", action="store_true",
        help="assess against the store without appending the current rows",
    )
    bench_compare.add_argument(
        "--tag", action="append", default=None, help="tag recorded rows (repeatable)"
    )
    bench_compare.set_defaults(func=_cmd_bench_compare)

    bench_record = bench_sub.add_parser(
        "record", help="append one benchmark artifact's rows to the run store"
    )
    bench_record.add_argument("kind", choices=("engine", "scenarios", "service"))
    bench_record.add_argument("current", help="benchmark JSON file to record")
    bench_record.add_argument(
        "--store", required=True, metavar="DB", help="results store to append to"
    )
    bench_record.add_argument(
        "--tag", action="append", default=None, help="tag recorded rows (repeatable)"
    )
    bench_record.set_defaults(func=_cmd_bench_record)

    trace_parser = sub.add_parser(
        "trace", help="inspect telemetry trace files (see repro.telemetry)"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize",
        help="per-phase time-share summary of a JSONL trace file",
        description="repro trace summarize FILE: aggregate a JSONL span trace "
        "(REPRO_TRACE_FILE / ClusterConfig.telemetry) into a per-phase "
        "count/total/share table.",
    )
    trace_summarize.add_argument("file", help="JSONL trace file to summarize")
    trace_summarize.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the summary dict as JSON to PATH",
    )
    trace_summarize.set_defaults(func=_cmd_trace_summarize)

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a running experiment service"
    )
    submit_parser.add_argument(
        "action",
        choices=("experiment", "sweep", "comparison", "throughput", "scenario"),
        help="submission action (one top-level action key)",
    )
    submit_parser.add_argument(
        "payload",
        help="JSON payload for the action, inline or @file "
        "(e.g. '{\"name\": \"quickstart\"}')",
    )
    submit_parser.add_argument("--url", default="http://127.0.0.1:8080")
    submit_parser.add_argument("--tenant", default="default")
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job is terminal and print its records",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout in seconds"
    )
    submit_parser.add_argument(
        "--json", default=None, metavar="PATH", help="also write the output JSON to PATH"
    )
    submit_parser.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
