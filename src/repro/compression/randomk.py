"""Random-k sparsification: keep a random subset of entries, unbiasedly rescaled."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.dtypes import WIRE_DTYPE_BYTES
from repro.compression.base import CompressedPayload, Compressor
from repro.utils.rng import new_rng


class RandomKCompressor(Compressor):
    """Send a uniformly random ``ratio`` fraction of entries, scaled by 1/ratio."""

    name = "randomk"

    def __init__(self, ratio: float = 0.01, seed: Optional[int] = 0, rescale: bool = True) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = float(ratio)
        self.rescale = bool(rescale)
        self._rng = new_rng(seed)

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = self._validate(vector)
        k = max(int(np.ceil(self.ratio * vector.size)), 1)
        idx = self._rng.choice(vector.size, size=k, replace=False)
        values = vector[idx]
        if self.rescale:
            # Scaling by n/k keeps the sparsified gradient unbiased in
            # expectation, the standard rand-k estimator.
            values = values * (vector.size / k)
        return CompressedPayload(
            data={
                "indices": idx.astype(np.int64),
                "values": values,
                "size": np.array([vector.size]),
            },
            original_size=vector.size,
            compressed_bytes=float(k * (WIRE_DTYPE_BYTES + WIRE_DTYPE_BYTES)),
            dtype=vector.dtype,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        size = int(payload.data["size"][0])
        dense = np.zeros(size, dtype=payload.dtype)
        dense[payload.data["indices"]] = payload.data["values"]
        return dense
