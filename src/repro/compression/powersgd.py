"""PowerSGD: rank-r low-rank approximation of the gradient.

The flat gradient is reshaped into a (rows, cols) matrix M; one subspace
iteration produces P = M Q and Q' = Mᵀ P (orthonormalized), and the
reconstruction is P Q'ᵀ.  Only P and Q' travel on the wire, so the cost is
``r * (rows + cols)`` floats instead of ``rows * cols``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.dtypes import WIRE_DTYPE_BYTES
from repro.compression.base import CompressedPayload, Compressor
from repro.utils.rng import new_rng


def _matrix_shape(size: int) -> Tuple[int, int]:
    """Choose a near-square (rows, cols) factorization with rows*cols >= size."""
    rows = int(np.ceil(np.sqrt(size)))
    cols = int(np.ceil(size / rows))
    return rows, cols


def _orthonormalize(matrix: np.ndarray) -> np.ndarray:
    """Gram-Schmidt via the thin QR factorization."""
    q, _ = np.linalg.qr(matrix)
    return q


class PowerSGDCompressor(Compressor):
    """Rank-``rank`` PowerSGD with a warm-started right factor."""

    name = "powersgd"

    def __init__(self, rank: int = 2, seed: Optional[int] = 0) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = int(rank)
        self._rng = new_rng(seed)
        self._warm_q: Optional[np.ndarray] = None

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = self._validate(vector)
        size = vector.size
        rows, cols = _matrix_shape(size)
        padded = np.zeros(rows * cols, dtype=vector.dtype)
        padded[:size] = vector
        matrix = padded.reshape(rows, cols)
        rank = min(self.rank, rows, cols)

        if self._warm_q is None or self._warm_q.shape != (cols, rank):
            q = self._rng.standard_normal((cols, rank)).astype(vector.dtype)
        else:
            q = self._warm_q
        q = _orthonormalize(q)
        p = matrix @ q                    # (rows, rank)
        p = _orthonormalize(p)
        q_new = matrix.T @ p              # (cols, rank)
        self._warm_q = q_new.copy()

        compressed_bytes = float((p.size + q_new.size) * WIRE_DTYPE_BYTES)
        return CompressedPayload(
            data={
                "p": p,
                "q": q_new,
                "size": np.array([size]),
                "shape": np.array([rows, cols]),
            },
            original_size=size,
            compressed_bytes=compressed_bytes,
            dtype=vector.dtype,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        p = payload.data["p"]
        q = payload.data["q"]
        size = int(payload.data["size"][0])
        approx = p @ q.T
        return approx.ravel()[:size].copy()
