"""Gradient compression baselines surveyed in §II-D of the paper.

SelSync reduces *when* workers communicate; these methods reduce *how much*
is communicated on every step.  They are implemented so the compression
ablation bench can compare communication volume and accuracy against
SelSync's selective synchronization:

* sparsification — :class:`TopKCompressor`, :class:`RandomKCompressor`
  (DGC / Top-k style),
* quantization — :class:`SignSGDCompressor`, :class:`TernGradCompressor`,
  :class:`FP16Compressor`,
* low-rank — :class:`PowerSGDCompressor`.
"""

from repro.compression.base import Compressor, CompressedPayload, compression_error
from repro.compression.topk import TopKCompressor
from repro.compression.randomk import RandomKCompressor
from repro.compression.signsgd import SignSGDCompressor
from repro.compression.terngrad import TernGradCompressor
from repro.compression.powersgd import PowerSGDCompressor
from repro.compression.quantize import FP16Compressor
from repro.compression.trainer import CompressedBSPTrainer

__all__ = [
    "Compressor",
    "CompressedPayload",
    "compression_error",
    "TopKCompressor",
    "RandomKCompressor",
    "SignSGDCompressor",
    "TernGradCompressor",
    "PowerSGDCompressor",
    "FP16Compressor",
    "CompressedBSPTrainer",
]
