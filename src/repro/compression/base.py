"""Compressor interface.

A compressor maps a flat gradient vector to a :class:`CompressedPayload`
(whatever compact representation it uses plus the bytes it would occupy on
the wire) and back.  Decompression always returns a dense vector of the
original length so the aggregation path is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.engine.dtypes import WIRE_DTYPE_BYTES, wire_dtype_bytes


@dataclass
class CompressedPayload:
    """Result of compressing one gradient vector.

    ``dtype`` records the compute dtype of the original vector so
    decompression reconstructs in the same dtype and byte accounting follows
    the engine's dtype -> wire-bytes mapping.
    """

    data: Dict[str, np.ndarray]
    original_size: int
    compressed_bytes: float
    dtype: np.dtype = field(default=np.dtype(np.float64))

    @property
    def original_bytes(self) -> float:
        return float(self.original_size * wire_dtype_bytes(self.dtype))

    @property
    def compression_ratio(self) -> float:
        """Original bytes / compressed bytes (>= 1 for anything useful)."""
        if self.compressed_bytes <= 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


class Compressor:
    """Base class for gradient compressors operating on flat vectors."""

    name = "identity"

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = self._validate(vector)
        return CompressedPayload(
            data={"dense": vector.copy()},
            original_size=vector.size,
            compressed_bytes=float(vector.size * WIRE_DTYPE_BYTES),
            dtype=vector.dtype,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return payload.data["dense"].copy()

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        """Compress then decompress (used by error-bound tests)."""
        return self.decompress(self.compress(vector))

    @staticmethod
    def _validate(vector: np.ndarray) -> np.ndarray:
        # Preserve the engine compute dtypes (float32 gradients stay
        # float32); anything else — ints, float16, longdouble — is promoted
        # to the float64 default so payload byte accounting, which goes
        # through the engine's dtype -> wire-bytes mapping, stays defined.
        vector = np.asarray(vector).ravel()
        if vector.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            vector = vector.astype(np.float64)
        if vector.size == 0:
            raise ValueError("cannot compress an empty gradient vector")
        if not np.all(np.isfinite(vector)):
            raise ValueError("gradient vector contains non-finite values")
        return vector


def compression_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Relative L2 reconstruction error ||g - ĝ|| / ||g||."""
    original = np.asarray(original, dtype=np.float64).ravel()
    reconstructed = np.asarray(reconstructed, dtype=np.float64).ravel()
    if original.shape != reconstructed.shape:
        raise ValueError("original and reconstruction have different lengths")
    denom = np.linalg.norm(original)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(original - reconstructed) / denom)
