"""BSP with gradient compression: the §II-D family as a runnable baseline.

Every step each worker compresses its gradient, the (decompressed) gradients
are averaged, and every worker applies the averaged update together with an
error-feedback residual (the standard trick that keeps biased compressors
like top-k convergent).  Synchronization time is scaled down by the measured
compression ratio, so the ablation bench can compare communication volume and
wall-clock against SelSync.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import BaseTrainer
from repro.cluster.cluster import SimulatedCluster
from repro.compression.base import Compressor
from repro.optim.schedules import LRSchedule


class CompressedBSPTrainer(BaseTrainer):
    """Per-step gradient aggregation with a pluggable compressor and error feedback."""

    name = "compressed_bsp"

    def __init__(
        self,
        cluster: SimulatedCluster,
        compressor: Compressor,
        lr_schedule: Optional[LRSchedule] = None,
        eval_every: int = 50,
        error_feedback: bool = True,
    ) -> None:
        super().__init__(cluster, lr_schedule=lr_schedule, eval_every=eval_every)
        self.compressor = compressor
        self.error_feedback = bool(error_feedback)
        self._residuals: List[Optional[np.ndarray]] = [None] * cluster.num_workers
        self._ratio_history: List[float] = []

    def describe(self) -> str:
        return f"bsp+{self.compressor.name}"

    def result_extras(self) -> Dict[str, float]:
        mean_ratio = float(np.mean(self._ratio_history)) if self._ratio_history else 1.0
        return {"mean_compression_ratio": mean_ratio}

    def train_step(self) -> Dict[str, float]:
        cluster = self.cluster
        lr = self.current_lr()
        batches = [worker.next_batch() for worker in cluster.workers]
        losses = cluster.compute_gradients_all(batches)
        compressed_vectors = []
        total_ratio = 0.0
        for worker in cluster.workers:
            # Gradients arrive as the worker's flat buffer row — compressors
            # operate on flat vectors, so no per-step re-flattening happens.
            flat = worker.grad_vector
            if self.error_feedback and self._residuals[worker.worker_id] is not None:
                flat = flat + self._residuals[worker.worker_id]
            payload = self.compressor.compress(flat)
            reconstructed = self.compressor.decompress(payload)
            if self.error_feedback:
                self._residuals[worker.worker_id] = flat - reconstructed
            compressed_vectors.append(reconstructed)
            total_ratio += payload.compression_ratio
        cluster.charge_compute_step()

        mean_ratio = total_ratio / cluster.num_workers
        self._ratio_history.append(mean_ratio)
        averaged = np.mean(compressed_vectors, axis=0)

        # Charge a full sync scaled down by the achieved compression ratio.
        # The compressor's payload bytes already reflect the true wire
        # format (FP16 ships 2 bytes/element, sign bits 1/8, ...), so the
        # cost model's transport-dtype scale must not discount them again.
        seconds = cluster.comm_model.sync_seconds(
            cluster.workload_spec.model_bytes / max(mean_ratio, 1.0),
            cluster.num_workers,
            scale_transport=False,
        )
        cluster.clock.barrier_and_add(seconds, bucket="communication")
        cluster.backend.record.record(
            "compressed_allreduce",
            2.0 * cluster.workers[0].model.parameter_bytes() / max(mean_ratio, 1.0)
            * cluster.num_workers,
        )

        cluster.apply_local_updates(lr=lr, grads=averaged)
        cluster.ps.set_state(cluster.workers[0].param_vector)
        self.lssr_tracker.record_sync()
        return {"loss": float(np.mean(losses)), "compression_ratio": mean_ratio}

    def global_state(self):
        return self.cluster.workers[0].get_state()
