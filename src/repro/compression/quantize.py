"""FP16 quantization: the 2x compression used by mixed-precision communication."""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedPayload, Compressor
from repro.engine.dtypes import transport_dtype_bytes


class FP16Compressor(Compressor):
    """Cast gradients to float16 on the wire (GradientFlow-style 2x saving).

    The payload is priced through the engine's float16 *transport* entry, so
    the bytes charged here and the half-precision wire mode of the cost
    models stay consistent by construction.
    """

    name = "fp16"

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = self._validate(vector)
        # Clip to the float16 representable range to avoid infs.
        max_fp16 = np.finfo(np.float16).max
        clipped = np.clip(vector, -max_fp16, max_fp16)
        half = clipped.astype(np.float16)
        return CompressedPayload(
            data={"half": half},
            original_size=vector.size,
            compressed_bytes=float(vector.size * transport_dtype_bytes(np.float16)),
            dtype=vector.dtype,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return payload.data["half"].astype(payload.dtype)
