"""Top-k sparsification: keep the k largest-magnitude gradient entries."""

from __future__ import annotations

import numpy as np

from repro.engine.dtypes import WIRE_DTYPE_BYTES
from repro.compression.base import CompressedPayload, Compressor


class TopKCompressor(Compressor):
    """Send the top ``ratio`` fraction of entries (values + indices)."""

    name = "topk"

    def __init__(self, ratio: float = 0.01) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = float(ratio)

    def _k(self, size: int) -> int:
        return max(int(np.ceil(self.ratio * size)), 1)

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = self._validate(vector)
        k = self._k(vector.size)
        # argpartition selects the k largest magnitudes in O(n).
        idx = np.argpartition(np.abs(vector), vector.size - k)[-k:]
        values = vector[idx]
        # One wire-width float value + one equally wide int32 index per entry.
        compressed_bytes = float(k * (WIRE_DTYPE_BYTES + WIRE_DTYPE_BYTES))
        return CompressedPayload(
            data={
                "indices": idx.astype(np.int64),
                "values": values,
                "size": np.array([vector.size]),
            },
            original_size=vector.size,
            compressed_bytes=compressed_bytes,
            dtype=vector.dtype,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        size = int(payload.data["size"][0])
        dense = np.zeros(size, dtype=payload.dtype)
        dense[payload.data["indices"]] = payload.data["values"]
        return dense
