"""signSGD-style 1-bit quantization with a magnitude scale."""

from __future__ import annotations

import numpy as np

from repro.engine.dtypes import WIRE_DTYPE_BYTES
from repro.compression.base import CompressedPayload, Compressor


class SignSGDCompressor(Compressor):
    """Transmit the sign of each entry plus one global scale (mean |g|).

    The scale keeps the reconstructed gradient's magnitude comparable to the
    original, which is the common "scaled signSGD" variant used when signs
    are averaged rather than majority-voted.
    """

    name = "signsgd"

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = self._validate(vector)
        scale = float(np.mean(np.abs(vector)))
        signs = np.sign(vector).astype(np.int8)
        # Zero entries keep sign 0; they transmit as zeros.
        compressed_bytes = vector.size / 8.0 + WIRE_DTYPE_BYTES
        return CompressedPayload(
            data={"signs": signs, "scale": np.array([scale])},
            original_size=vector.size,
            compressed_bytes=float(compressed_bytes),
            dtype=vector.dtype,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        scale = payload.dtype.type(payload.data["scale"][0])
        return payload.data["signs"].astype(payload.dtype) * scale
