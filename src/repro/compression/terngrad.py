"""TernGrad: stochastic ternary quantization {-1, 0, +1} * s."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.dtypes import WIRE_DTYPE_BYTES
from repro.compression.base import CompressedPayload, Compressor
from repro.utils.rng import new_rng


class TernGradCompressor(Compressor):
    """Quantize each entry to ternary levels with probability |g|/max|g|.

    The estimator is unbiased: E[q_i] = g_i.
    """

    name = "terngrad"

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._rng = new_rng(seed)

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = self._validate(vector)
        scale = float(np.max(np.abs(vector)))
        if scale == 0.0:
            ternary = np.zeros(vector.size, dtype=np.int8)
        else:
            prob = np.abs(vector) / scale
            keep = self._rng.random(vector.size) < prob
            ternary = (np.sign(vector) * keep).astype(np.int8)
        # 2 bits per entry plus the scale.
        compressed_bytes = vector.size / 4.0 + WIRE_DTYPE_BYTES
        return CompressedPayload(
            data={"ternary": ternary, "scale": np.array([scale])},
            original_size=vector.size,
            compressed_bytes=float(compressed_bytes),
            dtype=vector.dtype,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        scale = payload.dtype.type(payload.data["scale"][0])
        return payload.data["ternary"].astype(payload.dtype) * scale
