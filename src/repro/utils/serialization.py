"""Checkpoint serialization: save/load model and trainer state as ``.npz``.

The original system checkpoints PyTorch state dicts; here checkpoints are
NumPy archives so simulated runs (e.g. the long Table-I sweeps) can be
resumed or inspected offline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(
    path: str | Path,
    state: Mapping[str, np.ndarray],
    metadata: Optional[Mapping[str, object]] = None,
) -> Path:
    """Write a parameter state (and optional JSON-serializable metadata) to ``path``.

    The ``.npz`` suffix is appended if missing.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: np.asarray(value) for name, value in state.items()}
    if _META_KEY in arrays:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    meta_json = json.dumps(dict(metadata or {}))
    arrays[_META_KEY] = np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(path: str | Path) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Returns ``(state, metadata)``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        state = {name: archive[name].copy() for name in archive.files if name != _META_KEY}
        metadata: Dict[str, object] = {}
        if _META_KEY in archive.files:
            raw = bytes(archive[_META_KEY].tobytes())
            metadata = json.loads(raw.decode("utf-8")) if raw else {}
    return state, metadata


def save_model(path: str | Path, model, metadata: Optional[Mapping[str, object]] = None) -> Path:
    """Save a :class:`repro.nn.Module`'s parameters plus metadata."""
    meta = dict(metadata or {})
    meta.setdefault("num_parameters", model.num_parameters())
    return save_checkpoint(path, model.state_dict(), meta)


def load_model(path: str | Path, model) -> Dict[str, object]:
    """Load parameters saved by :func:`save_model` into ``model``; returns metadata."""
    state, metadata = load_checkpoint(path)
    model.load_state_dict(state)
    return metadata
