"""Lightweight logging configuration shared across the package."""

from __future__ import annotations

import logging
import os

_FORMAT = "%(asctime)s [%(levelname)s] %(name)s: %(message)s"
_CONFIGURED = False


def get_logger(name: str) -> logging.Logger:
    """Return a package logger, configuring the root handler on first use.

    The log level can be controlled with the ``REPRO_LOG_LEVEL`` environment
    variable (default ``WARNING`` so test output stays clean).
    """
    global _CONFIGURED
    if not _CONFIGURED:
        level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
        level = getattr(logging, level_name, logging.WARNING)
        logging.basicConfig(level=level, format=_FORMAT)
        _CONFIGURED = True
    return logging.getLogger(name)
