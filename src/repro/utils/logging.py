"""Lightweight logging configuration shared across the package.

Configuration is scoped to the ``"repro"`` package logger — importing the
library must never hijack the root logger of an embedding application
(``logging.basicConfig`` would, silently reformatting every library's
output).  If the application has already attached handlers to the root or
the package logger, those win and this module attaches nothing.
"""

from __future__ import annotations

import logging
import os

_FORMAT = "%(asctime)s [%(levelname)s] %(name)s: %(message)s"
_PACKAGE = "repro"
_CONFIGURED = False


def _configure_package_logger() -> None:
    """Attach one stream handler to the ``repro`` logger (idempotent).

    The log level comes from the ``REPRO_LOG_LEVEL`` environment variable
    (default ``WARNING`` so test output stays clean).  Pre-existing handlers
    on the package or root logger mean the host application owns logging
    configuration; in that case only the level is applied.
    """
    global _CONFIGURED
    if _CONFIGURED:
        return
    _CONFIGURED = True
    package_logger = logging.getLogger(_PACKAGE)
    level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    level = getattr(logging, level_name, logging.WARNING)
    package_logger.setLevel(level)
    if package_logger.handlers or logging.getLogger().handlers:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    package_logger.addHandler(handler)
    # The handler renders repro records; don't also bubble them to the
    # (unconfigured) root logger's lastResort handler.
    package_logger.propagate = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` package hierarchy.

    Names outside the package (no ``repro`` prefix) are nested under it so
    every logger this package creates shares the one scoped handler.
    """
    _configure_package_logger()
    if name != _PACKAGE and not name.startswith(_PACKAGE + "."):
        name = f"{_PACKAGE}.{name}"
    return logging.getLogger(name)
