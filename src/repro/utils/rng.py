"""Deterministic random-number management for simulated distributed training.

Every worker in the simulated cluster, every dataset and every stochastic
component draws from its own :class:`numpy.random.Generator`.  The generators
are derived from a single root seed through ``numpy``'s ``SeedSequence``
spawning mechanism, so experiments are reproducible bit-for-bit regardless of
the number of workers or the order in which components are constructed.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a new :class:`numpy.random.Generator` from ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer, or an existing
        ``SeedSequence``.
    """
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed.

    Used to give every simulated worker its own RNG stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


class SeedSequenceFactory:
    """Hands out child seeds/generators from a root seed, in a stable order.

    The factory records how many children have been spawned so that
    components constructed later in a program receive different streams, yet
    re-running the same program yields identical streams again.
    """

    def __init__(self, root_seed: SeedLike = 0) -> None:
        if isinstance(root_seed, np.random.SeedSequence):
            self._root = root_seed
        else:
            self._root = np.random.SeedSequence(root_seed)
        self._spawned = 0

    @property
    def spawned(self) -> int:
        """Number of child sequences handed out so far."""
        return self._spawned

    def child_sequence(self) -> np.random.SeedSequence:
        """Return the next child ``SeedSequence``."""
        child = self._root.spawn(1)[0]
        # SeedSequence.spawn mutates spawn_key bookkeeping on the parent, so
        # consecutive calls already return distinct children.
        self._spawned += 1
        return child

    def generator(self) -> np.random.Generator:
        """Return a generator built from the next child sequence."""
        return np.random.default_rng(self.child_sequence())

    def generators(self, n: int) -> List[np.random.Generator]:
        """Return ``n`` generators, one per child sequence."""
        return [self.generator() for _ in range(n)]


def derive_worker_seed(base_seed: int, worker_id: int) -> int:
    """Derive a per-worker integer seed that is stable across runs."""
    if worker_id < 0:
        raise ValueError(f"worker_id must be non-negative, got {worker_id}")
    mixed = np.random.SeedSequence([int(base_seed), int(worker_id)])
    return int(mixed.generate_state(1, dtype=np.uint64)[0] % np.iinfo(np.int64).max)


def choice_without_replacement(
    rng: np.random.Generator, population: Sequence[int], k: int
) -> np.ndarray:
    """Sample ``k`` distinct items from ``population`` using ``rng``."""
    if k > len(population):
        raise ValueError(
            f"cannot sample {k} items from population of size {len(population)}"
        )
    return rng.choice(np.asarray(population), size=k, replace=False)
