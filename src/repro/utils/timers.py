"""Small wall-clock timing helpers used by overhead benchmarks (Fig. 8)."""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class Timer:
    """Context-manager stopwatch measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


class StepTimer:
    """Accumulates named timing buckets across many steps.

    Used by the harness to report how much (real) time was spent in compute
    vs. tracker vs. communication bookkeeping.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def add(self, bucket: str, seconds: float) -> None:
        self._totals[bucket] = self._totals.get(bucket, 0.0) + float(seconds)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    def total(self, bucket: str) -> float:
        return self._totals.get(bucket, 0.0)

    def mean(self, bucket: str) -> float:
        count = self._counts.get(bucket, 0)
        if count == 0:
            return 0.0
        return self._totals[bucket] / count

    def buckets(self) -> List[str]:
        return sorted(self._totals.keys())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._totals)
