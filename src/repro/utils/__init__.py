"""Shared utilities: seeded RNG management, parameter flattening, timers.

These helpers are deliberately dependency-free (NumPy only) so every other
subpackage can import them without cycles.
"""

from repro.utils.rng import SeedSequenceFactory, new_rng, spawn_rngs
from repro.utils.flatten import (
    WIRE_DTYPE_BYTES,
    flatten_arrays,
    unflatten_vector,
    tree_map,
    tree_zip_map,
)
from repro.utils.timers import Timer, StepTimer
from repro.utils.logging import get_logger
from repro.utils.serialization import (
    save_checkpoint,
    load_checkpoint,
    save_model,
    load_model,
)

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_model",
    "load_model",
    "SeedSequenceFactory",
    "new_rng",
    "spawn_rngs",
    "WIRE_DTYPE_BYTES",
    "flatten_arrays",
    "unflatten_vector",
    "tree_map",
    "tree_zip_map",
    "Timer",
    "StepTimer",
    "get_logger",
]
