"""Flatten/unflatten utilities for parameter and gradient pytrees.

The simulated communication layer exchanges model state as a single
contiguous ``float64`` vector (mirroring what a fused all-reduce or a
parameter-server push does with a flat buffer).  These helpers convert
between an ordered ``dict`` of named NumPy arrays and that flat vector.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

#: Bytes per element on the simulated wire for the default transport.
#: Re-exported from :mod:`repro.engine.dtypes`, the single owner of the
#: dtype -> wire-bytes mapping: distributed frameworks ship float32 tensors,
#: so every byte-accounting site (cost models, compression ratios, backend
#: records) charges 4 bytes/element regardless of the compute dtype.
from repro.engine.dtypes import WIRE_DTYPE_BYTES

ArrayTree = Mapping[str, np.ndarray]


def flatten_arrays(tree: ArrayTree) -> Tuple[np.ndarray, List[Tuple[str, Tuple[int, ...]]]]:
    """Flatten an ordered mapping of arrays into one 1-D vector.

    Returns the vector and a spec ``[(name, shape), ...]`` that can be used
    by :func:`unflatten_vector` to rebuild the mapping.
    """
    parts: List[np.ndarray] = []
    spec: List[Tuple[str, Tuple[int, ...]]] = []
    for name, arr in tree.items():
        arr = np.asarray(arr)
        parts.append(arr.ravel())
        spec.append((name, arr.shape))
    if not parts:
        return np.zeros(0, dtype=np.float64), spec
    flat = np.concatenate(parts)
    # Preserve the tree's float dtype (float32 trees stay float32); only
    # non-float trees are promoted to the engine default.
    if not np.issubdtype(flat.dtype, np.floating):
        flat = flat.astype(np.float64)
    return flat, spec


def unflatten_vector(
    vector: np.ndarray, spec: Sequence[Tuple[str, Tuple[int, ...]]]
) -> Dict[str, np.ndarray]:
    """Rebuild the named-array mapping described by ``spec`` from ``vector``."""
    vector = np.asarray(vector).ravel()
    out: Dict[str, np.ndarray] = {}
    offset = 0
    for name, shape in spec:
        size = int(np.prod(shape)) if shape else 1
        chunk = vector[offset : offset + size]
        if chunk.size != size:
            raise ValueError(
                f"vector too short while unflattening '{name}': needed {size}, "
                f"got {chunk.size}"
            )
        out[name] = chunk.reshape(shape).copy()
        offset += size
    if offset != vector.size:
        raise ValueError(
            f"vector length {vector.size} does not match spec total {offset}"
        )
    return out


def tree_map(fn: Callable[[np.ndarray], np.ndarray], tree: ArrayTree) -> Dict[str, np.ndarray]:
    """Apply ``fn`` to every leaf array, preserving key order."""
    return {name: fn(arr) for name, arr in tree.items()}


def tree_zip_map(
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    left: ArrayTree,
    right: ArrayTree,
) -> Dict[str, np.ndarray]:
    """Apply a binary ``fn`` leaf-wise to two mappings with identical keys."""
    if set(left.keys()) != set(right.keys()):
        missing = set(left.keys()) ^ set(right.keys())
        raise KeyError(f"mismatched parameter trees, differing keys: {sorted(missing)}")
    return {name: fn(left[name], right[name]) for name in left.keys()}


def total_size(tree: ArrayTree) -> int:
    """Total number of scalar elements across all leaves."""
    return int(sum(np.asarray(a).size for a in tree.values()))


def total_bytes(tree: ArrayTree, dtype_bytes: int = WIRE_DTYPE_BYTES) -> int:
    """Total transferred bytes assuming ``dtype_bytes`` per element.

    Defaults to :data:`WIRE_DTYPE_BYTES` (float32 transport), shared with the
    communication cost models and the compression layer.
    """
    return total_size(tree) * int(dtype_bytes)
