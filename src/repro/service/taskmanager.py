"""The task-manager half of the controller/task-manager split.

The controller (:mod:`repro.service.controller`) only ever *writes intent*
to the store — new ``QUEUED`` jobs, ``cancel_requested`` flags.  The
:class:`TaskManager` owns all execution: a small pool of daemon worker
threads claim queued jobs atomically
(:meth:`~repro.service.store.JobStore.claim_next`), execute them through
the one façade (:func:`repro.api.run`) with a ``cancel_check`` bound to the
job's flag, and drive the remaining lifecycle transitions:

* normal completion → persist records, ``RUNNING → DONE``;
* :class:`~repro.scenarios.runner.RunCancelled` → ``RUNNING → CANCELLED``;
* any other exception → ``RUNNING → FAILED`` with the traceback's final
  line stored as the job ``error``.

Workers park on a :class:`threading.Condition` when the queue is empty and
are woken by :meth:`notify` on each submission, so an idle service costs
nothing but one blocked thread per worker.

Tests inject a fake ``runner`` callable to script completions, failures and
cancellation races deterministically without training anything.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable

from repro import telemetry
from repro.api import RunRequest, RunResult
from repro.api import run as api_run
from repro.scenarios.runner import RunCancelled
from repro.service.exceptions import IllegalTransition
from repro.service.jobs import CANCELLED, DONE, FAILED, RUNNING, Job
from repro.service.store import JobStore

__all__ = ["TaskManager"]

Runner = Callable[..., RunResult]


class TaskManager:
    """Worker pool executing queued jobs from a :class:`JobStore`.

    Parameters
    ----------
    store:
        The shared job store (also used by the controller).
    workers:
        Number of concurrent worker threads.
    runner:
        The execution callable, ``runner(request, cancel_check=...) ->
        RunResult``.  Defaults to :func:`repro.api.run`; tests substitute a
        scripted fake.
    results_store:
        Optional persistent run store (path or
        :class:`~repro.results.store.ResultsStore`).  When set, every
        completed job is also appended there via the runner's ``record_to``
        hook, so service-submitted runs land in the same history as direct
        ``repro.api.run`` calls.  The kwarg is only forwarded when set, so
        fake runners without a ``record_to`` parameter keep working.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 2,
        runner: Runner = api_run,
        results_store: Any = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.runner = runner
        self.results_store = results_store
        self.num_workers = workers
        self._threads: list[threading.Thread] = []
        self._wakeup = threading.Condition()
        self._stopping = False
        self._started = False

    # -- pool lifecycle ----------------------------------------------------- #
    def start(self) -> None:
        """Recover stranded jobs, then start the worker threads."""
        if self._started:
            return
        self.store.recover()
        self._stopping = False
        self._started = True
        for i in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, *, timeout: float = 10.0) -> None:
        """Ask workers to exit after their current job and join them."""
        with self._wakeup:
            self._stopping = True
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self._started = False

    def notify(self) -> None:
        """Wake one parked worker (called by the controller on submit)."""
        with self._wakeup:
            self._wakeup.notify()

    # -- execution ---------------------------------------------------------- #
    def _worker_loop(self) -> None:
        while True:
            with self._wakeup:
                if self._stopping:
                    return
            job = self.store.claim_next()
            if job is None:
                with self._wakeup:
                    if self._stopping:
                        return
                    self._wakeup.wait(timeout=0.5)
                continue
            self.execute(job)

    def run_pending_once(self) -> int:
        """Synchronously drain the queue in the calling thread.

        Deterministic single-threaded execution for tests and for
        ``repro submit --local``-style flows; returns the number of jobs
        executed.
        """
        executed = 0
        while True:
            job = self.store.claim_next()
            if job is None:
                return executed
            self.execute(job)
            executed += 1

    def execute(self, job: Job) -> Job:
        """Execute one already-``RUNNING`` job to a terminal state."""
        if job.started_at is not None and job.created_at is not None:
            telemetry.observe(
                "repro_job_queue_wait_seconds",
                max(job.started_at - job.created_at, 0.0),
            )
        cancel_check = lambda: self.store.cancel_requested(job.id)  # noqa: E731
        extra: dict[str, Any] = {}
        if self.results_store is not None:
            extra["record_to"] = self.results_store
        run_t0 = time.perf_counter()
        try:
            request = RunRequest.from_dict(job.request)
            with telemetry.span("taskmanager.job") as job_span:
                job_span.set("action", job.action)
                result = self.runner(request, cancel_check=cancel_check, **extra)
        except RunCancelled:
            return self._finish(job, CANCELLED, run_t0)
        except IllegalTransition:
            raise
        except Exception as exc:  # noqa: BLE001 — FAILED captures all worker errors
            error = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            return self._finish(job, FAILED, run_t0, error=error)
        payload = result.to_dict()
        self.store.save_result(
            job.id,
            records=payload["records"],
            meta=payload["meta"],
            endpoints=payload.get("endpoints"),
        )
        # DONE wins any cancel race: only this worker moves the job out of
        # RUNNING, so a cancel_requested flag set after the last poll is a
        # no-op on state.
        return self._finish(job, DONE, run_t0)

    def _finish(
        self, job: Job, state: str, run_t0: float, *, error: "str | None" = None
    ) -> Job:
        """Transition ``job`` out of RUNNING and record its lifecycle metrics."""
        kwargs = {"error": error} if error is not None else {}
        finished = self.store.transition(job.id, RUNNING, state, **kwargs)
        telemetry.count("repro_jobs_total", state=state)
        telemetry.observe("repro_job_run_seconds", time.perf_counter() - run_t0)
        cancel_time = self.store.pop_cancel_time(job.id)
        if cancel_time is not None and state == CANCELLED:
            telemetry.observe(
                "repro_job_cancel_latency_seconds",
                max(time.monotonic() - cancel_time, 0.0),
            )
        return finished

    # -- introspection ------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._started and any(t.is_alive() for t in self._threads)

    def describe(self) -> dict[str, Any]:
        return {
            "workers": self.num_workers,
            "running": self.running,
            "runner": getattr(self.runner, "__name__", repr(self.runner)),
            "records_results": self.results_store is not None,
        }
