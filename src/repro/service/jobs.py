"""The job lifecycle state machine.

A *job* is one accepted submission (a validated :class:`repro.api.RunRequest`
plus bookkeeping) moving through::

    QUEUED ──▶ RUNNING ──▶ DONE
       │          ├──────▶ FAILED
       └──────────┴──────▶ CANCELLED

:data:`TRANSITIONS` is the whole legal state machine; everything else is an
:class:`~repro.service.exceptions.IllegalTransition`.  Cancellation is
cooperative and race-free by construction:

* cancelling a ``QUEUED`` job transitions it to ``CANCELLED`` directly (it
  never starts);
* cancelling a ``RUNNING`` job only sets the ``cancel_requested`` flag — the
  worker polls it between runs via ``cancel_check`` and performs the
  ``RUNNING → CANCELLED`` transition itself.  Only the owning worker ever
  moves a job out of ``RUNNING``, so if the run finishes first, ``DONE``
  wins and the late cancel is a no-op on state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Optional

from repro.service.exceptions import IllegalTransition

__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "validate_transition",
]

QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: state → states it may legally move to.  Terminal states map to nothing.
TRANSITIONS: Mapping[str, FrozenSet[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

#: States counted against a tenant's active-job quota.
ACTIVE_STATES = frozenset({QUEUED, RUNNING})

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


def validate_transition(old: str, new: str) -> None:
    """Raise :class:`IllegalTransition` unless ``old → new`` is legal."""
    if old not in TRANSITIONS:
        raise IllegalTransition(f"unknown job state {old!r}")
    if new not in TRANSITIONS:
        raise IllegalTransition(f"unknown job state {new!r}")
    if new not in TRANSITIONS[old]:
        raise IllegalTransition(
            f"illegal job transition {old} -> {new}; "
            f"legal from {old}: {sorted(TRANSITIONS[old]) or 'none (terminal)'}"
        )


@dataclass
class Job:
    """One submission's full service-side state (store row ↔ API view)."""

    id: str
    tenant: str
    action: str
    request: Dict[str, Any]
    state: str = QUEUED
    cancel_requested: bool = False
    error: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    endpoints: Dict[str, Any] = field(default_factory=dict)
    num_records: int = 0
    seq: Optional[int] = None
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """The public JSON view served by ``GET /v1/jobs/<id>``."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "action": self.action,
            "state": self.state,
            "cancel_requested": self.cancel_requested,
            "request": dict(self.request),
            "num_records": self.num_records,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.meta:
            payload["meta"] = dict(self.meta)
        if self.endpoints:
            payload["endpoints"] = dict(self.endpoints)
        return payload

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "Job":
        """Rehydrate from a :mod:`sqlite3` row (see the store's schema)."""
        return cls(
            id=row["id"],
            tenant=row["tenant"],
            action=row["action"],
            request=json.loads(row["request"]),
            state=row["state"],
            cancel_requested=bool(row["cancel_requested"]),
            error=row["error"],
            meta=json.loads(row["meta"]) if row["meta"] else {},
            endpoints=json.loads(row["endpoints"]) if row["endpoints"] else {},
            num_records=row["num_records"],
            seq=row["seq"],
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
        )
