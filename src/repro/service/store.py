"""Persistent, schema-versioned SQLite job queue.

One :class:`JobStore` owns a single SQLite database holding two tables:

``jobs``
    One row per submission.  ``seq`` (AUTOINCREMENT) is the stable global
    ordering used for marker pagination; ``state`` transitions are enforced
    *in SQL* with ``UPDATE ... WHERE state = ?`` so two threads can never
    both claim a job or double-finish it.

``job_records``
    The JSON-ready result records of finished jobs, one row per record in
    run order, paginated with ``LIMIT``/``OFFSET``.

The schema is versioned in ``schema_version``; opening a store with an
unknown (newer) version fails loudly rather than corrupting data, and the
version row is how future PRs add migrations.

Crash/restart recovery: :meth:`JobStore.recover` re-queues any job left
``RUNNING`` by a dead service process, so restarting the service resumes
work instead of stranding jobs (exercised by the restart-persistence tests).

Thread-safety: one shared connection guarded by an :class:`threading.RLock`
(`check_same_thread=False`), with ``BEGIN IMMEDIATE`` around the
claim-next-job read-modify-write.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.service.exceptions import Conflict, IllegalTransition, NotFound
from repro.service.jobs import (
    ACTIVE_STATES,
    CANCELLED,
    QUEUED,
    RUNNING,
    Job,
    validate_transition,
)

__all__ = ["JobStore", "SCHEMA_VERSION"]

#: Bump when the table layout changes; add a migration in ``_ensure_schema``.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_version (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    id TEXT NOT NULL UNIQUE,
    tenant TEXT NOT NULL,
    action TEXT NOT NULL,
    request TEXT NOT NULL,
    state TEXT NOT NULL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    meta TEXT,
    endpoints TEXT,
    num_records INTEGER NOT NULL DEFAULT 0,
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state, seq);
CREATE INDEX IF NOT EXISTS idx_jobs_tenant ON jobs (tenant, seq);
CREATE TABLE IF NOT EXISTS job_records (
    job_id TEXT NOT NULL,
    idx INTEGER NOT NULL,
    record TEXT NOT NULL,
    PRIMARY KEY (job_id, idx)
);
"""

_JOB_COLUMNS = (
    "seq, id, tenant, action, request, state, cancel_requested, "
    "error, meta, endpoints, num_records, created_at, started_at, finished_at"
)


class JobStore:
    """SQLite-backed persistent job queue (see module docstring).

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` for an ephemeral store (used
        by tests that don't exercise restart persistence).
    clock:
        Injectable time source for ``created_at``/``started_at``/
        ``finished_at`` stamps (default :func:`time.time`).
    """

    def __init__(self, path: str = ":memory:", *, clock=time.time):
        self.path = path
        self._clock = clock
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        # In-memory cancel-request stamps (job_id -> monotonic seconds) so
        # the TaskManager can report observed cancel latency; advisory only,
        # never persisted.
        self._cancel_times: Dict[str, float] = {}
        self._ensure_schema()

    # -- lifecycle of the store itself ------------------------------------- #
    def _ensure_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute("SELECT version FROM schema_version").fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO schema_version (version) VALUES (?)", (SCHEMA_VERSION,)
                )
            elif row["version"] != SCHEMA_VERSION:
                raise RuntimeError(
                    f"job store {self.path!r} has schema version {row['version']}, "
                    f"this build supports {SCHEMA_VERSION}"
                )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def recover(self) -> int:
        """Re-queue jobs stranded ``RUNNING`` by a crashed service process.

        Returns the number of jobs re-queued.  Call once at service startup,
        before workers start claiming.
        """
        with self._lock, self._conn:
            cur = self._conn.execute(
                "UPDATE jobs SET state = ?, started_at = NULL WHERE state = ?",
                (QUEUED, RUNNING),
            )
            return cur.rowcount

    # -- creation / lookup -------------------------------------------------- #
    def create(self, tenant: str, action: str, request: Dict[str, Any]) -> Job:
        """Persist a new ``QUEUED`` job and return it (with id and seq)."""
        job_id = uuid.uuid4().hex
        now = float(self._clock())
        with self._lock, self._conn:
            cur = self._conn.execute(
                "INSERT INTO jobs (id, tenant, action, request, state, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (job_id, tenant, action, json.dumps(request), QUEUED, now),
            )
            seq = cur.lastrowid
        return Job(
            id=job_id,
            tenant=tenant,
            action=action,
            request=dict(request),
            state=QUEUED,
            seq=seq,
            created_at=now,
        )

    def get(self, job_id: str, *, tenant: Optional[str] = None) -> Job:
        """Fetch one job; tenant-scoped lookups 404 on other tenants' jobs."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None or (tenant is not None and row["tenant"] != tenant):
            raise NotFound(f"no such job {job_id!r}")
        return Job.from_row(row)

    def list_jobs(
        self,
        *,
        tenant: Optional[str] = None,
        marker: Optional[str] = None,
        limit: int = 20,
        state: Optional[str] = None,
    ) -> Tuple[List[Job], Optional[str]]:
        """Marker-paginated listing, oldest first.

        ``marker`` is the id of the last job of the previous page (Trove
        style); returns ``(jobs, next_marker)`` where ``next_marker`` is
        ``None`` on the final page.
        """
        clauses, params = ["1=1"], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        if marker is not None:
            marker_job = self.get(marker, tenant=tenant)
            clauses.append("seq > ?")
            params.append(marker_job.seq)
        limit = max(1, int(limit))
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE {' AND '.join(clauses)} "
                f"ORDER BY seq LIMIT ?",
                (*params, limit + 1),
            ).fetchall()
        jobs = [Job.from_row(row) for row in rows[:limit]]
        next_marker = jobs[-1].id if len(rows) > limit else None
        return jobs, next_marker

    def count_active(self, tenant: str) -> int:
        """Jobs currently counting against ``tenant``'s quota."""
        placeholders = ", ".join("?" for _ in ACTIVE_STATES)
        with self._lock:
            row = self._conn.execute(
                f"SELECT COUNT(*) AS n FROM jobs WHERE tenant = ? "
                f"AND state IN ({placeholders})",
                (tenant, *sorted(ACTIVE_STATES)),
            ).fetchone()
        return int(row["n"])

    def counts(self) -> Dict[str, int]:
        """Job counts per state across all tenants (health/metrics gauges)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        return {row["state"]: int(row["n"]) for row in rows}

    # -- the state machine --------------------------------------------------- #
    def transition(self, job_id: str, old: str, new: str, *, error: Optional[str] = None) -> Job:
        """Atomically move ``job_id`` from ``old`` to ``new``.

        Validates against :data:`~repro.service.jobs.TRANSITIONS` first, then
        performs ``UPDATE ... WHERE state = old`` so a concurrent transition
        loses cleanly (raises :class:`Conflict`) instead of clobbering.
        """
        validate_transition(old, new)
        now = float(self._clock())
        sets = ["state = ?"]
        params: List[Any] = [new]
        if new == RUNNING:
            sets.append("started_at = ?")
            params.append(now)
        elif old == RUNNING or new == CANCELLED:
            sets.append("finished_at = ?")
            params.append(now)
        if error is not None:
            sets.append("error = ?")
            params.append(error)
        with self._lock, self._conn:
            cur = self._conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE id = ? AND state = ?",
                (*params, job_id, old),
            )
            if cur.rowcount == 0:
                current = self.get(job_id)  # raises NotFound if truly absent
                raise IllegalTransition(
                    f"job {job_id} is {current.state}, not {old}; "
                    f"cannot transition to {new}"
                )
        return self.get(job_id)

    def claim_next(self) -> Optional[Job]:
        """Atomically claim the oldest ``QUEUED`` job, moving it ``RUNNING``.

        Returns ``None`` when the queue is empty.  ``BEGIN IMMEDIATE`` takes
        the write lock up front so concurrent workers serialize here and can
        never claim the same job.
        """
        claim_t0 = time.perf_counter()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    f"SELECT {_JOB_COLUMNS} FROM jobs WHERE state = ? "
                    "ORDER BY seq LIMIT 1",
                    (QUEUED,),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                self._conn.execute(
                    "UPDATE jobs SET state = ?, started_at = ? WHERE seq = ?",
                    (RUNNING, float(self._clock()), row["seq"]),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        # Claim contention: time to win the write lock and commit the claim.
        telemetry.observe("repro_store_claim_seconds", time.perf_counter() - claim_t0)
        return self.get(row["id"])

    def request_cancel(self, job_id: str, *, tenant: Optional[str] = None) -> Job:
        """Cooperatively cancel a job (see :mod:`repro.service.jobs`).

        ``QUEUED`` jobs are cancelled immediately; ``RUNNING`` jobs get the
        ``cancel_requested`` flag and the worker finishes the transition.
        Cancelling a terminal job raises :class:`Conflict`.
        """
        job = self.get(job_id, tenant=tenant)
        if job.state == QUEUED:
            try:
                return self.transition(job_id, QUEUED, CANCELLED)
            except IllegalTransition:
                job = self.get(job_id, tenant=tenant)  # raced with a worker claim
        if job.state == RUNNING:
            with self._lock, self._conn:
                self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,)
                )
                self._cancel_times.setdefault(job_id, time.monotonic())
            return self.get(job_id)
        raise Conflict(f"job {job_id} is {job.state}; cannot cancel a terminal job")

    def pop_cancel_time(self, job_id: str) -> Optional[float]:
        """Consume the monotonic stamp of ``job_id``'s first cancel request."""
        with self._lock:
            return self._cancel_times.pop(job_id, None)

    def cancel_requested(self, job_id: str) -> bool:
        """The worker-side ``cancel_check`` poll."""
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return bool(row and row["cancel_requested"])

    # -- results -------------------------------------------------------------- #
    def save_result(
        self,
        job_id: str,
        *,
        records: Sequence[Dict[str, Any]],
        meta: Dict[str, Any],
        endpoints: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist a finished job's records and meta (before DONE transition)."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM job_records WHERE job_id = ?", (job_id,))
            self._conn.executemany(
                "INSERT INTO job_records (job_id, idx, record) VALUES (?, ?, ?)",
                [(job_id, i, json.dumps(record)) for i, record in enumerate(records)],
            )
            self._conn.execute(
                "UPDATE jobs SET meta = ?, endpoints = ?, num_records = ? WHERE id = ?",
                (
                    json.dumps(meta),
                    json.dumps(endpoints) if endpoints else None,
                    len(records),
                    job_id,
                ),
            )

    def get_records(
        self,
        job_id: str,
        *,
        tenant: Optional[str] = None,
        offset: int = 0,
        limit: int = 50,
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Page through a job's result records; returns ``(records, total)``."""
        job = self.get(job_id, tenant=tenant)
        offset = max(0, int(offset))
        limit = max(1, int(limit))
        with self._lock:
            rows = self._conn.execute(
                "SELECT record FROM job_records WHERE job_id = ? "
                "ORDER BY idx LIMIT ? OFFSET ?",
                (job_id, limit, offset),
            ).fetchall()
        return [json.loads(row["record"]) for row in rows], job.num_records
