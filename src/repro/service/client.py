"""Thin stdlib HTTP client for the experiment service.

Mirrors the CRUD split of the container-service-extension client: one
:class:`ServiceClient` per (server, tenant) with a method per endpoint,
returning parsed JSON bodies and raising :class:`ServiceClientError`
(status + structured error payload) on non-2xx responses.  Used by
``repro submit``, the end-to-end tests, and the load benchmark.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Union
from urllib.parse import urlencode

from repro.service.jobs import TERMINAL_STATES

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A non-2xx service response, with the parsed error body when present."""

    def __init__(self, status: int, body: Dict[str, Any]):
        error = body.get("error", {}) if isinstance(body, dict) else {}
        message = error.get("message") or f"service returned HTTP {status}"
        super().__init__(message)
        self.status = status
        self.code = error.get("code", "unknown")
        self.body = body


class ServiceClient:
    """JSON client over :mod:`urllib` — no third-party HTTP stack.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8080"`` (no trailing slash needed).
    tenant:
        Sent as the ``X-Tenant`` header on every request.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, *, tenant: str = "default", timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ----------------------------------------------------------- #
    def _request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        url = self.base_url + path
        if params:
            clean = {k: v for k, v in params.items() if v is not None}
            if clean:
                url += "?" + urlencode(clean)
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json", "X-Tenant": self.tenant},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {}
            raise ServiceClientError(exc.code, payload) from exc

    # -- endpoints ------------------------------------------------------------ #
    def describe(self) -> Dict[str, Any]:
        return self._request("GET", "/v1")

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def metrics(self) -> str:
        """Raw Prometheus text exposition (``GET /v1/metrics``, not JSON)."""
        request = urllib.request.Request(
            self.base_url + "/v1/metrics",
            method="GET",
            headers={"X-Tenant": self.tenant},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {}
            raise ServiceClientError(exc.code, payload) from exc

    def submit(self, action: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Submit ``{action: payload}``; returns the queued job view."""
        return self._request("POST", "/v1/jobs", body={action: dict(payload)})["job"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(
        self,
        *,
        marker: Optional[str] = None,
        limit: Optional[int] = None,
        state: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self._request(
            "GET", "/v1/jobs", params={"marker": marker, "limit": limit, "state": state}
        )

    def records(
        self, job_id: str, *, offset: int = 0, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        return self._request(
            "GET", f"/v1/jobs/{job_id}/records", params={"offset": offset, "limit": limit}
        )

    def iter_records(self, job_id: str, *, page_size: int = 50) -> Iterator[Dict[str, Any]]:
        """Yield every record, paging with ``offset`` under the hood."""
        offset = 0
        while True:
            page = self.records(job_id, offset=offset, limit=page_size)
            yield from page["records"]
            offset += page["count"]
            if page["count"] == 0 or offset >= page["total"]:
                return

    def history_scenarios(self) -> Dict[str, Any]:
        """Scenarios with recorded run history (``GET /v1/history``)."""
        return self._request("GET", "/v1/history")

    def history(
        self,
        scenario: str,
        *,
        metrics: Optional[Union[str, Sequence[str]]] = None,
        last: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One scenario's trend series — the ``history_payload`` shape.

        ``metrics`` restricts the series: a comma-separated string or a
        sequence of metric names; ``last`` keeps only the most recent K
        runs per series.
        """
        if metrics is not None and not isinstance(metrics, str):
            metrics = ",".join(metrics)
        return self._request(
            "GET",
            f"/v1/history/{scenario}",
            params={"metrics": metrics, "last": last},
        )

    def history_runs(
        self,
        scenario: str,
        *,
        marker: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Marker-paginated stored runs of one scenario, oldest first."""
        return self._request(
            "GET",
            f"/v1/history/{scenario}/runs",
            params={"marker": marker, "limit": limit},
        )

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/action", body={"cancel": {}})["job"]

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll_interval: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or raise TimeoutError)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout:.0f}s"
                )
            time.sleep(poll_interval)
