"""The controller half of the controller/task-manager split.

Transport-agnostic request handling, in the OpenStack Trove style: every
public method takes plain Python data (tenant, body dicts, query params)
and returns a JSON-ready dict, raising
:class:`~repro.service.exceptions.ServiceError` subclasses for every
failure.  The WSGI app (:mod:`repro.service.app`) is a thin routing shim
over this class, and the tests drive it directly — no sockets needed for
controller-level coverage.

Submission pipeline (``submit``):

1. :func:`~repro.service.schemas.get_action` — exactly one action key;
2. :func:`repro.api.apply_aliases` — deprecated spellings canonicalized;
3. :func:`~repro.service.schemas.validate_payload` — structural schema check
   (unknown fields, required fields, JSON types);
4. :func:`repro.api.request_from_action` + deep
   :meth:`~repro.api.RunRequest.validate` — full scenario-dataclass
   validation, so a bad grid is a 400 at submit time, not a FAILED job;
5. quota + rate-limit admission (:class:`~repro.service.quotas.QuotaManager`);
6. persist ``QUEUED``, wake a worker.

Job actions mirror submissions — the body holds exactly one action key
(``{"cancel": {}}``) dispatched to a ``_action_<name>`` method.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Mapping, Optional

from repro import telemetry
from repro.api import ApiError, apply_aliases, request_from_action
from repro.scenarios.registry import scenario_names
from repro.scenarios.spec import ScenarioError
from repro.service.exceptions import BadRequest, NotFound
from repro.service.jobs import JOB_STATES
from repro.service.quotas import QuotaManager
from repro.service.schemas import SCHEMAS, get_action, validate_payload
from repro.service.store import JobStore
from repro.service.taskmanager import TaskManager

__all__ = ["ServiceController"]

_MAX_PAGE = 200


def _clamp_limit(raw: Optional[Any], default: int) -> int:
    if raw is None:
        return default
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise BadRequest(f"limit must be an integer, got {raw!r}") from None
    if value < 1:
        raise BadRequest(f"limit must be >= 1, got {value}")
    return min(value, _MAX_PAGE)


class ServiceController:
    """Validated request handling over a store, quotas, and a task manager."""

    schemas = SCHEMAS

    def __init__(
        self,
        store: JobStore,
        taskmanager: TaskManager,
        *,
        quotas: Optional[QuotaManager] = None,
        results: Optional[Any] = None,
    ):
        self.store = store
        self.taskmanager = taskmanager
        self.quotas = quotas if quotas is not None else QuotaManager()
        self.results = results

    # -- submissions --------------------------------------------------------- #
    def submit(self, tenant: str, body: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate and enqueue one submission; returns the queued job view."""
        action, payload = get_action(body)
        try:
            payload = apply_aliases(payload)
        except ApiError as exc:
            raise BadRequest(str(exc)) from exc
        validate_payload(action, payload)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                request = request_from_action(action, payload).validate()
        except (ApiError, ScenarioError) as exc:
            raise BadRequest(str(exc)) from exc
        self.quotas.check_submit(tenant, self.store.count_active(tenant))
        job = self.store.create(tenant, action, request.to_dict())
        self.taskmanager.notify()
        return {"job": job.to_dict()}

    # -- reads --------------------------------------------------------------- #
    def show(self, tenant: str, job_id: str) -> Dict[str, Any]:
        """One job's full status view (tenant-scoped)."""
        return {"job": self.store.get(job_id, tenant=tenant).to_dict()}

    def index(
        self,
        tenant: str,
        *,
        marker: Optional[str] = None,
        limit: Optional[Any] = None,
        state: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Marker-paginated job listing for ``tenant``, oldest first."""
        if state is not None and state not in JOB_STATES:
            raise BadRequest(f"unknown state filter {state!r}; one of {list(JOB_STATES)}")
        jobs, next_marker = self.store.list_jobs(
            tenant=tenant,
            marker=marker,
            limit=_clamp_limit(limit, default=20),
            state=state,
        )
        body: Dict[str, Any] = {"jobs": [job.to_dict() for job in jobs]}
        if next_marker is not None:
            body["next_marker"] = next_marker
        return body

    def records(
        self,
        tenant: str,
        job_id: str,
        *,
        offset: Optional[Any] = None,
        limit: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Offset-paginated result records of one (finished) job."""
        try:
            offset_value = int(offset) if offset is not None else 0
        except (TypeError, ValueError):
            raise BadRequest(f"offset must be an integer, got {offset!r}") from None
        if offset_value < 0:
            raise BadRequest(f"offset must be >= 0, got {offset_value}")
        records, total = self.store.get_records(
            job_id,
            tenant=tenant,
            offset=offset_value,
            limit=_clamp_limit(limit, default=50),
        )
        return {
            "records": records,
            "offset": offset_value,
            "count": len(records),
            "total": total,
        }

    # -- run history ---------------------------------------------------------- #
    def _results_store(self) -> Any:
        if self.results is None:
            raise NotFound(
                "run history is not enabled on this service "
                "(start it with a results store, e.g. repro serve --results-db)"
            )
        return self.results

    def history_index(self, _tenant: str) -> Dict[str, Any]:
        """Every scenario with recorded history (global, not tenant-scoped)."""
        return {"scenarios": self._results_store().scenarios()}

    def history_show(
        self,
        _tenant: str,
        scenario: str,
        *,
        metrics: Optional[str] = None,
        last: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """One scenario's trend series — the same payload the CLI renders.

        Built by :func:`repro.results.history_payload`, which also backs
        ``repro scenario history --json``; the two surfaces therefore return
        identical series for the same store by construction.
        """
        store = self._results_store()
        names = [m.strip() for m in metrics.split(",") if m.strip()] if metrics else None
        last_value: Optional[int] = None
        if last is not None:
            try:
                last_value = int(last)
            except (TypeError, ValueError):
                raise BadRequest(f"last must be an integer, got {last!r}") from None
            if last_value < 1:
                raise BadRequest(f"last must be >= 1, got {last_value}")
        from repro.results import history_payload

        payload = history_payload(store, scenario, metrics=names, last=last_value)
        if not payload["series"]:
            raise NotFound(f"no recorded history for scenario {scenario!r}")
        return payload

    def history_runs(
        self,
        _tenant: str,
        scenario: str,
        *,
        marker: Optional[str] = None,
        limit: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Marker-paginated stored runs of one scenario, oldest first."""
        runs, next_marker = self._results_store().runs(
            scenario=scenario,
            marker=marker,
            limit=_clamp_limit(limit, default=20),
        )
        body: Dict[str, Any] = {"runs": [run.to_dict() for run in runs]}
        if next_marker is not None:
            body["next_marker"] = next_marker
        return body

    # -- job actions ---------------------------------------------------------- #
    def job_action(self, tenant: str, job_id: str, body: Mapping[str, Any]) -> Dict[str, Any]:
        """Dispatch ``{action: payload}`` on an existing job (Trove style)."""
        if not isinstance(body, Mapping) or len(body) != 1:
            raise BadRequest(
                "job action body must have exactly one action key, e.g. {\"cancel\": {}}"
            )
        (name, payload), = body.items()
        handler = getattr(self, f"_action_{name}", None)
        if handler is None:
            raise BadRequest(f"unknown job action {name!r}; one of ['cancel']")
        return handler(tenant, job_id, payload or {})

    def _action_cancel(
        self, tenant: str, job_id: str, _payload: Mapping[str, Any]
    ) -> Dict[str, Any]:
        job = self.store.request_cancel(job_id, tenant=tenant)
        return {"job": job.to_dict()}

    # -- introspection --------------------------------------------------------- #
    def describe(self) -> Dict[str, Any]:
        """Service metadata: actions, schemas, registered scenarios, quotas."""
        return {
            "actions": sorted(self.schemas),
            "schemas": self.schemas,
            "scenarios": scenario_names(),
            "quotas": {
                "max_active_jobs": self.quotas.max_active_jobs,
                "rate": self.quotas.rate,
                "burst": self.quotas.burst,
            },
            "taskmanager": self.taskmanager.describe(),
            "history_enabled": self.results is not None,
        }

    def health(self) -> Dict[str, Any]:
        """Liveness plus queue-health gauges (depth per state, worker count)."""
        counts = self.store.counts()
        queue = {
            "depth": counts.get("QUEUED", 0),
            "running": counts.get("RUNNING", 0),
            "states": counts,
            "workers": self.taskmanager.num_workers,
        }
        if telemetry.metrics_enabled():
            registry = telemetry.get_metrics()
            registry.gauge(
                "repro_job_queue_depth", help="Jobs waiting in the queue"
            ).set(queue["depth"])
            registry.gauge(
                "repro_service_workers", help="TaskManager worker threads"
            ).set(queue["workers"])
        return {
            "status": "ok",
            "taskmanager_running": self.taskmanager.running,
            "queue": queue,
        }

    def metrics(self) -> str:
        """Prometheus text exposition of the process metrics registry.

        Refreshes the queue gauges first so a scrape never reports stale
        depth; the registry itself accumulates counters/histograms from the
        task manager and store as jobs flow through.
        """
        if telemetry.metrics_enabled():
            counts = self.store.counts()
            registry = telemetry.get_metrics()
            registry.gauge(
                "repro_job_queue_depth", help="Jobs waiting in the queue"
            ).set(counts.get("QUEUED", 0))
            registry.gauge(
                "repro_jobs_running", help="Jobs currently executing"
            ).set(counts.get("RUNNING", 0))
            registry.gauge(
                "repro_service_workers", help="TaskManager worker threads"
            ).set(self.taskmanager.num_workers)
        return telemetry.get_metrics().render()
