"""Error taxonomy for the experiment service.

Every service-layer failure is a :class:`ServiceError` carrying an HTTP
status code and a stable machine-readable ``code`` string, so the WSGI app
(:mod:`repro.service.app`) can map any controller/task-manager exception to
a structured JSON error body without per-endpoint handling.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "BadRequest",
    "Conflict",
    "IllegalTransition",
    "NotFound",
    "QuotaExceeded",
    "RateLimited",
    "ServiceError",
]


class ServiceError(Exception):
    """Base class: an HTTP-mappable service failure."""

    status = 500
    code = "internal_error"

    def __init__(self, message: str, *, details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.message = message
        self.details = dict(details or {})

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "error": {"code": self.code, "status": self.status, "message": self.message}
        }
        if self.details:
            payload["error"]["details"] = self.details
        return payload


class BadRequest(ServiceError):
    """The request body failed schema or deep scenario validation."""

    status = 400
    code = "bad_request"


class NotFound(ServiceError):
    """No such job (or the job belongs to a different tenant)."""

    status = 404
    code = "not_found"


class Conflict(ServiceError):
    """The requested action is invalid for the job's current state."""

    status = 409
    code = "conflict"


class IllegalTransition(Conflict):
    """A job-lifecycle transition outside the legal state machine."""

    code = "illegal_transition"


class QuotaExceeded(ServiceError):
    """The tenant is at its active-job quota."""

    status = 403
    code = "quota_exceeded"


class RateLimited(ServiceError):
    """The tenant's token bucket is empty; retry later."""

    status = 429
    code = "rate_limited"
