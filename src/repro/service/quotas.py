"""Per-tenant quotas and token-bucket rate limiting.

Two independent admission controls, both enforced at submission time by the
controller:

* **Active-job quota** — at most ``max_active_jobs`` jobs in
  ``QUEUED``/``RUNNING`` per tenant (a *standing* limit on queue depth);
  violations are :class:`~repro.service.exceptions.QuotaExceeded` (403).
* **Token bucket** — each tenant's bucket holds up to ``burst`` tokens and
  refills at ``rate`` tokens/second; each submission spends one.  This caps
  the *sustained* submission rate while allowing short bursts; violations
  are :class:`~repro.service.exceptions.RateLimited` (429) with a
  ``retry_after`` hint.

The clock is injectable so the tests (and the load benchmark's permissive
configuration) are deterministic.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.service.exceptions import QuotaExceeded, RateLimited

__all__ = ["QuotaManager", "TokenBucket"]


class TokenBucket:
    """A classic token bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: float, *, clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive, got {rate}, {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 if already are)."""
        with self._lock:
            self._refill(self._clock())
            deficit = tokens - self._tokens
            return max(0.0, deficit / self.rate)


class QuotaManager:
    """Admission control for submissions, one bucket per tenant.

    Parameters
    ----------
    max_active_jobs:
        Per-tenant cap on ``QUEUED + RUNNING`` jobs; ``None`` disables the
        quota (used by the load benchmark).
    rate / burst:
        Token-bucket parameters applied per tenant; ``rate=None`` disables
        rate limiting.
    """

    def __init__(
        self,
        *,
        max_active_jobs: Optional[int] = 8,
        rate: Optional[float] = 10.0,
        burst: float = 20.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_active_jobs is not None and max_active_jobs < 1:
            raise ValueError(f"max_active_jobs must be >= 1, got {max_active_jobs}")
        self.max_active_jobs = max_active_jobs
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def check_submit(self, tenant: str, active_jobs: int) -> None:
        """Admit or reject one submission for ``tenant``.

        ``active_jobs`` is the tenant's current QUEUED+RUNNING count (the
        store's :meth:`~repro.service.store.JobStore.count_active`).  Raises
        :class:`QuotaExceeded` or :class:`RateLimited`; returns silently on
        admission (the rate token is spent).
        """
        if self.max_active_jobs is not None and active_jobs >= self.max_active_jobs:
            raise QuotaExceeded(
                f"tenant {tenant!r} has {active_jobs} active jobs "
                f"(quota {self.max_active_jobs}); wait for one to finish or cancel",
                details={"active_jobs": active_jobs, "quota": self.max_active_jobs},
            )
        if self.rate is None:
            return
        bucket = self._bucket(tenant)
        if not bucket.try_acquire():
            raise RateLimited(
                f"tenant {tenant!r} is rate limited; retry later",
                details={"retry_after": round(bucket.retry_after(), 3)},
            )
