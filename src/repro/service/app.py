"""Stdlib WSGI front end for the experiment service.

No web framework: :func:`make_wsgi_app` closes a plain WSGI callable over a
:class:`~repro.service.controller.ServiceController` and routes the small
REST surface onto it::

    GET    /v1/health                     liveness + queue depth + workers
    GET    /v1/metrics                    Prometheus text exposition
    GET    /v1/                           actions, schemas, scenarios, quotas
    POST   /v1/jobs                       submit {action: payload}   → 202
    GET    /v1/jobs?marker=&limit=&state= list jobs (marker-paginated)
    GET    /v1/jobs/<id>                  job status
    GET    /v1/jobs/<id>/records?offset=&limit=  result records
    POST   /v1/jobs/<id>/action           e.g. {"cancel": {}}
    GET    /v1/history                    scenarios with recorded history
    GET    /v1/history/<scenario>?metrics=&last=  per-metric trend series
    GET    /v1/history/<scenario>/runs?marker=&limit=  stored runs (paginated)

Tenancy is the ``X-Tenant`` request header (default ``"default"``) — enough
to exercise real multi-tenant quota/rate-limit behaviour without inventing
an auth system.  Every response is JSON; every
:class:`~repro.service.exceptions.ServiceError` maps to its status code
with a structured body.

:class:`ExperimentService` bundles store + task manager + controller +
a threaded :mod:`wsgiref` server into one object with ``start``/``stop``
(port 0 gives an OS-assigned port, which the tests and the load benchmark
use), and :func:`serve` is the blocking entry point behind ``repro serve``.
"""

from __future__ import annotations

import json
import threading
from socketserver import ThreadingMixIn
from typing import Any, Callable, Dict, Iterable, Optional, Tuple
from urllib.parse import parse_qs
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro import telemetry
from repro.api import run as api_run
from repro.results.store import ResultsStore
from repro.service.controller import ServiceController
from repro.service.exceptions import BadRequest, NotFound, ServiceError
from repro.service.quotas import QuotaManager
from repro.service.store import JobStore
from repro.service.taskmanager import Runner, TaskManager

__all__ = ["ExperimentService", "make_wsgi_app", "serve"]

_STATUS_TEXT = {
    200: "200 OK",
    202: "202 Accepted",
    400: "400 Bad Request",
    403: "403 Forbidden",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
}

_MAX_BODY = 1 << 20  # 1 MiB — far above any legitimate submission


def _read_json_body(environ: Dict[str, Any]) -> Dict[str, Any]:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        raise BadRequest("invalid Content-Length header") from None
    if length > _MAX_BODY:
        raise BadRequest(f"request body too large ({length} bytes, max {_MAX_BODY})")
    raw = environ["wsgi.input"].read(length) if length else b""
    if not raw:
        raise BadRequest("request body must be a JSON object")
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise BadRequest(f"request body must be a JSON object, got {type(body).__name__}")
    return body


def _query(environ: Dict[str, Any]) -> Dict[str, str]:
    parsed = parse_qs(environ.get("QUERY_STRING", ""), keep_blank_values=False)
    return {key: values[-1] for key, values in parsed.items()}


def make_wsgi_app(controller: ServiceController) -> Callable[..., Iterable[bytes]]:
    """A WSGI callable routing the ``/v1`` surface onto ``controller``."""

    def handle(environ: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        method = environ["REQUEST_METHOD"].upper()
        path = environ.get("PATH_INFO", "/").rstrip("/") or "/"
        tenant = environ.get("HTTP_X_TENANT", "default").strip() or "default"
        query = _query(environ)

        if path == "/v1/health" and method == "GET":
            return 200, controller.health()
        if path in ("/v1", "/") and method == "GET":
            return 200, controller.describe()
        if path == "/v1/jobs":
            if method == "POST":
                return 202, controller.submit(tenant, _read_json_body(environ))
            if method == "GET":
                return 200, controller.index(
                    tenant,
                    marker=query.get("marker"),
                    limit=query.get("limit"),
                    state=query.get("state"),
                )
            raise _method_not_allowed(method, path)

        parts = path.lstrip("/").split("/")
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "history":
            if method != "GET":
                raise _method_not_allowed(method, path)
            if len(parts) == 2:
                return 200, controller.history_index(tenant)
            # Scenario names may contain "/" (experiment/<workload>/<algo>),
            # so everything after /v1/history/ up to a trailing "runs" is the
            # scenario key.
            if parts[-1] == "runs" and len(parts) > 3:
                scenario = "/".join(parts[2:-1])
                return 200, controller.history_runs(
                    tenant,
                    scenario,
                    marker=query.get("marker"),
                    limit=query.get("limit"),
                )
            scenario = "/".join(parts[2:])
            return 200, controller.history_show(
                tenant,
                scenario,
                metrics=query.get("metrics"),
                last=query.get("last"),
            )
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "jobs":
            job_id = parts[2]
            if len(parts) == 3:
                if method == "GET":
                    return 200, controller.show(tenant, job_id)
                raise _method_not_allowed(method, path)
            if len(parts) == 4 and parts[3] == "records" and method == "GET":
                return 200, controller.records(
                    tenant, job_id, offset=query.get("offset"), limit=query.get("limit")
                )
            if len(parts) == 4 and parts[3] == "action" and method == "POST":
                return 200, controller.job_action(
                    tenant, job_id, _read_json_body(environ)
                )
        raise NotFound(f"no route for {method} {path}")

    def app(environ: Dict[str, Any], start_response) -> Iterable[bytes]:
        # The one non-JSON route: Prometheus scrapers expect a plain-text
        # exposition body, so it bypasses the JSON pipeline entirely.
        path = environ.get("PATH_INFO", "/").rstrip("/") or "/"
        if path == "/v1/metrics" and environ["REQUEST_METHOD"].upper() == "GET":
            payload = controller.metrics().encode("utf-8")
            start_response(
                _STATUS_TEXT[200],
                [
                    ("Content-Type", "text/plain; version=0.0.4; charset=utf-8"),
                    ("Content-Length", str(len(payload))),
                ],
            )
            return [payload]
        try:
            status, body = handle(environ)
        except ServiceError as exc:
            status, body = exc.status, exc.to_dict()
        except Exception as exc:  # noqa: BLE001 — never leak a traceback page
            err = ServiceError(f"internal error: {type(exc).__name__}: {exc}")
            status, body = err.status, err.to_dict()
        payload = json.dumps(body).encode("utf-8")
        start_response(
            _STATUS_TEXT.get(status, f"{status} Unknown"),
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(payload))),
            ],
        )
        return [payload]

    return app


def _method_not_allowed(method: str, path: str) -> ServiceError:
    error = ServiceError(f"method {method} not allowed on {path}")
    error.status = 405
    error.code = "method_not_allowed"
    return error


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """Thread-per-request so a long poll can't starve submissions."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Suppress per-request stderr logging (the CLI logs at a higher level)."""

    def log_message(self, *args: Any) -> None:  # noqa: D102
        pass


class ExperimentService:
    """Store + task manager + controller + HTTP server, wired together.

    >>> service = ExperimentService(db_path=":memory:", port=0)  # doctest: +SKIP
    >>> service.start()  # doctest: +SKIP
    >>> service.url      # doctest: +SKIP
    'http://127.0.0.1:49512'
    >>> service.stop()   # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        db_path: str = ":memory:",
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        quotas: Optional[QuotaManager] = None,
        runner: Runner = api_run,
        results_db: Optional[str] = None,
    ):
        # The service always records lifecycle metrics (queue wait, run
        # durations, outcome counters) for /v1/metrics — enabling the
        # registry costs nothing on the training hot loop, which is guarded
        # by the separate tracing flag.
        telemetry.configure(metrics=True)
        self.store = JobStore(db_path)
        # The persistent run history every finished job is appended to, and
        # the /v1/history endpoints read from.  None disables both.
        self.results = ResultsStore(results_db) if results_db is not None else None
        self.taskmanager = TaskManager(
            self.store, workers=workers, runner=runner, results_store=self.results
        )
        self.controller = ServiceController(
            self.store, self.taskmanager, quotas=quotas, results=self.results
        )
        self.app = make_wsgi_app(self.controller)
        self._host = host
        self._port = port
        self._server: Optional[WSGIServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("service is not started")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ExperimentService":
        """Start workers and serve HTTP in a background thread."""
        self.taskmanager.start()
        self._server = make_server(
            self._host,
            self._port,
            self.app,
            server_class=_ThreadingWSGIServer,
            handler_class=_QuietHandler,
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-service-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the HTTP server, the workers, and close the store."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.taskmanager.stop()
        self.store.close()
        if self.results is not None:
            self.results.close()

    def __enter__(self) -> "ExperimentService":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    db_path: str = "repro_jobs.sqlite3",
    workers: int = 2,
    quotas: Optional[QuotaManager] = None,
    results_db: Optional[str] = "repro_results.sqlite3",
) -> None:
    """Blocking entry point behind ``repro serve`` (Ctrl-C to stop).

    ``results_db`` defaults ON: every finished job is appended to the
    persistent run history and served back via ``GET /v1/history``.  Pass
    ``None`` (CLI: ``--no-results-db``) to disable recording.
    """
    service = ExperimentService(
        db_path=db_path,
        host=host,
        port=port,
        workers=workers,
        quotas=quotas,
        results_db=results_db,
    )
    service.taskmanager.start()
    server = make_server(
        host, port, service.app, server_class=_ThreadingWSGIServer, handler_class=_QuietHandler
    )
    service._server = server
    print(f"repro service listening on http://{host}:{server.server_address[1]} "
          f"(db={db_path}, results_db={results_db}, workers={workers})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.taskmanager.stop()
        service.store.close()
        if service.results is not None:
            service.results.close()
