"""Per-action request schemas, derived from the frozen scenario dataclasses.

The service accepts submission bodies with exactly one top-level action key
(the Trove convention)::

    {"sweep": {"workload": "deep_mlp", "algorithm": "selsync",
               "grid": {"delta": [0.1, 0.3]}}}

Instead of hand-maintaining a schema per action (which would drift the
moment a scenario dataclass gains a field), :data:`SCHEMAS` is built at
import time by reflecting over :class:`~repro.scenarios.spec.SweepScenario`,
:class:`~repro.scenarios.spec.ComparisonScenario` and
:class:`~repro.scenarios.spec.ThroughputScenario` with
:func:`typing.get_type_hints` — each dataclass field becomes a JSON-schema
property with its Python type mapped to a JSON type (``fixed`` is renamed to
the façade's canonical ``params`` spelling, ``name`` is service-assigned and
dropped).  Structural validation (:func:`validate_payload`) runs before the
deep :meth:`repro.api.RunRequest.validate` pass, so unknown keys and
type mismatches fail fast with a field-level message.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api import KINDS, RunRequest
from repro.scenarios.spec import ComparisonScenario, SweepScenario, ThroughputScenario
from repro.service.exceptions import BadRequest

__all__ = ["SCHEMAS", "get_action", "validate_payload"]

#: JSON type name → Python types accepted for it.  ``bool`` is checked
#: before ``integer`` (a Python bool is an int) in :func:`_type_ok`.
_JSON_TYPES: Dict[str, Tuple[type, ...]] = {
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
    "object": (dict,),
    "array": (list, tuple),
}


def _json_type(py_type: Any) -> Tuple[str, bool]:
    """Map a (possibly Optional/generic) annotation to (json type, nullable)."""
    origin = typing.get_origin(py_type)
    if origin is typing.Union:
        args = [a for a in typing.get_args(py_type) if a is not type(None)]
        nullable = len(args) < len(typing.get_args(py_type))
        json_type, _ = _json_type(args[0]) if args else ("object", True)
        return json_type, nullable
    if origin is not None:
        py_type = origin
    if py_type is bool:
        return "boolean", False
    if py_type is int:
        return "integer", False
    if py_type is float:
        return "number", False
    if py_type is str:
        return "string", False
    if isinstance(py_type, type) and issubclass(py_type, (list, tuple)):
        return "array", False
    if py_type is Any:
        return "any", True
    return "object", False


#: Dataclass fields never accepted from a payload: the service names ad-hoc
#: scenarios itself, and pool start methods stay a server-side decision.
_DROPPED_FIELDS = frozenset({"name"})

#: scenario-dataclass spelling → façade spelling.
_RENAMES = {"fixed": "params"}


def _properties_from(dataclass_type: type) -> Dict[str, Dict[str, Any]]:
    hints = typing.get_type_hints(dataclass_type)
    props: Dict[str, Dict[str, Any]] = {}
    for field in dataclasses.fields(dataclass_type):
        if field.name in _DROPPED_FIELDS:
            continue
        json_type, nullable = _json_type(hints[field.name])
        required = (
            field.default is dataclasses.MISSING
            and field.default_factory is dataclasses.MISSING
        )
        props[_RENAMES.get(field.name, field.name)] = {
            "type": json_type,
            "nullable": nullable or not required,
            "required": required,
        }
    return props


def _build_schemas() -> Dict[str, Dict[str, Any]]:
    schemas: Dict[str, Dict[str, Any]] = {}
    for action, source in (
        ("sweep", SweepScenario),
        ("comparison", ComparisonScenario),
        ("throughput", ThroughputScenario),
    ):
        props = _properties_from(source)
        # ``title`` has no default on the dataclasses but the façade titles
        # ad-hoc scenarios itself.
        props["title"].update(required=False, nullable=True)
        schemas[action] = {
            "type": "object",
            "properties": props,
            "required": sorted(k for k, v in props.items() if v["required"]),
            "additionalProperties": False,
        }
    # The experiment action is the RunRequest's own shape (one training run,
    # no scenario dataclass behind it).
    request_props = _properties_from(RunRequest)
    experiment_props = {
        key: dict(value)
        for key, value in request_props.items()
        if key not in ("kind", "scenario", "grid", "options", "stacked", "max_stacked_rows")
    }
    for key in ("workload", "algorithm"):
        experiment_props[key].update(required=True, nullable=False)
    schemas["experiment"] = {
        "type": "object",
        "properties": experiment_props,
        "required": ["algorithm", "workload"],
        "additionalProperties": False,
    }
    # The scenario action runs a *registered* scenario with run-time
    # overrides only.
    schemas["scenario"] = {
        "type": "object",
        "properties": {
            "name": {"type": "string", "nullable": False, "required": True},
            "iterations": {"type": "integer", "nullable": True, "required": False},
            "num_workers": {"type": "integer", "nullable": True, "required": False},
            "seed": {"type": "integer", "nullable": True, "required": False},
            "stacked": {"type": "boolean", "nullable": True, "required": False},
            "max_stacked_rows": {"type": "integer", "nullable": True, "required": False},
            "fault_seed": {"type": "integer", "nullable": True, "required": False},
        },
        "required": ["name"],
        "additionalProperties": False,
    }
    assert set(schemas) == set(KINDS)
    return schemas


#: action name → JSON-schema-style description of its payload.
SCHEMAS: Dict[str, Dict[str, Any]] = _build_schemas()


def get_action(body: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Extract the single ``{action: payload}`` pair from a submission body."""
    if not isinstance(body, Mapping):
        raise BadRequest(f"submission body must be an object, got {type(body).__name__}")
    keys = list(body.keys())
    if len(keys) != 1:
        raise BadRequest(
            f"submission body must have exactly one action key, got {keys or 'none'}; "
            f"actions: {sorted(SCHEMAS)}"
        )
    action = keys[0]
    if action not in SCHEMAS:
        raise BadRequest(f"unknown action {action!r}; one of {sorted(SCHEMAS)}")
    payload = body[action]
    if not isinstance(payload, Mapping):
        raise BadRequest(f"{action} payload must be an object, got {type(payload).__name__}")
    return action, dict(payload)


def _type_ok(value: Any, json_type: str) -> bool:
    if json_type == "any":
        return True
    accepted = _JSON_TYPES[json_type]
    if json_type in ("integer", "number") and isinstance(value, bool):
        return False
    return isinstance(value, accepted)


def validate_payload(action: str, payload: Mapping[str, Any]) -> None:
    """Structurally validate ``payload`` against :data:`SCHEMAS[action]`.

    Checks unknown keys, required keys, and JSON types; deep semantic
    validation (grids, workload names, stackability) is
    :meth:`repro.api.RunRequest.validate`'s job.  Raises
    :class:`BadRequest` with a field-level message.
    """
    schema = SCHEMAS[action]
    props = schema["properties"]
    unknown = sorted(set(payload) - set(props))
    if unknown:
        raise BadRequest(
            f"{action} payload has unknown fields {unknown}; "
            f"allowed: {sorted(props)}",
            details={"unknown": unknown},
        )
    missing = sorted(k for k in schema["required"] if payload.get(k) is None)
    if missing:
        raise BadRequest(
            f"{action} payload is missing required fields {missing}",
            details={"missing": missing},
        )
    for key, value in payload.items():
        spec = props[key]
        if value is None:
            if spec["nullable"]:
                continue
            raise BadRequest(f"{action}.{key} must not be null")
        if not _type_ok(value, spec["type"]):
            raise BadRequest(
                f"{action}.{key} must be of type {spec['type']}, "
                f"got {type(value).__name__}"
            )
