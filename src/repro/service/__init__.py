"""Multi-tenant experiment service: the simulator as a long-running API.

This package turns the one-shot harness into a service in the OpenStack
Trove mould — a strict split between the **controller** (validates HTTP
submissions against schemas derived from the frozen scenario dataclasses,
enforces per-tenant quotas and token-bucket rate limits) and the **task
manager** (a worker pool claiming jobs from a persistent SQLite queue and
executing them through the one :mod:`repro.api` façade).  Jobs move through
the lifecycle ``QUEUED → RUNNING → DONE/FAILED`` with cooperative
cancellation (``→ CANCELLED``), results are paginated, and the queue
survives service restarts.

Layers (each its own module, composable in tests):

* :mod:`~repro.service.jobs` — the lifecycle state machine;
* :mod:`~repro.service.store` — schema-versioned SQLite persistence;
* :mod:`~repro.service.quotas` — per-tenant admission control;
* :mod:`~repro.service.schemas` — per-action schemas from the dataclasses;
* :mod:`~repro.service.taskmanager` — the execution worker pool;
* :mod:`~repro.service.controller` — transport-agnostic request handling;
* :mod:`~repro.service.app` — the stdlib WSGI front end + server bundle;
* :mod:`~repro.service.client` — the stdlib HTTP client.

>>> from repro.service import ExperimentService, ServiceClient  # doctest: +SKIP
>>> with ExperimentService(port=0) as service:                  # doctest: +SKIP
...     client = ServiceClient(service.url)
...     job = client.submit("scenario", {"name": "quickstart"})
...     done = client.wait(job["id"])
"""

from repro.service.app import ExperimentService, make_wsgi_app, serve
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.controller import ServiceController
from repro.service.exceptions import (
    BadRequest,
    Conflict,
    IllegalTransition,
    NotFound,
    QuotaExceeded,
    RateLimited,
    ServiceError,
)
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    Job,
    QUEUED,
    RUNNING,
    TRANSITIONS,
    validate_transition,
)
from repro.service.quotas import QuotaManager, TokenBucket
from repro.service.schemas import SCHEMAS, get_action, validate_payload
from repro.service.store import JobStore, SCHEMA_VERSION
from repro.service.taskmanager import TaskManager

__all__ = [
    "BadRequest",
    "CANCELLED",
    "Conflict",
    "DONE",
    "ExperimentService",
    "FAILED",
    "IllegalTransition",
    "JOB_STATES",
    "Job",
    "JobStore",
    "NotFound",
    "QUEUED",
    "QuotaExceeded",
    "QuotaManager",
    "RUNNING",
    "RateLimited",
    "SCHEMAS",
    "SCHEMA_VERSION",
    "ServiceClient",
    "ServiceClientError",
    "ServiceController",
    "ServiceError",
    "TRANSITIONS",
    "TaskManager",
    "TokenBucket",
    "get_action",
    "make_wsgi_app",
    "serve",
    "validate_payload",
    "validate_transition",
]
