"""Data substrate: synthetic datasets, loaders, partitioning and injection.

The paper trains on CIFAR-10/100, ImageNet-1K and WikiText-103.  Those are
replaced by synthetic datasets with the same *structural* properties the
experiments rely on (class labels for IID / non-IID splits, a token stream
for the language-model workload); see DESIGN.md §2 for the substitution
rationale.

The partitioning schemes — DefDP (default disjoint chunks) and SelDP (the
paper's circular-queue rotation, Fig. 7) — and the randomized data-injection
mechanism for non-IID data (§III-E) live here as well.
"""

from repro.data.datasets import (
    ClassificationDataset,
    ImageClassificationDataset,
    SequenceDataset,
    make_classification_dataset,
    make_classification_splits,
    make_image_dataset,
    make_image_splits,
    make_sequence_dataset,
    make_sequence_splits,
    DATASET_REGISTRY,
    build_dataset,
    DatasetBundle,
)
from repro.data.loader import DataLoader, BatchIterator
from repro.data.partition import (
    Partitioner,
    DefaultPartitioner,
    SelSyncPartitioner,
    partition_layout,
)
from repro.data.noniid import LabelSkewPartitioner, dirichlet_partition, label_distribution
from repro.data.injection import DataInjection, adjusted_batch_size, injection_bytes_per_step

__all__ = [
    "ClassificationDataset",
    "ImageClassificationDataset",
    "SequenceDataset",
    "make_classification_dataset",
    "make_classification_splits",
    "make_image_dataset",
    "make_image_splits",
    "make_sequence_dataset",
    "make_sequence_splits",
    "DATASET_REGISTRY",
    "build_dataset",
    "DatasetBundle",
    "DataLoader",
    "BatchIterator",
    "Partitioner",
    "DefaultPartitioner",
    "SelSyncPartitioner",
    "partition_layout",
    "LabelSkewPartitioner",
    "dirichlet_partition",
    "label_distribution",
    "DataInjection",
    "adjusted_batch_size",
    "injection_bytes_per_step",
]
