"""Synthetic datasets standing in for CIFAR-10/100, ImageNet-1K and WikiText-103.

Classification data is drawn from a Gaussian mixture with one component per
class: class centers are random unit vectors scaled by ``class_sep`` and
samples add isotropic noise.  This yields realistic learning curves (rapid
early progress, a plateau, further gains after LR decay) while keeping every
label structure needed for the IID / non-IID experiments.

Language-model data is a first-order Markov chain over a synthetic vocabulary
with a banded transition matrix, so there is real sequential structure for a
Transformer to learn and perplexity decreases smoothly during training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import new_rng


class ClassificationDataset:
    """In-memory classification dataset: ``inputs`` (n, d) and ``targets`` (n,)."""

    def __init__(
        self, inputs: np.ndarray, targets: np.ndarray, num_classes: int, name: str = ""
    ) -> None:
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets)
        if inputs.ndim != 2:
            raise ValueError(f"inputs must be 2-D (n, d), got shape {inputs.shape}")
        if targets.ndim != 1 or targets.shape[0] != inputs.shape[0]:
            raise ValueError(
                f"targets must be 1-D with length {inputs.shape[0]}, got {targets.shape}"
            )
        if not np.issubdtype(targets.dtype, np.integer):
            raise TypeError("targets must be integer class ids")
        if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
            raise ValueError("target labels out of range for num_classes")
        self.inputs = inputs
        self.targets = targets.astype(np.int64)
        self.num_classes = int(num_classes)
        self.name = name

    def __len__(self) -> int:
        return self.inputs.shape[0]

    def __getitem__(self, idx) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[idx], self.targets[idx]

    @property
    def input_dim(self) -> int:
        return self.inputs.shape[1]

    @property
    def sample_bytes(self) -> int:
        """Size of one training sample in bytes (float32 transport)."""
        return self.inputs.shape[1] * 4 + 8

    def subset(self, indices: np.ndarray) -> "ClassificationDataset":
        """View of the dataset restricted to ``indices`` (copies the arrays)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ClassificationDataset(
            self.inputs[indices], self.targets[indices], self.num_classes, name=self.name
        )


class ImageClassificationDataset:
    """In-memory image classification dataset: ``inputs`` (n, c, h, w), ``targets`` (n,).

    The spatial analog of :class:`ClassificationDataset`, used by the
    conv-family workloads (``ConvNet``) — e.g. the replica-pool benchmarks,
    where per-replica convolution cost is what the process pool parallelizes.
    """

    def __init__(
        self, inputs: np.ndarray, targets: np.ndarray, num_classes: int, name: str = ""
    ) -> None:
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets)
        if inputs.ndim != 4:
            raise ValueError(f"inputs must be 4-D (n, c, h, w), got shape {inputs.shape}")
        if targets.ndim != 1 or targets.shape[0] != inputs.shape[0]:
            raise ValueError(
                f"targets must be 1-D with length {inputs.shape[0]}, got {targets.shape}"
            )
        if not np.issubdtype(targets.dtype, np.integer):
            raise TypeError("targets must be integer class ids")
        if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
            raise ValueError("target labels out of range for num_classes")
        self.inputs = inputs
        self.targets = targets.astype(np.int64)
        self.num_classes = int(num_classes)
        self.name = name

    def __len__(self) -> int:
        return self.inputs.shape[0]

    def __getitem__(self, idx) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[idx], self.targets[idx]

    @property
    def input_dim(self) -> int:
        """Flattened feature count (c * h * w), for cost-model consumers."""
        return int(np.prod(self.inputs.shape[1:]))

    @property
    def sample_bytes(self) -> int:
        """Size of one training sample in bytes (float32 transport)."""
        return self.input_dim * 4 + 8

    def subset(self, indices: np.ndarray) -> "ImageClassificationDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return ImageClassificationDataset(
            self.inputs[indices], self.targets[indices], self.num_classes, name=self.name
        )


class SequenceDataset:
    """Next-token-prediction dataset of fixed-length windows over a token stream."""

    def __init__(
        self, token_stream: np.ndarray, bptt: int, vocab_size: int, name: str = ""
    ) -> None:
        token_stream = np.asarray(token_stream)
        if not np.issubdtype(token_stream.dtype, np.integer):
            raise TypeError("token stream must hold integer token ids")
        if bptt < 1:
            raise ValueError(f"bptt must be >= 1, got {bptt}")
        if token_stream.size < bptt + 1:
            raise ValueError("token stream shorter than one bptt window")
        self.tokens = token_stream.astype(np.int64)
        self.bptt = int(bptt)
        self.vocab_size = int(vocab_size)
        self.name = name
        # Non-overlapping windows, like sequential bptt batching in the paper.
        self._num_windows = (self.tokens.size - 1) // self.bptt

    def __len__(self) -> int:
        return self._num_windows

    def __getitem__(self, idx) -> Tuple[np.ndarray, np.ndarray]:
        idx_arr = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        starts = idx_arr * self.bptt
        x = np.stack([self.tokens[s : s + self.bptt] for s in starts])
        y = np.stack([self.tokens[s + 1 : s + self.bptt + 1] for s in starts])
        if np.isscalar(idx) or (isinstance(idx, np.ndarray) and idx.ndim == 0):
            return x[0], y[0]
        return x, y

    @property
    def input_dim(self) -> int:
        return self.bptt

    @property
    def num_classes(self) -> int:
        return self.vocab_size

    @property
    def sample_bytes(self) -> int:
        return self.bptt * 8 * 2

    @property
    def targets(self) -> np.ndarray:
        """Per-window pseudo-label (first target token), used only by partitioners."""
        starts = np.arange(self._num_windows) * self.bptt
        return self.tokens[starts + 1]

    def subset(self, indices: np.ndarray) -> "SequenceDataset":
        indices = np.asarray(indices, dtype=np.int64)
        pieces = []
        for s in indices * self.bptt:
            pieces.append(self.tokens[s : s + self.bptt + 1])
        stream = np.concatenate(pieces) if pieces else self.tokens[:0]
        return SequenceDataset(stream, self.bptt, self.vocab_size, name=self.name)


@dataclass
class DatasetBundle:
    """Train/test pair plus workload metadata used by the experiment harness."""

    train: object
    test: object
    task: str  # "classification" or "language_modeling"
    name: str = ""
    metadata: Dict[str, float] = field(default_factory=dict)


def make_classification_dataset(
    num_samples: int,
    num_classes: int,
    input_dim: int,
    class_sep: float = 3.0,
    noise: float = 1.0,
    seed: Optional[int] = 0,
    name: str = "synthetic-classification",
    centers: Optional[np.ndarray] = None,
) -> ClassificationDataset:
    """Gaussian-mixture classification data with one component per class.

    ``centers`` can be passed explicitly so multiple datasets (e.g. a train
    and a test split) are drawn from the *same* mixture; otherwise centers are
    derived from ``seed``.
    """
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    rng = new_rng(seed)
    if centers is None:
        centers = rng.standard_normal((num_classes, input_dim))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True) + 1e-12
        centers *= class_sep
    else:
        centers = np.asarray(centers, dtype=np.float64)
        if centers.shape != (num_classes, input_dim):
            raise ValueError(
                f"centers must have shape ({num_classes}, {input_dim}), got {centers.shape}"
            )
    labels = rng.integers(0, num_classes, size=num_samples)
    # Guarantee every class appears at least once so non-IID splits are valid.
    labels[:num_classes] = np.arange(num_classes)
    rng.shuffle(labels)
    samples = centers[labels] + noise * rng.standard_normal((num_samples, input_dim))
    return ClassificationDataset(samples, labels, num_classes, name=name)


def make_classification_splits(
    num_train: int,
    num_test: int,
    num_classes: int,
    input_dim: int,
    class_sep: float = 3.0,
    noise: float = 1.0,
    seed: Optional[int] = 0,
    name: str = "synthetic-classification",
) -> Tuple[ClassificationDataset, ClassificationDataset]:
    """Train/test datasets sampled from the *same* Gaussian mixture.

    Drawing the class centers once and sampling both splits from them is what
    makes test accuracy a meaningful generalization metric.
    """
    rng = new_rng(seed)
    centers = rng.standard_normal((num_classes, input_dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True) + 1e-12
    centers *= class_sep
    train = make_classification_dataset(
        num_train, num_classes, input_dim, class_sep=class_sep, noise=noise,
        seed=None if seed is None else seed + 1, name=f"{name}-train", centers=centers,
    )
    test = make_classification_dataset(
        num_test, num_classes, input_dim, class_sep=class_sep, noise=noise,
        seed=None if seed is None else seed + 2, name=f"{name}-test", centers=centers,
    )
    return train, test


def make_image_dataset(
    num_samples: int,
    num_classes: int,
    in_channels: int = 1,
    image_size: int = 8,
    class_sep: float = 2.0,
    noise: float = 0.8,
    seed: Optional[int] = 0,
    name: str = "synthetic-images",
    prototypes: Optional[np.ndarray] = None,
) -> ImageClassificationDataset:
    """Prototype-plus-noise image data: one spatial pattern per class.

    ``prototypes`` can be passed explicitly so multiple datasets (train/test
    splits) are drawn from the *same* class patterns.
    """
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    rng = new_rng(seed)
    shape = (num_classes, in_channels, image_size, image_size)
    if prototypes is None:
        prototypes = class_sep * rng.standard_normal(shape)
    else:
        prototypes = np.asarray(prototypes, dtype=np.float64)
        if prototypes.shape != shape:
            raise ValueError(f"prototypes must have shape {shape}, got {prototypes.shape}")
    labels = rng.integers(0, num_classes, size=num_samples)
    labels[:num_classes] = np.arange(num_classes)
    rng.shuffle(labels)
    samples = prototypes[labels] + noise * rng.standard_normal(
        (num_samples, in_channels, image_size, image_size)
    )
    return ImageClassificationDataset(samples, labels, num_classes, name=name)


def make_image_splits(
    num_train: int,
    num_test: int,
    num_classes: int,
    in_channels: int = 1,
    image_size: int = 8,
    class_sep: float = 2.0,
    noise: float = 0.8,
    seed: Optional[int] = 0,
    name: str = "synthetic-images",
) -> Tuple[ImageClassificationDataset, ImageClassificationDataset]:
    """Train/test image datasets sampled from the *same* class prototypes."""
    rng = new_rng(seed)
    prototypes = class_sep * rng.standard_normal(
        (num_classes, in_channels, image_size, image_size)
    )
    train = make_image_dataset(
        num_train, num_classes, in_channels, image_size, class_sep=class_sep,
        noise=noise, seed=None if seed is None else seed + 1, name=f"{name}-train",
        prototypes=prototypes,
    )
    test = make_image_dataset(
        num_test, num_classes, in_channels, image_size, class_sep=class_sep,
        noise=noise, seed=None if seed is None else seed + 2, name=f"{name}-test",
        prototypes=prototypes,
    )
    return train, test


def make_sequence_dataset(
    num_tokens: int,
    vocab_size: int,
    bptt: int = 16,
    bandwidth: int = 5,
    temperature: float = 0.4,
    seed: Optional[int] = 0,
    name: str = "synthetic-text",
) -> SequenceDataset:
    """Markov-chain token stream with a banded, learnable transition structure."""
    if vocab_size < 2:
        raise ValueError("vocab_size must be >= 2")
    rng = new_rng(seed)
    probs = _markov_transition_matrix(vocab_size, bandwidth, temperature, rng)
    stream = _sample_markov_stream(num_tokens, probs, rng)
    return SequenceDataset(stream, bptt=bptt, vocab_size=vocab_size, name=name)


def _markov_transition_matrix(
    vocab_size: int, bandwidth: int, temperature: float, rng: np.random.Generator
) -> np.ndarray:
    """Banded transition probabilities: each token prefers nearby successors."""
    logits = np.full((vocab_size, vocab_size), -6.0)
    for offset in range(1, bandwidth + 1):
        idx = np.arange(vocab_size)
        logits[idx, (idx + offset) % vocab_size] = 2.0 / offset
    logits += temperature * rng.standard_normal((vocab_size, vocab_size))
    probs = np.exp(logits - logits.max(axis=1, keepdims=True))
    probs /= probs.sum(axis=1, keepdims=True)
    return probs


def _sample_markov_stream(
    num_tokens: int, probs: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    vocab_size = probs.shape[0]
    # Sample via the inverse CDF so each step is one searchsorted, not a
    # full rng.choice dispatch (keeps long streams cheap to generate).
    cdf = np.cumsum(probs, axis=1)
    stream = np.empty(num_tokens, dtype=np.int64)
    stream[0] = rng.integers(0, vocab_size)
    uniforms = rng.random(num_tokens)
    for t in range(1, num_tokens):
        stream[t] = np.searchsorted(cdf[stream[t - 1]], uniforms[t])
    np.clip(stream, 0, vocab_size - 1, out=stream)
    return stream


def make_sequence_splits(
    train_tokens: int,
    test_tokens: int,
    vocab_size: int,
    bptt: int = 16,
    bandwidth: int = 5,
    temperature: float = 0.4,
    seed: Optional[int] = 0,
    name: str = "synthetic-text",
) -> Tuple[SequenceDataset, SequenceDataset]:
    """Train/test token streams drawn from the *same* Markov process."""
    if vocab_size < 2:
        raise ValueError("vocab_size must be >= 2")
    rng = new_rng(seed)
    probs = _markov_transition_matrix(vocab_size, bandwidth, temperature, rng)
    train_stream = _sample_markov_stream(train_tokens, probs, rng)
    test_stream = _sample_markov_stream(test_tokens, probs, rng)
    train = SequenceDataset(train_stream, bptt=bptt, vocab_size=vocab_size, name=f"{name}-train")
    test = SequenceDataset(test_stream, bptt=bptt, vocab_size=vocab_size, name=f"{name}-test")
    return train, test


# --------------------------------------------------------------------------- #
# Registry of paper-named dataset analogs
# --------------------------------------------------------------------------- #
DatasetFactory = Callable[..., DatasetBundle]
DATASET_REGISTRY: Dict[str, DatasetFactory] = {}


def register_dataset(name: str, factory: DatasetFactory) -> None:
    key = name.lower()
    if key in DATASET_REGISTRY:
        raise KeyError(f"dataset {name!r} already registered")
    DATASET_REGISTRY[key] = factory


def build_dataset(name: str, seed: int = 0, **kwargs) -> DatasetBundle:
    """Build a registered dataset analog (scaled down unless overridden)."""
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}")
    return DATASET_REGISTRY[key](seed=seed, **kwargs)


def _classification_bundle(
    name: str,
    num_classes: int,
    train_samples: int,
    test_samples: int,
    input_dim: int,
    class_sep: float,
    noise: float,
    seed: int,
    paper_samples: int,
) -> DatasetBundle:
    train, test = make_classification_splits(
        train_samples, test_samples, num_classes, input_dim,
        class_sep=class_sep, noise=noise, seed=seed, name=name,
    )
    return DatasetBundle(
        train=train,
        test=test,
        task="classification",
        name=name,
        metadata={"paper_train_samples": paper_samples, "num_classes": num_classes},
    )


def _cifar10_like(seed: int = 0, train_samples: int = 4096, test_samples: int = 1024,
                  input_dim: int = 64, **kw) -> DatasetBundle:
    return _classification_bundle(
        "cifar10", 10, train_samples, test_samples, input_dim,
        class_sep=kw.get("class_sep", 3.5), noise=kw.get("noise", 1.0),
        seed=seed, paper_samples=50_000,
    )


def _cifar100_like(seed: int = 0, train_samples: int = 6144, test_samples: int = 1536,
                   input_dim: int = 64, **kw) -> DatasetBundle:
    return _classification_bundle(
        "cifar100", 100, train_samples, test_samples, input_dim,
        class_sep=kw.get("class_sep", 4.0), noise=kw.get("noise", 1.0),
        seed=seed, paper_samples=50_000,
    )


def _imagenet_like(seed: int = 0, train_samples: int = 8192, test_samples: int = 2048,
                   input_dim: int = 96, num_classes: int = 200, **kw) -> DatasetBundle:
    return _classification_bundle(
        "imagenet1k", num_classes, train_samples, test_samples, input_dim,
        class_sep=kw.get("class_sep", 4.5), noise=kw.get("noise", 1.0),
        seed=seed, paper_samples=1_280_000,
    )


def _wikitext_like(seed: int = 0, num_tokens: int = 60_000, vocab_size: int = 200,
                   bptt: int = 16, **kw) -> DatasetBundle:
    train, test = make_sequence_splits(
        num_tokens, max(num_tokens // 8, bptt * 8), vocab_size, bptt=bptt,
        seed=seed, name="wikitext103",
    )
    return DatasetBundle(
        train=train,
        test=test,
        task="language_modeling",
        name="wikitext103",
        metadata={"paper_tokens": 100_000_000, "vocab_size": vocab_size},
    )


register_dataset("cifar10", _cifar10_like)
register_dataset("cifar100", _cifar100_like)
register_dataset("imagenet1k", _imagenet_like)
register_dataset("imagenet", _imagenet_like)
register_dataset("wikitext103", _wikitext_like)
register_dataset("wikitext", _wikitext_like)
