"""IID data partitioning: DefDP (default) and SelDP (the paper's scheme).

Fig. 7 of the paper: DefDP splits the training data into as many disjoint
partitions as there are workers and each worker only ever sees its own chunk.
SelDP also splits the data into N chunks but treats them as a circular queue
whose head is rotated to the worker's id — so every worker walks the *entire*
dataset, each starting from a different chunk, and on any synchronous step
the N workers are processing N distinct chunks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import new_rng


@dataclass
class PartitionResult:
    """Per-worker index orders plus bookkeeping used by Fig. 7 / Fig. 8b."""

    worker_indices: List[np.ndarray]
    chunk_assignment: List[List[int]]  # chunk ids in the order each worker visits them
    build_seconds: float

    @property
    def num_workers(self) -> int:
        return len(self.worker_indices)


class Partitioner:
    """Base interface: ``partition(dataset_size, num_workers) -> PartitionResult``."""

    #: whether loaders built on this partition should reshuffle every epoch
    shuffle_each_epoch: bool = True

    def partition(self, dataset_size: int, num_workers: int) -> PartitionResult:
        raise NotImplementedError

    @staticmethod
    def _validate(dataset_size: int, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if dataset_size < num_workers:
            raise ValueError(
                f"dataset of size {dataset_size} cannot be split across {num_workers} workers"
            )

    @staticmethod
    def _chunks(indices: np.ndarray, num_workers: int) -> List[np.ndarray]:
        """Split ``indices`` into ``num_workers`` nearly equal contiguous chunks."""
        return [np.asarray(c, dtype=np.int64) for c in np.array_split(indices, num_workers)]


class DefaultPartitioner(Partitioner):
    """DefDP: one disjoint chunk per worker (classic DDP sharding)."""

    shuffle_each_epoch = True

    def __init__(self, shuffle: bool = True, seed: Optional[int] = 0) -> None:
        self.shuffle = bool(shuffle)
        self.seed = seed

    def partition(self, dataset_size: int, num_workers: int) -> PartitionResult:
        self._validate(dataset_size, num_workers)
        start = time.perf_counter()
        indices = np.arange(dataset_size, dtype=np.int64)
        if self.shuffle:
            new_rng(self.seed).shuffle(indices)
        chunks = self._chunks(indices, num_workers)
        worker_indices = [chunks[worker].copy() for worker in range(num_workers)]
        assignment = [[worker] for worker in range(num_workers)]
        elapsed = time.perf_counter() - start
        return PartitionResult(worker_indices, assignment, elapsed)


class SelSyncPartitioner(Partitioner):
    """SelDP: circular-queue rotation so every worker sees the whole dataset.

    Worker ``n`` visits the chunks in the order ``n, n+1, ..., N-1, 0, ..., n-1``.
    The rotation is the schedule, so per-epoch reshuffling is disabled (the
    chunk interiors can still be shuffled once at build time).
    """

    shuffle_each_epoch = False

    def __init__(self, shuffle_within_chunks: bool = True, seed: Optional[int] = 0) -> None:
        self.shuffle_within_chunks = bool(shuffle_within_chunks)
        self.seed = seed

    def partition(self, dataset_size: int, num_workers: int) -> PartitionResult:
        self._validate(dataset_size, num_workers)
        start = time.perf_counter()
        indices = np.arange(dataset_size, dtype=np.int64)
        rng = new_rng(self.seed)
        rng.shuffle(indices)
        chunks = self._chunks(indices, num_workers)
        if self.shuffle_within_chunks:
            for chunk in chunks:
                rng.shuffle(chunk)
        worker_indices: List[np.ndarray] = []
        assignment: List[List[int]] = []
        for worker in range(num_workers):
            order = list(range(worker, num_workers)) + list(range(0, worker))
            worker_indices.append(np.concatenate([chunks[c] for c in order]))
            assignment.append(order)
        elapsed = time.perf_counter() - start
        return PartitionResult(worker_indices, assignment, elapsed)


def partition_layout(result: PartitionResult) -> Dict[int, List[int]]:
    """Human-readable chunk-visit order per worker (reproduces Fig. 7)."""
    return {worker: list(order) for worker, order in enumerate(result.chunk_assignment)}


def measure_partition_overhead(
    partitioner: Partitioner, dataset_size: int, num_workers: int, repeats: int = 3
) -> float:
    """Average build time in seconds (Fig. 8b: one-time preprocessing overhead)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    times = []
    for _ in range(repeats):
        result = partitioner.partition(dataset_size, num_workers)
        times.append(result.build_seconds)
    return float(np.mean(times))
