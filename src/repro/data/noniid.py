"""Non-IID data partitioning (label skew and Dirichlet splits).

The paper's non-IID experiments split CIFAR-10 across 10 workers with 1 label
per worker and CIFAR-100 with 10 labels per worker (§II-B, §IV-E).  The
:class:`LabelSkewPartitioner` reproduces exactly that construction; the
Dirichlet split is a softer, commonly used alternative exposed for ablations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.data.partition import PartitionResult, Partitioner
from repro.utils.rng import new_rng


class LabelSkewPartitioner(Partitioner):
    """Give each worker samples from only ``labels_per_worker`` classes."""

    shuffle_each_epoch = True

    def __init__(
        self,
        targets: np.ndarray,
        labels_per_worker: int,
        seed: Optional[int] = 0,
    ) -> None:
        targets = np.asarray(targets)
        if targets.ndim != 1:
            raise ValueError("targets must be a 1-D label array")
        if labels_per_worker < 1:
            raise ValueError(f"labels_per_worker must be >= 1, got {labels_per_worker}")
        self.targets = targets.astype(np.int64)
        self.labels_per_worker = int(labels_per_worker)
        self.seed = seed

    def partition(self, dataset_size: int, num_workers: int) -> PartitionResult:
        self._validate(dataset_size, num_workers)
        if dataset_size != self.targets.size:
            raise ValueError(
                f"dataset_size {dataset_size} does not match targets length {self.targets.size}"
            )
        import time

        start = time.perf_counter()
        rng = new_rng(self.seed)
        classes = np.unique(self.targets)
        needed = num_workers * self.labels_per_worker
        # Assign class labels to workers round-robin over a shuffled class
        # list; classes are reused when workers*labels exceeds the number of
        # distinct classes (e.g. 10 workers x 1 label on 10-class data uses
        # each class exactly once, matching the paper's CIFAR-10 split).
        reps = int(np.ceil(needed / classes.size))
        pool = np.concatenate([rng.permutation(classes) for _ in range(reps)])[:needed]
        assignment = pool.reshape(num_workers, self.labels_per_worker)

        by_class: Dict[int, np.ndarray] = {
            int(c): rng.permutation(np.flatnonzero(self.targets == c)) for c in classes
        }
        # Count how many workers share each class so samples can be split.
        share_count: Dict[int, int] = {int(c): 0 for c in classes}
        for row in assignment:
            for c in row:
                share_count[int(c)] += 1
        offsets: Dict[int, int] = {int(c): 0 for c in classes}

        worker_indices: List[np.ndarray] = []
        for worker in range(num_workers):
            pieces = []
            for c in assignment[worker]:
                c = int(c)
                samples = by_class[c]
                n_shares = share_count[c]
                share = samples.size // n_shares if n_shares > 0 else samples.size
                lo = offsets[c]
                hi = lo + max(share, 1)
                pieces.append(samples[lo:hi])
                offsets[c] = hi
            idx = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
            rng.shuffle(idx)
            worker_indices.append(idx.astype(np.int64))
        elapsed = time.perf_counter() - start
        chunk_assignment = [list(map(int, row)) for row in assignment]
        return PartitionResult(worker_indices, chunk_assignment, elapsed)


def dirichlet_partition(
    targets: np.ndarray,
    num_workers: int,
    alpha: float = 0.5,
    seed: Optional[int] = 0,
) -> List[np.ndarray]:
    """Dirichlet(alpha) label-proportion split: smaller alpha = more skew."""
    targets = np.asarray(targets).astype(np.int64)
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = new_rng(seed)
    classes = np.unique(targets)
    per_worker: List[List[np.ndarray]] = [[] for _ in range(num_workers)]
    for c in classes:
        samples = rng.permutation(np.flatnonzero(targets == c))
        proportions = rng.dirichlet(np.full(num_workers, alpha))
        counts = (proportions * samples.size).astype(np.int64)
        # Fix rounding so every sample lands somewhere.
        counts[-1] = samples.size - counts[:-1].sum()
        cursor = 0
        for worker, count in enumerate(counts):
            per_worker[worker].append(samples[cursor : cursor + count])
            cursor += count
    out = []
    for worker in range(num_workers):
        idx = (
            np.concatenate(per_worker[worker])
            if per_worker[worker]
            else np.zeros(0, dtype=np.int64)
        )
        rng.shuffle(idx)
        out.append(idx.astype(np.int64))
    return out


def label_distribution(targets: np.ndarray, indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Normalized label histogram of a worker's partition (skew diagnostics)."""
    targets = np.asarray(targets).astype(np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    hist = np.bincount(targets[indices], minlength=num_classes).astype(np.float64)
    total = hist.sum()
    if total > 0:
        hist /= total
    return hist
