"""Randomized data injection for non-IID training (§III-E of the paper).

At every iteration a random fraction ``alpha`` of the workers is selected;
each selected worker contributes a fraction ``beta`` of its mini-batch to a
shared pool which is appended to every worker's batch.  To keep the effective
per-worker batch size at the originally configured ``b`` the local batch size
is reduced to ``b' = b / (1 + alpha * beta * N)`` (Eqn. 3).

Privacy is preserved through K-anonymity: the receiving worker only sees a
pool mixed from ``ceil(alpha * N)`` anonymous contributors chosen fresh each
iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import new_rng


def adjusted_batch_size(batch_size: int, alpha: float, beta: float, num_workers: int) -> int:
    """Per-worker batch size b' = b / (1 + alpha*beta*N), Eqn. (3), at least 1."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if not 0.0 <= alpha <= 1.0 or not 0.0 <= beta <= 1.0:
        raise ValueError(f"alpha and beta must be in [0, 1], got ({alpha}, {beta})")
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    b_prime = int(round(batch_size / (1.0 + alpha * beta * num_workers)))
    return max(b_prime, 1)


def injection_bytes_per_step(
    alpha: float, beta: float, num_workers: int, b_prime: int, sample_bytes: int
) -> float:
    """Extra communication per step: (alpha*beta*N*b') samples of ``sample_bytes``."""
    if sample_bytes < 0:
        raise ValueError(f"sample_bytes must be non-negative, got {sample_bytes}")
    return float(alpha * beta * num_workers * b_prime * sample_bytes)


@dataclass
class InjectionReport:
    """Bookkeeping for one injection round."""

    selected_workers: List[int]
    shared_samples: int
    bytes_transferred: float


class DataInjection:
    """Per-iteration random sharing of training samples across workers."""

    def __init__(
        self,
        alpha: float,
        beta: float,
        num_workers: int,
        sample_bytes: int = 0,
        seed: Optional[int] = 0,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.num_workers = int(num_workers)
        self.sample_bytes = int(sample_bytes)
        self._rng = new_rng(seed)
        self.total_bytes = 0.0
        self.rounds = 0

    def num_selected(self) -> int:
        """Number of workers selected to share, ceil(alpha * N)."""
        return int(np.ceil(self.alpha * self.num_workers))

    def inject(
        self,
        batches: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], InjectionReport]:
        """Mix a shared pool into every worker's batch.

        ``batches`` holds one (inputs, targets) pair per worker, each of local
        size b'.  Returns new per-worker batches of size roughly
        b' + alpha*beta*N*b' = b, plus an :class:`InjectionReport`.
        """
        if len(batches) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} worker batches, got {len(batches)}"
            )
        if self.alpha == 0.0 or self.beta == 0.0:
            report = InjectionReport(selected_workers=[], shared_samples=0, bytes_transferred=0.0)
            self.rounds += 1
            return list(batches), report

        k = self.num_selected()
        selected = sorted(
            int(w) for w in self._rng.choice(self.num_workers, size=k, replace=False)
        )
        pooled_x: List[np.ndarray] = []
        pooled_y: List[np.ndarray] = []
        for worker in selected:
            x, y = batches[worker]
            share = int(np.floor(self.beta * x.shape[0]))
            if share == 0:
                continue
            take = self._rng.choice(x.shape[0], size=share, replace=False)
            pooled_x.append(x[take])
            pooled_y.append(y[take])
        if pooled_x:
            pool_x = np.concatenate(pooled_x)
            pool_y = np.concatenate(pooled_y)
        else:
            pool_x = batches[0][0][:0]
            pool_y = batches[0][1][:0]

        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for worker, (x, y) in enumerate(batches):
            if pool_x.shape[0] == 0:
                out.append((x, y))
            else:
                out.append((np.concatenate([x, pool_x]), np.concatenate([y, pool_y])))

        bytes_transferred = float(pool_x.shape[0]) * self.sample_bytes * self.num_workers
        self.total_bytes += bytes_transferred
        self.rounds += 1
        report = InjectionReport(
            selected_workers=selected,
            shared_samples=int(pool_x.shape[0]),
            bytes_transferred=bytes_transferred,
        )
        return out, report
