"""Mini-batch iteration over (possibly partitioned) datasets.

A :class:`DataLoader` owns an *index order* into a dataset — for DefDP that is
the worker's own chunk, for SelDP the full rotated circular-queue order — and
yields mini-batches of a fixed size, reshuffling (optionally) at each epoch
boundary.  The loader is an infinite iterator by design: distributed training
in the paper is driven by a global iteration count, not by epoch boundaries
on any single worker.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import new_rng


class BatchIterator:
    """Finite single-pass iterator over a dataset in a fixed index order."""

    def __init__(
        self, dataset, indices: np.ndarray, batch_size: int, drop_last: bool = True
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.int64)
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)

    def __len__(self) -> int:
        n = self.indices.size
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = self.indices.size
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            batch_idx = self.indices[start : start + self.batch_size]
            yield self.dataset[batch_idx]


class DataLoader:
    """Infinite mini-batch source over an index order into a dataset.

    Parameters
    ----------
    dataset:
        Any object supporting ``__len__`` and fancy-index ``__getitem__``.
    indices:
        Index order this loader walks (a data partition).  Defaults to the
        whole dataset in natural order.
    batch_size:
        Per-worker mini-batch size ``b``.
    shuffle_each_epoch:
        Reshuffle the index order after each full pass.  SelDP keeps the
        rotated chunk order fixed (the rotation *is* the schedule), so the
        partitioners pass ``False`` for SelDP and ``True`` for DefDP.
    seed:
        Shuffling seed (per worker).
    """

    def __init__(
        self,
        dataset,
        indices: Optional[np.ndarray] = None,
        batch_size: int = 32,
        shuffle_each_epoch: bool = True,
        seed: Optional[int] = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        if indices is None:
            indices = np.arange(len(dataset), dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64).copy()
        if self.indices.size == 0:
            raise ValueError("DataLoader needs a non-empty index set")
        if self.indices.size < batch_size:
            raise ValueError(
                f"partition of size {self.indices.size} smaller than batch size {batch_size}"
            )
        self.batch_size = int(batch_size)
        self.shuffle_each_epoch = bool(shuffle_each_epoch)
        self._rng = new_rng(seed)
        self._cursor = 0
        self._epoch = 0

    @property
    def steps_per_epoch(self) -> int:
        return self.indices.size // self.batch_size

    @property
    def epoch(self) -> int:
        """Number of completed passes over this loader's index order."""
        return self._epoch

    @property
    def epoch_progress(self) -> float:
        """Fractional epochs completed (used for FedAvg's per-epoch sync factor E)."""
        return self._epoch + self._cursor / self.indices.size

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the next (inputs, targets) mini-batch, wrapping at epoch end."""
        if self._cursor + self.batch_size > self.indices.size:
            self._advance_epoch()
        batch_idx = self.indices[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self.dataset[batch_idx]

    def _advance_epoch(self) -> None:
        self._epoch += 1
        self._cursor = 0
        if self.shuffle_each_epoch:
            self._rng.shuffle(self.indices)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.next_batch()
