"""Simulated cluster: workers, compute/heterogeneity models, simulated time.

The original evaluation runs 16 single-GPU docker containers plus a parameter
server.  Here the cluster is simulated in-process and in lockstep: every
worker holds a real model replica trained on real (synthetic) data, while
wall-clock time is *modelled* — per-step compute time comes from
:class:`ComputeCostModel` (optionally perturbed by a straggler model) and
synchronization time from :class:`repro.comm.CommunicationCostModel`.  The
simulated clock is what the speedup columns of Table I are computed from.
"""

from repro.cluster.compute_model import (
    ComputeCostModel,
    WorkloadSpec,
    PAPER_WORKLOADS,
    memory_gigabytes,
)
from repro.cluster.heterogeneity import WorkerSpeedModel, HomogeneousSpeed, StragglerModel
from repro.cluster.clock import SimulatedClock
from repro.cluster.worker import Worker
from repro.cluster.cluster import SimulatedCluster, ClusterConfig

__all__ = [
    "ComputeCostModel",
    "WorkloadSpec",
    "PAPER_WORKLOADS",
    "memory_gigabytes",
    "WorkerSpeedModel",
    "HomogeneousSpeed",
    "StragglerModel",
    "SimulatedClock",
    "Worker",
    "SimulatedCluster",
    "ClusterConfig",
]
