"""Simulated wall-clock accounting for the lockstep cluster.

Each worker has its own clock; barrier-style algorithms (BSP, SelSync sync
steps, FedAvg aggregation rounds) advance every worker to the maximum clock
before adding the shared synchronization cost, while asynchronous algorithms
(SSP) advance workers independently.  The global elapsed time reported in
Table I is the maximum worker clock.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


class SimulatedClock:
    """Per-worker simulated times plus aggregate accounting buckets."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.worker_time = np.zeros(num_workers, dtype=np.float64)
        self.buckets: Dict[str, float] = {"compute": 0.0, "communication": 0.0, "other": 0.0}

    # ------------------------------------------------------------------ #
    def advance_worker(self, worker_id: int, seconds: float, bucket: str = "compute") -> None:
        """Advance one worker's clock (asynchronous progress)."""
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        if seconds < 0:
            raise ValueError(f"cannot advance time by a negative amount: {seconds}")
        self.worker_time[worker_id] += seconds
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + seconds

    def advance_all(self, per_worker_seconds: Sequence[float], bucket: str = "compute") -> None:
        """Advance every worker by its own amount (parallel compute phase)."""
        per_worker_seconds = np.asarray(per_worker_seconds, dtype=np.float64)
        if per_worker_seconds.shape != (self.num_workers,):
            raise ValueError(
                f"expected {self.num_workers} durations, got shape {per_worker_seconds.shape}"
            )
        if np.any(per_worker_seconds < 0):
            raise ValueError("durations must be non-negative")
        self.worker_time += per_worker_seconds
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + float(per_worker_seconds.max())

    def sync_worker(self, worker_id: int) -> float:
        """Fast-forward one worker's clock to the cluster barrier.

        Used when a crashed worker rejoins: it resumes at the current
        frontier (the slowest live worker's time), not at its stale crash
        time.  No bucket is charged — the wait is idle downtime, not work.
        Returns the worker's new time.
        """
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        latest = float(self.worker_time.max())
        self.worker_time[worker_id] = latest
        return latest

    def barrier(self) -> float:
        """Synchronize all workers to the slowest one; returns the barrier time."""
        latest = float(self.worker_time.max())
        self.worker_time[:] = latest
        return latest

    def barrier_and_add(self, seconds: float, bucket: str = "communication") -> float:
        """Barrier, then charge a shared cost (e.g. an aggregation round) to all."""
        if seconds < 0:
            raise ValueError(f"cannot add negative time: {seconds}")
        latest = self.barrier()
        self.worker_time += seconds
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + seconds
        return latest + seconds

    @property
    def elapsed(self) -> float:
        """Simulated wall-clock time of the whole job (slowest worker)."""
        return float(self.worker_time.max())

    def worker_elapsed(self, worker_id: int) -> float:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        return float(self.worker_time[worker_id])
