"""Per-worker compute-time and memory models.

Two uses:

1. **Simulation** — the lockstep cluster charges each training step a
   simulated compute time ``t_c`` derived from the workload spec, the batch
   size and the worker's speed factor; combined with the communication cost
   model this produces the simulated wall-clock that Table I speedups are
   computed from.
2. **Figure 1a / Figure 2 reproduction** — the specs carry the *paper-scale*
   model sizes and V100/K80 step times, so the throughput-scaling and
   batch-size-scaling figures can be regenerated analytically without any
   GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one of the paper's workloads.

    Attributes
    ----------
    name:
        Paper model name.
    model_mb:
        Serialized model size in megabytes (determines synchronization cost).
    base_compute_ms:
        Per-step compute time at ``base_batch_size`` on the reference GPU.
    base_batch_size:
        Batch size at which ``base_compute_ms`` was measured.
    fixed_memory_gb:
        Memory footprint independent of the batch (weights, optimizer state,
        framework overhead).
    memory_per_sample_mb:
        Activation memory per sample in the batch.
    compute_setup_ms:
        Fixed per-step overhead (kernel launches, data loading).
    dataset:
        Paper dataset name the workload trains on.
    """

    name: str
    model_mb: float
    base_compute_ms: float
    base_batch_size: int
    fixed_memory_gb: float
    memory_per_sample_mb: float
    compute_setup_ms: float = 5.0
    dataset: str = ""

    @property
    def model_bytes(self) -> float:
        return self.model_mb * 1e6


#: Paper-scale workload descriptions (sizes from §II / §IV-A; step times are
#: representative of a V100 at the paper's batch sizes).
PAPER_WORKLOADS: Dict[str, WorkloadSpec] = {
    "resnet101": WorkloadSpec(
        name="resnet101", model_mb=170.0, base_compute_ms=200.0, base_batch_size=32,
        fixed_memory_gb=1.2, memory_per_sample_mb=9.0, dataset="cifar10",
    ),
    "vgg11": WorkloadSpec(
        name="vgg11", model_mb=507.0, base_compute_ms=180.0, base_batch_size=32,
        fixed_memory_gb=2.2, memory_per_sample_mb=5.0, dataset="cifar100",
    ),
    "alexnet": WorkloadSpec(
        name="alexnet", model_mb=233.0, base_compute_ms=250.0, base_batch_size=128,
        fixed_memory_gb=1.0, memory_per_sample_mb=7.0, dataset="imagenet1k",
    ),
    "transformer": WorkloadSpec(
        name="transformer", model_mb=52.0, base_compute_ms=60.0, base_batch_size=20,
        fixed_memory_gb=0.8, memory_per_sample_mb=90.0, dataset="wikitext103",
    ),
}


def memory_gigabytes(spec: WorkloadSpec, batch_size: int) -> float:
    """Worker memory footprint at a given batch size (Fig. 2b)."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return spec.fixed_memory_gb + spec.memory_per_sample_mb * batch_size / 1024.0


class ComputeCostModel:
    """Simulated per-step compute time for a workload.

    ``t_c(b) = setup + base_compute * (b / base_batch) ** scaling`` divided by
    the worker's speed factor.  ``scaling`` slightly below 1 models the
    sub-linear growth GPUs show until they saturate (Fig. 2a).
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        scaling_exponent: float = 0.9,
    ) -> None:
        if not 0.1 <= scaling_exponent <= 1.5:
            raise ValueError(f"scaling_exponent out of range: {scaling_exponent}")
        self.spec = spec
        self.scaling_exponent = float(scaling_exponent)

    def step_seconds(self, batch_size: int, speed_factor: float = 1.0) -> float:
        """Compute time for one training step on one worker."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {speed_factor}")
        ratio = batch_size / self.spec.base_batch_size
        variable_ms = self.spec.base_compute_ms * ratio**self.scaling_exponent
        total_ms = self.spec.compute_setup_ms + variable_ms
        return total_ms / 1000.0 / speed_factor

    def step_seconds_batch(self, batch_size: int, speed_factors) -> np.ndarray:
        """Vectorized :meth:`step_seconds` over per-worker speed factors."""
        speed_factors = np.asarray(speed_factors, dtype=np.float64)
        if np.any(speed_factors <= 0):
            raise ValueError("speed factors must be positive")
        return self.step_seconds(batch_size, 1.0) / speed_factors

    def throughput_samples_per_second(
        self, batch_size: int, speed_factor: float = 1.0
    ) -> float:
        """Samples processed per second by one worker at this batch size."""
        return batch_size / self.step_seconds(batch_size, speed_factor)

    def memory_gigabytes(self, batch_size: int) -> float:
        return memory_gigabytes(self.spec, batch_size)
