"""A simulated training worker: model replica + optimizer + local data view.

Workers do real numerical work (forward, backward, optimizer updates on the
NumPy models); only *time* is simulated.  The training algorithms in
:mod:`repro.algorithms` and :mod:`repro.core` orchestrate workers through
this interface, which mirrors the per-worker body of Alg. 1.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.data.loader import DataLoader
from repro.nn.losses import cross_entropy_with_logits
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer


class Worker:
    """One simulated worker with its own replica, optimizer and data stream."""

    def __init__(
        self,
        worker_id: int,
        model: Module,
        optimizer: Optimizer,
        loader: DataLoader,
        task: str = "classification",
    ) -> None:
        if worker_id < 0:
            raise ValueError(f"worker_id must be non-negative, got {worker_id}")
        if task not in ("classification", "language_modeling"):
            raise ValueError(f"unknown task {task!r}")
        self.worker_id = int(worker_id)
        self.model = model
        self.optimizer = optimizer
        self.loader = loader
        self.task = task
        self.steps_taken = 0
        self.last_loss: Optional[float] = None
        self.last_grad_norm: Optional[float] = None

    # ------------------------------------------------------------------ #
    # core training ops
    # ------------------------------------------------------------------ #
    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the next local mini-batch (Alg. 1, line 6)."""
        return self.loader.next_batch()

    def compute_gradients(
        self, batch: Optional[Tuple[np.ndarray, np.ndarray]] = None
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Forward + backward on one mini-batch; returns (loss, gradient dict).

        Gradients are left on the module (``Parameter.grad``) *and* returned
        as a copy, because the SelSync trainer needs them both to apply the
        local update and to measure Δ(gᵢ).
        """
        if batch is None:
            batch = self.next_batch()
        inputs, targets = batch
        self.model.zero_grad()
        logits = self.model.forward(inputs)
        loss, dlogits = cross_entropy_with_logits(logits, targets)
        self.model.backward(dlogits)
        grads = self.model.gradient_dict()
        self.last_loss = loss
        self.last_grad_norm = float(
            np.sqrt(sum(float(np.sum(g**2)) for g in grads.values()))
        )
        return loss, grads

    def apply_update(
        self,
        grads: Optional[Mapping[str, np.ndarray]] = None,
        lr: Optional[float] = None,
    ) -> None:
        """Apply one optimizer step (Alg. 1, line 9).

        ``grads`` defaults to the gradients already on the module; passing an
        explicit dict applies aggregated gradients instead (GA mode).
        """
        if lr is not None:
            self.optimizer.set_lr(lr)
        self.optimizer.step(grads)
        self.steps_taken += 1

    def train_step(self, lr: Optional[float] = None) -> float:
        """Convenience: compute local gradients and apply them immediately."""
        loss, _ = self.compute_gradients()
        self.apply_update(lr=lr)
        return loss

    # ------------------------------------------------------------------ #
    # state exchange
    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, np.ndarray]:
        return self.model.state_dict()

    def set_state(self, state: Mapping[str, np.ndarray]) -> None:
        self.model.load_state_dict(state)

    def state_delta(self, reference: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Difference between the local replica and a reference state (SSP pushes)."""
        current = self.model.state_dict()
        return {name: current[name] - np.asarray(reference[name]) for name in current}

    @property
    def epoch_progress(self) -> float:
        return self.loader.epoch_progress
