"""A simulated training worker: model replica + optimizer + local data view.

Workers do real numerical work (forward, backward, optimizer updates on the
NumPy models); only *time* is simulated.  The training algorithms in
:mod:`repro.algorithms` and :mod:`repro.core` orchestrate workers through
this interface, which mirrors the per-worker body of Alg. 1.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.data.loader import DataLoader
from repro.nn.losses import cross_entropy_with_logits
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer


class Worker:
    """One simulated worker with its own replica, optimizer and data stream."""

    def __init__(
        self,
        worker_id: int,
        model: Module,
        optimizer: Optimizer,
        loader: DataLoader,
        task: str = "classification",
    ) -> None:
        if worker_id < 0:
            raise ValueError(f"worker_id must be non-negative, got {worker_id}")
        if task not in ("classification", "language_modeling"):
            raise ValueError(f"unknown task {task!r}")
        self.worker_id = int(worker_id)
        self.model = model
        self.optimizer = optimizer
        self.loader = loader
        self.task = task
        self.steps_taken = 0
        self.last_loss: Optional[float] = None
        self.last_grad_norm: Optional[float] = None

    # ------------------------------------------------------------------ #
    # core training ops
    # ------------------------------------------------------------------ #
    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the next local mini-batch (Alg. 1, line 6)."""
        return self.loader.next_batch()

    def compute_gradients(
        self, batch: Optional[Tuple[np.ndarray, np.ndarray]] = None
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Forward + backward on one mini-batch; returns (loss, gradient dict).

        Gradients are left on the module (``Parameter.grad``) *and* returned
        as a copy, because the SelSync trainer needs them both to apply the
        local update and to measure Δ(gᵢ).  Internal callers on the hot path
        use :meth:`compute_gradients_flat` instead, which skips the dict
        snapshot entirely.
        """
        loss, _ = self.compute_gradients_flat(batch)
        return loss, self.model.gradient_dict()

    def compute_gradients_flat(
        self, batch: Optional[Tuple[np.ndarray, np.ndarray]] = None
    ) -> Tuple[float, np.ndarray]:
        """Forward + backward; returns (loss, live flat gradient view).

        The returned vector aliases the worker's gradient buffer (a row of
        the cluster's WorkerMatrix): it is valid until the next
        ``zero_grad``/backward and must be copied if kept longer.
        """
        if batch is None:
            batch = self.next_batch()
        inputs, targets = batch
        self.model.zero_grad()
        logits = self.model.forward(inputs)
        loss, dlogits = cross_entropy_with_logits(logits, targets)
        self.model.backward(dlogits)
        grad_vector = self.model.grad_vector
        self.last_loss = loss
        self.last_grad_norm = float(np.sqrt(grad_vector @ grad_vector))
        return loss, grad_vector

    def apply_update(
        self,
        grads: Optional[Mapping[str, np.ndarray]] = None,
        lr: Optional[float] = None,
    ) -> None:
        """Apply one optimizer step (Alg. 1, line 9).

        ``grads`` defaults to the gradients already on the module; passing an
        explicit dict applies aggregated gradients instead (GA mode).
        """
        if lr is not None:
            self.optimizer.set_lr(lr)
        self.optimizer.step(grads)
        self.steps_taken += 1

    def train_step(self, lr: Optional[float] = None) -> float:
        """Convenience: compute local gradients and apply them immediately."""
        loss, _ = self.compute_gradients()
        self.apply_update(lr=lr)
        return loss

    # ------------------------------------------------------------------ #
    # state exchange
    # ------------------------------------------------------------------ #
    @property
    def param_vector(self) -> np.ndarray:
        """Live flat view of the replica's parameters (WorkerMatrix row)."""
        return self.model.param_vector

    @property
    def grad_vector(self) -> np.ndarray:
        """Live flat view of the replica's accumulated gradients."""
        return self.model.grad_vector

    def get_state(self) -> Dict[str, np.ndarray]:
        return self.model.state_dict()

    def set_state(self, state) -> None:
        """Load a replica state: a named dict or an already-flat vector."""
        if isinstance(state, np.ndarray):
            self.model.load_param_vector(state)
        else:
            self.model.load_state_dict(state)

    def state_delta(self, reference: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Difference between the local replica and a reference state (SSP pushes)."""
        current = self.model.state_dict()
        return {name: current[name] - np.asarray(reference[name]) for name in current}

    def state_delta_vector(self, reference: np.ndarray) -> np.ndarray:
        """Flat difference between the local replica and a reference vector."""
        params = self.model.param_vector
        return params - np.asarray(reference, dtype=params.dtype).ravel()

    @property
    def epoch_progress(self) -> float:
        return self.loader.epoch_progress
